//! Correctness side of the design-choice ablations indexed in DESIGN.md:
//! A1 (the Eq. 4 cost-model constraint), A2 (IC probability sources), and
//! the Figure 3 tree-mode comparison on the full corpus.

use sst_bench::{load_corpus, names};
use sst_core::{measure_ids as m, TreeMode};
use sst_simpack::{
    lin_similarity, resnik_similarity, sequence_similarity, xform, CostModel, InformationContent,
    Taxonomy,
};

// ---- A1: cost model --------------------------------------------------------

/// The paper argues c(delete)+c(insert) ≥ c(replace). When violated, the
/// DP never uses replacements, so differing tokens cost 2 instead of 1 and
/// the normalization (replace-based worst case) can report *negative*
/// similarity before clamping — i.e. the measure degenerates.
#[test]
fn violating_the_cost_constraint_degenerates_the_measure() {
    let x = ["a", "b", "c", "d"];
    let y = ["e", "f", "g", "h"];
    let ok = CostModel::UNIT;
    let bad = CostModel::unchecked(1.0, 1.0, 3.0);
    // Under unit costs the all-different pair sits exactly at similarity 0.
    assert_eq!(sequence_similarity(&x, &y, ok), 0.0);
    // Under the violating model the raw distance (8: delete+insert each
    // token) still *exceeds* the "worst case" (12 = 4 replacements), so the
    // normalized value only survives because of clamping.
    assert_eq!(xform(&x, &y, bad), 8.0);
    assert!(
        xform(&x, &y, bad) < 12.0,
        "worst case no longer bounds reality"
    );
    // And partial overlaps are distorted: a sequence sharing half its
    // tokens scores the same as under unit costs *scaled differently*.
    let z = ["a", "b", "g", "h"];
    let sim_ok = sequence_similarity(&x, &z, ok);
    let sim_bad = sequence_similarity(&x, &z, bad);
    assert!((sim_ok - 0.5).abs() < 1e-12);
    assert!(
        sim_bad > sim_ok,
        "violating model inflates similarity: {sim_bad}"
    );
}

#[test]
fn checked_constructor_rejects_violations() {
    assert!(CostModel::new(1.0, 1.0, 2.0).is_ok());
    assert!(CostModel::new(0.7, 0.7, 1.5).is_err());
}

// ---- A2: IC probability sources --------------------------------------------

/// With a populated instance corpus the two probability sources disagree;
/// Lin under instance counts tracks usage, under subclass counts tracks
/// schema shape.
#[test]
fn instance_and_subclass_probabilities_rank_differently() {
    // 0=root, 1=A, 2=B (A and B siblings), 3=A1, 4=A2 (children of A).
    let mut t = Taxonomy::new(5, 0);
    t.add_edge(1, 0);
    t.add_edge(2, 0);
    t.add_edge(3, 1);
    t.add_edge(4, 1);
    // Instances concentrated under B.
    let counts = [0usize, 1, 90, 1, 1];
    let by_instances = InformationContent::from_instances(&t, &counts);
    let by_subclasses = InformationContent::from_subclasses(&t);
    // B is instance-heavy → low IC under instances, but schema-light → high
    // IC under subclass counts.
    assert!(by_instances.ic(2) < by_subclasses.ic(2));
    // Resnik(A1, A2) differs across the corpora.
    let r_inst = resnik_similarity(&t, &by_instances, 3, 4);
    let r_sub = resnik_similarity(&t, &by_subclasses, 3, 4);
    assert!((r_inst - r_sub).abs() > 0.1, "{r_inst} vs {r_sub}");
    // Lin stays within bounds under both.
    for ic in [&by_instances, &by_subclasses] {
        let v = lin_similarity(&t, ic, 3, 4);
        assert!((0.0..=1.0).contains(&v));
    }
}

/// The corpus's instance space is sparse (only the PowerLoom ontology has
/// instances), so the default configuration must fall back to subclass
/// counts — otherwise Resnik's self-IC explodes toward −log₂ ε.
#[test]
fn sparse_corpus_falls_back_to_subclass_counts() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let resnik_self = sst
        .get_similarity(
            "Professor",
            names::DAML_UNIV,
            "Professor",
            names::DAML_UNIV,
            m::RESNIK_MEASURE,
        )
        .unwrap();
    // Subclass-count IC is bounded by log₂(total concepts) ≈ 9.9 bits.
    assert!(
        resnik_self > 1.0 && resnik_self < 10.0,
        "expected subclass-count IC, got {resnik_self}"
    );
}

// ---- Figure 3 on the full corpus -------------------------------------------

/// Under the merged-Thing tree the five ontologies' root concepts collapse,
/// pulling cross-ontology concepts closer: the distance-based similarity
/// between a DAML Professor and a SUMO Human increases, blurring domains.
#[test]
fn merged_thing_inflates_cross_ontology_similarity() {
    let super_thing = load_corpus(TreeMode::SuperThing, false);
    let merged = load_corpus(TreeMode::MergedThing, false);
    let pair = ("Professor", names::DAML_UNIV, "Human", names::SUMO);
    let sim = |sst: &sst_core::SstToolkit| {
        sst.get_similarity(pair.0, pair.1, pair.2, pair.3, m::SHORTEST_PATH_MEASURE)
            .unwrap()
    };
    let separated = sim(&super_thing);
    let blurred = sim(&merged);
    assert!(
        blurred > separated,
        "merged tree should shorten cross-ontology paths: {blurred} vs {separated}"
    );
    // In-ontology similarities are untouched by the join mode.
    let in_onto = |sst: &sst_core::SstToolkit| {
        sst.get_similarity(
            "Professor",
            names::DAML_UNIV,
            "Student",
            names::DAML_UNIV,
            m::SHORTEST_PATH_MEASURE,
        )
        .unwrap()
    };
    assert!((in_onto(&super_thing) - in_onto(&merged)).abs() < 1e-12);
}

/// The merged tree also loses nodes (the collapsed per-ontology roots).
#[test]
fn merged_tree_has_fewer_nodes() {
    let super_thing = load_corpus(TreeMode::SuperThing, false);
    let merged = load_corpus(TreeMode::MergedThing, false);
    assert!(merged.tree().node_count() < super_thing.tree().node_count());
}

/// E1 smoke test: on a lightly perturbed copy, the text measure must beat
/// the cross-ontology graph measures at re-identification (the headline
/// of the measure-evaluation experiment).
#[test]
fn measure_eval_text_beats_graph_for_reidentification() {
    let results = sst_bench::evaluate_measures(50, 0.3, 10, 7);
    let p = |measure: &str, domain: &str| {
        results
            .iter()
            .find(|r| r.measure == measure && r.perturbation == domain)
            .map(|r| r.precision_at_1)
            .unwrap()
    };
    assert!(p("tfidf", "names") > 0.7, "tfidf: {}", p("tfidf", "names"));
    assert!(p("jaro_winkler", "names") > 0.7);
    // Graph measures cannot single out the twin across two ontologies.
    assert!(p("wu_palmer", "names") < 0.5);
    assert!(p("tfidf", "names") > p("wu_palmer", "names"));
}

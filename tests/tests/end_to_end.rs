//! End-to-end integration: the paper's five-ontology scenario driven
//! through every layer (wrappers → SOQA → unified tree → runners →
//! services), asserting the qualitative shape of Table 1 and Figure 5.

use sst_bench::{load_corpus, names, PAPER_CONCEPT_COUNT};
use sst_core::{measure_ids as m, ConceptRef, ConceptSet, SstToolkit, TreeMode};

fn corpus() -> SstToolkit {
    load_corpus(TreeMode::SuperThing, false)
}

#[test]
fn the_scenario_matches_the_paper_setup() {
    let sst = corpus();
    assert_eq!(sst.soqa().ontology_count(), 5);
    assert_eq!(sst.soqa().total_concept_count(), PAPER_CONCEPT_COUNT);
    // Unified tree has one extra node: Super Thing.
    assert_eq!(sst.tree().node_count(), PAPER_CONCEPT_COUNT + 1);
}

/// Table 1's qualitative shape, row by row.
#[test]
fn table1_shape_holds() {
    let sst = corpus();
    let q = ("Professor", names::DAML_UNIV);
    let rows = [
        ("Professor", names::DAML_UNIV),
        ("AssistantProfessor", names::UNIV_BENCH),
        ("EMPLOYEE", names::COURSES),
        ("Human", names::SUMO),
        ("Mammal", names::SUMO),
    ];
    let measures = [
        m::CONCEPTUAL_SIMILARITY_MEASURE,
        m::LEVENSHTEIN_MEASURE,
        m::LIN_MEASURE,
        m::RESNIK_MEASURE,
        m::SHORTEST_PATH_MEASURE,
        m::TFIDF_MEASURE,
    ];
    let table: Vec<Vec<f64>> = rows
        .iter()
        .map(|&(c, o)| sst.get_similarities(q.0, q.1, c, o, &measures).unwrap())
        .collect();

    // Self row: every normalized measure is 1; Resnik is unnormalized ≫ 1.
    for (i, &measure) in measures.iter().enumerate() {
        if measure == m::RESNIK_MEASURE {
            assert!(
                table[0][i] > 1.0,
                "Resnik self-similarity is information content"
            );
        } else {
            assert!(
                (table[0][i] - 1.0).abs() < 1e-9,
                "measure {measure} self-sim"
            );
        }
    }
    // Lin and Resnik collapse to exactly 0 across ontologies (the common
    // subsumer is Super Thing with p = 1).
    for row in &table[1..] {
        assert_eq!(row[2], 0.0, "Lin cross-ontology");
        assert_eq!(row[3], 0.0, "Resnik cross-ontology");
    }
    // Cross-ontology rows are far below the self row on every normalized
    // measure.
    for row in &table[1..] {
        for (i, &measure) in measures.iter().enumerate() {
            if measure == m::RESNIK_MEASURE {
                continue;
            }
            assert!(
                row[i] < 0.5,
                "cross-ontology should stay low, got {}",
                row[i]
            );
        }
    }
    // TFIDF orders AssistantProfessor ≫ EMPLOYEE ≫ {Human, Mammal}, as in
    // the paper.
    let tfidf: Vec<f64> = table.iter().map(|r| r[5]).collect();
    assert!(tfidf[1] > tfidf[2] && tfidf[2] > tfidf[3].max(tfidf[4]));
}

/// Figure 5: the ten most similar concepts for base1_0_daml:Professor are
/// led by Professor itself and dominated by professor/faculty concepts.
#[test]
fn figure5_ranking_shape_holds() {
    let sst = corpus();
    let top = sst
        .most_similar(
            "Professor",
            names::DAML_UNIV,
            &ConceptSet::All,
            10,
            m::TFIDF_MEASURE,
        )
        .unwrap();
    assert_eq!(top.len(), 10);
    assert_eq!(top[0].concept, "Professor");
    assert_eq!(top[0].ontology, names::DAML_UNIV);
    assert!((top[0].similarity - 1.0).abs() < 1e-9);
    // Descending order.
    for w in top.windows(2) {
        assert!(w[0].similarity >= w[1].similarity);
    }
    // At least half the list is professor/faculty-ish, and it spans
    // multiple ontologies (the whole point of the unified tree).
    let relevant = top
        .iter()
        .filter(|r| {
            let lower = r.concept.to_lowercase();
            lower.contains("prof") || lower.contains("faculty") || lower.contains("lectur")
        })
        .count();
    assert!(
        relevant >= 5,
        "only {relevant} relevant concepts in the top 10"
    );
    let ontologies: std::collections::HashSet<&str> =
        top.iter().map(|r| r.ontology.as_str()).collect();
    assert!(ontologies.len() >= 3, "top-10 should span ontologies");
}

#[test]
fn most_dissimilar_is_the_reverse_service() {
    let sst = corpus();
    let bottom = sst
        .most_dissimilar(
            "Professor",
            names::DAML_UNIV,
            &ConceptSet::All,
            5,
            m::CONCEPTUAL_SIMILARITY_MEASURE,
        )
        .unwrap();
    let top = sst
        .most_similar(
            "Professor",
            names::DAML_UNIV,
            &ConceptSet::All,
            5,
            m::CONCEPTUAL_SIMILARITY_MEASURE,
        )
        .unwrap();
    assert!(bottom[0].similarity <= top[4].similarity);
    for w in bottom.windows(2) {
        assert!(w[0].similarity <= w[1].similarity);
    }
}

#[test]
fn subtree_concept_sets_restrict_the_search() {
    let sst = corpus();
    let subtree = ConceptSet::Subtree(ConceptRef::new("Person", names::UNIV_BENCH));
    let rows = sst
        .similarity_to_set("Professor", names::DAML_UNIV, &subtree, m::TFIDF_MEASURE)
        .unwrap();
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|r| r.ontology == names::UNIV_BENCH));
    // The subtree under univ-bench Person: Person + its 20 descendants.
    assert_eq!(rows.len(), 21);
}

#[test]
fn freely_composed_lists_work_across_ontologies() {
    let sst = corpus();
    let list = ConceptSet::List(vec![
        ConceptRef::new("EMPLOYEE", names::COURSES),
        ConceptRef::new("Employee", names::SWRC),
        ConceptRef::new("Employee", names::UNIV_BENCH),
    ]);
    let rows = sst
        .similarity_to_set("Employee", names::DAML_UNIV, &list, m::TFIDF_MEASURE)
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r.similarity > 0.0));
}

#[test]
fn every_measure_satisfies_basic_invariants_on_the_corpus() {
    let sst = corpus();
    let pairs = [
        ("Professor", names::DAML_UNIV, "Student", names::DAML_UNIV),
        ("Professor", names::DAML_UNIV, "Human", names::SUMO),
        ("STUDENT", names::COURSES, "Person", names::SWRC),
    ];
    for (id, info) in sst.measures().into_iter().enumerate() {
        for &(c1, o1, c2, o2) in &pairs {
            let ab = sst.get_similarity(c1, o1, c2, o2, id).unwrap();
            let ba = sst.get_similarity(c2, o2, c1, o1, id).unwrap();
            // Symmetry (all default runners are symmetric).
            assert!(
                (ab - ba).abs() < 1e-9,
                "{} not symmetric on {c1}/{c2}",
                info.name
            );
            assert!(ab.is_finite());
            assert!(ab >= 0.0, "{} produced a negative score", info.name);
            if info.normalized {
                assert!(ab <= 1.0 + 1e-9, "{} exceeded 1: {ab}", info.name);
            }
        }
        // Identity: self-similarity is maximal for normalized measures.
        let self_sim = sst
            .get_similarity(
                "Professor",
                names::DAML_UNIV,
                "Professor",
                names::DAML_UNIV,
                id,
            )
            .unwrap();
        if info.normalized {
            assert!(
                (self_sim - 1.0).abs() < 1e-9,
                "{} self-sim = {self_sim}",
                info.name
            );
        }
    }
}

#[test]
fn similarity_plot_and_chart_pipeline() {
    let sst = corpus();
    let chart = sst
        .similarity_plot(
            "Professor",
            names::DAML_UNIV,
            "AssistantProfessor",
            names::UNIV_BENCH,
            &[
                m::CONCEPTUAL_SIMILARITY_MEASURE,
                m::TFIDF_MEASURE,
                m::LIN_MEASURE,
            ],
        )
        .unwrap();
    assert_eq!(chart.bars.len(), 3);
    let ascii = chart.to_ascii(30);
    assert!(ascii.contains("TFIDF"));
    let artifacts = chart.to_gnuplot("t");
    assert!(artifacts.script.contains("plot"));
    assert_eq!(artifacts.data.lines().count(), 3);
}

#[test]
fn similarity_matrix_is_symmetric_with_unit_diagonal() {
    let sst = corpus();
    let set = ConceptSet::Subtree(ConceptRef::new("Publication", names::SWRC));
    let (labels, matrix) = sst
        .similarity_matrix(&set, m::CONCEPTUAL_SIMILARITY_MEASURE)
        .unwrap();
    assert_eq!(labels.len(), matrix.len());
    for (i, row) in matrix.iter().enumerate() {
        assert!((row[i] - 1.0).abs() < 1e-9);
        for (j, &v) in row.iter().enumerate() {
            assert!((v - matrix[j][i]).abs() < 1e-9);
        }
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    let sst = corpus();
    assert!(sst
        .get_similarity("Nope", names::DAML_UNIV, "Professor", names::DAML_UNIV, 0)
        .is_err());
    assert!(sst
        .get_similarity(
            "Professor",
            "missing_onto",
            "Professor",
            names::DAML_UNIV,
            0
        )
        .is_err());
    assert!(sst
        .get_similarity(
            "Professor",
            names::DAML_UNIV,
            "Professor",
            names::DAML_UNIV,
            999
        )
        .is_err());
    assert!(sst.measure_id("not_a_measure").is_err());
    assert!(sst
        .most_similar(
            "Professor",
            names::DAML_UNIV,
            &ConceptSet::List(vec![ConceptRef::new("Ghost", names::SUMO)]),
            3,
            0
        )
        .is_err());
}

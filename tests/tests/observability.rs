//! Cross-crate tests for the observability layer and the ranking/matrix
//! fixes that ride with it: NaN-safe `total_cmp` ordering in every k-best
//! path, the halved-triangle similarity matrix, and the metrics that the
//! facade records end to end.

use sst_core::{
    measure_ids as m, CachedSimilarity, ConceptSet, MeasureRunner, RunnerInfo, SimilarityContext,
    SstBuilder, SstToolkit,
};
use sst_simpack::MeasureKind;
use sst_soqa::{GlobalConcept, OntologyBuilder, OntologyMetadata};

fn tiny_ontology(name: &str) -> sst_soqa::Ontology {
    let mut b = OntologyBuilder::new(OntologyMetadata {
        name: name.into(),
        language: "Test".into(),
        ..OntologyMetadata::default()
    });
    let thing = b.concept("Thing");
    for (child, parent) in [
        ("Person", "Thing"),
        ("Student", "Person"),
        ("Professor", "Person"),
        ("Course", "Thing"),
    ] {
        let c = b.concept(child);
        let p = b.concept(parent);
        b.add_subclass(c, p);
    }
    let _ = thing;
    b.build()
}

/// A pathological user-supplied measure: NaN whenever the query pair
/// involves a `Course`, a real score otherwise. Exercises exactly the
/// failure the `partial_cmp(..).unwrap_or(Equal)` sorts had: NaN used to
/// freeze wherever the sort left it, so rankings depended on input order.
#[derive(Debug)]
struct NanRunner;

impl MeasureRunner for NanRunner {
    fn info(&self) -> RunnerInfo {
        RunnerInfo {
            name: "nan_prone".into(),
            display: "NaN-prone".into(),
            kind: MeasureKind::String,
            normalized: true,
        }
    }

    fn similarity(&self, ctx: &SimilarityContext<'_>, a: GlobalConcept, b: GlobalConcept) -> f64 {
        if ctx.name(a) == "Course" || ctx.name(b) == "Course" {
            f64::NAN
        } else {
            f64::from(ctx.name(a) == ctx.name(b))
        }
    }
}

fn nan_toolkit() -> SstToolkit {
    SstBuilder::new()
        .register_ontology(tiny_ontology("uni"))
        .unwrap()
        .register_runner(Box::new(NanRunner))
        .build()
}

#[test]
fn nan_scores_rank_deterministically() {
    let sst = nan_toolkit();
    let id = sst.measure_id("nan_prone").unwrap();
    let ranked = sst
        .most_similar("Student", "uni", &ConceptSet::All, 5, id)
        .unwrap();
    assert_eq!(ranked.len(), 5);
    // `total_cmp` orders NaN above +inf, so the NaN row ranks first, then
    // the exact match, then the 0.0 scores in name order — always.
    assert_eq!(ranked[0].concept, "Course");
    assert!(ranked[0].similarity.is_nan());
    assert_eq!(ranked[1].concept, "Student");
    assert_eq!(ranked[1].similarity, 1.0);
    let tail: Vec<&str> = ranked[2..].iter().map(|r| r.concept.as_str()).collect();
    assert_eq!(tail, ["Person", "Professor", "Thing"]);
}

#[test]
fn cached_and_direct_paths_rank_nan_identically() {
    let sst = nan_toolkit();
    let id = sst.measure_id("nan_prone").unwrap();
    let direct = sst
        .most_similar("Student", "uni", &ConceptSet::All, 5, id)
        .unwrap();
    let cache = CachedSimilarity::new(&sst);
    let cached = cache
        .most_similar("Student", "uni", &ConceptSet::All, 5, id)
        .unwrap();
    // NaN != NaN, so compare shape: names in order plus NaN positions.
    assert_eq!(direct.len(), cached.len());
    for (d, c) in direct.iter().zip(&cached) {
        assert_eq!((&d.concept, &d.ontology), (&c.concept, &c.ontology));
        assert_eq!(d.similarity.is_nan(), c.similarity.is_nan());
    }
    // Second cached run (memo warm) must not reshuffle either.
    let warm = cache
        .most_similar("Student", "uni", &ConceptSet::All, 5, id)
        .unwrap();
    for (d, w) in direct.iter().zip(&warm) {
        assert_eq!((&d.concept, &d.ontology), (&w.concept, &w.ontology));
    }
}

#[test]
fn most_dissimilar_handles_nan() {
    let sst = nan_toolkit();
    let id = sst.measure_id("nan_prone").unwrap();
    let ranked = sst
        .most_dissimilar("Student", "uni", &ConceptSet::All, 5, id)
        .unwrap();
    // Ascending total order: finite scores first, the NaN row last.
    assert_eq!(ranked.len(), 5);
    assert!(ranked[4].similarity.is_nan());
    assert_eq!(ranked[4].concept, "Course");
}

// ---- matrix triangle + mirror ---------------------------------------------

#[test]
fn matrix_is_symmetric_and_matches_pairwise_calls() {
    let sst = SstBuilder::new()
        .register_ontology(tiny_ontology("uni"))
        .unwrap()
        .register_ontology(tiny_ontology("lib"))
        .unwrap()
        .build();
    let (labels, matrix) = sst
        .similarity_matrix(&ConceptSet::All, m::CONCEPTUAL_SIMILARITY_MEASURE)
        .unwrap();
    let n = labels.len();
    assert!(n >= 10, "two ontologies plus Super Thing, got {n}");
    for (i, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), n);
        for (j, &v) in row.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                matrix[j][i].to_bits(),
                "asymmetry at ({i}, {j})"
            );
        }
    }
    // Bit-identical to the full n² computation through the pairwise service.
    let concepts = sst.concept_set(&ConceptSet::All).unwrap();
    for (i, label_row) in matrix.iter().enumerate() {
        for (j, &v) in label_row.iter().enumerate() {
            let a = concepts[i];
            let b = concepts[j];
            let direct = sst
                .get_similarity(
                    &sst.soqa().concept(a).name,
                    sst.soqa().ontology_at(a.ontology).name(),
                    &sst.soqa().concept(b).name,
                    sst.soqa().ontology_at(b.ontology).name(),
                    m::CONCEPTUAL_SIMILARITY_MEASURE,
                )
                .unwrap();
            assert_eq!(v.to_bits(), direct.to_bits(), "cell ({i}, {j})");
        }
    }
}

#[test]
fn parallel_matrix_matches_serial_bit_for_bit() {
    let sst = SstBuilder::new()
        .register_ontology(tiny_ontology("uni"))
        .unwrap()
        .build();
    for measure in [
        m::LEVENSHTEIN_MEASURE,
        m::CONCEPTUAL_SIMILARITY_MEASURE,
        m::LIN_MEASURE,
        m::TFIDF_MEASURE,
    ] {
        let (serial_labels, serial) = sst.similarity_matrix(&ConceptSet::All, measure).unwrap();
        let (par_labels, parallel) = sst
            .similarity_matrix_parallel(&ConceptSet::All, measure, 3)
            .unwrap();
        assert_eq!(serial_labels, par_labels);
        for (srow, prow) in serial.iter().zip(&parallel) {
            for (&s, &p) in srow.iter().zip(prow) {
                assert_eq!(s.to_bits(), p.to_bits());
            }
        }
    }
}

#[test]
fn matrix_computes_only_the_upper_triangle() {
    let sst = SstBuilder::new()
        .register_ontology(tiny_ontology("uni"))
        .unwrap()
        .build();
    let (labels, _) = sst
        .similarity_matrix(&ConceptSet::All, m::LEVENSHTEIN_MEASURE)
        .unwrap();
    let n = labels.len() as u64;
    let snap = sst.metrics().snapshot();
    assert_eq!(
        snap.counter("core.matrix.pairs"),
        Some(n * (n + 1) / 2),
        "matrix should cost n(n+1)/2 runner calls, not n²"
    );
    assert_eq!(
        snap.counter("core.pair.calls.levenshtein"),
        Some(n * (n + 1) / 2)
    );
}

// ---- facade metrics end to end --------------------------------------------

#[test]
fn metrics_report_covers_measures_cache_and_index() {
    let sst = SstBuilder::new()
        .register_ontology(tiny_ontology("uni"))
        .unwrap()
        .build();
    sst.most_similar("Student", "uni", &ConceptSet::All, 3, m::LIN_MEASURE)
        .unwrap();
    sst.similarity_matrix(&ConceptSet::All, m::LIN_MEASURE)
        .unwrap();
    let cache = CachedSimilarity::new(&sst);
    for _ in 0..2 {
        cache
            .get_similarity("Student", "uni", "Person", "uni", m::LIN_MEASURE)
            .unwrap();
    }

    let snap = sst.metrics().snapshot();
    // Per-measure traffic: the ranking pass ran once, pair latency is
    // recorded per ranked pair, the matrix pass counted its pairs in bulk.
    assert_eq!(snap.counter("core.rank.calls.lin"), Some(1));
    assert_eq!(snap.histogram("core.rank.latency.lin").unwrap().count, 1);
    assert_eq!(snap.counter("core.matrix.calls.lin"), Some(1));
    let pair_latency = snap.histogram("core.pair.latency.lin").unwrap();
    assert!(pair_latency.count >= 6, "got {}", pair_latency.count);
    assert!(pair_latency.sum_seconds >= 0.0);
    // Cache traffic flows into the shared registry.
    assert_eq!(snap.counter("core.cache.misses"), Some(1));
    assert_eq!(snap.counter("core.cache.hits"), Some(1));
    // Toolkit construction indexed every concept and timed itself.
    assert_eq!(snap.counter("index.docs"), Some(5));
    assert!(snap.counter("index.tokens").unwrap_or(0) > 0);
    assert_eq!(snap.histogram("core.build.latency").unwrap().count, 1);

    // The JSON report carries the same data.
    let report = sst.metrics_report();
    assert!(report.starts_with('{') && report.ends_with('}'));
    assert!(report.contains("\"core.rank.calls.lin\":1"));
    assert!(report.contains("core.cache.hits"));
}

#[test]
fn soqa_ql_queries_are_timed_through_the_facade() {
    let sst = SstBuilder::new()
        .register_ontology(tiny_ontology("uni"))
        .unwrap()
        .build();
    sst.query("SELECT name FROM concepts").unwrap();
    assert!(sst.query("SELECT nonsense FROM").is_err());
    let snap = sst.metrics().snapshot();
    assert_eq!(snap.counter("soqa.ql.queries"), Some(2));
    assert_eq!(snap.counter("soqa.ql.errors"), Some(1));
    assert_eq!(snap.histogram("soqa.ql.parse.latency").unwrap().count, 2);
    assert_eq!(snap.histogram("soqa.ql.eval.latency").unwrap().count, 1);
}

//! Identity suite for `SSTSNAP1` snapshot persistence (PR 10 tentpole):
//! `export_snapshot` → `import_snapshot` must reproduce the toolkit
//! *bit-identically* — every one of the registered measures scores the
//! same IEEE 754 bits on the paper corpus after a round trip — and a
//! corrupted or truncated snapshot must fail structured, never panic.
//!
//! Comparisons use `f64::to_bits` (as in `prepared_identity`), so even a
//! `-0.0` vs `0.0` or NaN-payload drift fails.

use sst_bench::{generate_taxonomy, load_corpus, names, SplitMix64, TaxonomySpec};
use sst_core::{
    BatchMode, ConceptRef, ConceptSet, ProbabilityModeConfig, SstBuilder, SstError, SstToolkit,
    TreeMode, SNAPSHOT_MAGIC,
};

fn corpus() -> SstToolkit {
    load_corpus(TreeMode::SuperThing, false)
}

fn round_trip(sst: &SstToolkit) -> SstToolkit {
    let bytes = sst.export_snapshot();
    SstToolkit::import_snapshot(&bytes, &sst_limits::Limits::default()).expect("round trip")
}

/// A cross-ontology concept set exercising every runner input: taxonomy
/// positions, names, feature sets, documentation (tf-idf), and subtrees.
fn mixed_set() -> ConceptSet {
    ConceptSet::List(vec![
        ConceptRef::new("Professor", names::DAML_UNIV),
        ConceptRef::new("AssistantProfessor", names::UNIV_BENCH),
        ConceptRef::new("FullProfessor", names::UNIV_BENCH),
        ConceptRef::new("Student", names::UNIV_BENCH),
        ConceptRef::new("GraduateStudent", names::UNIV_BENCH),
        ConceptRef::new("Publication", names::UNIV_BENCH),
        ConceptRef::new("EMPLOYEE", names::COURSES),
        ConceptRef::new("COURSE", names::COURSES),
        ConceptRef::new("Human", names::SUMO),
        ConceptRef::new("Mammal", names::SUMO),
        ConceptRef::new("Publication", names::SWRC),
        ConceptRef::new("PhDStudent", names::SWRC),
    ])
}

#[test]
fn snapshot_round_trip_is_bit_identical_for_every_measure() {
    let sst = corpus();
    let imported = round_trip(&sst);
    assert_eq!(imported.measure_count(), sst.measure_count());
    let set = mixed_set();
    for measure in 0..sst.measure_count() {
        let original = sst
            .similarity_matrix_mode(&set, measure, BatchMode::Prepared)
            .unwrap();
        let reloaded = imported
            .similarity_matrix_mode(&set, measure, BatchMode::Prepared)
            .unwrap();
        assert_eq!(
            original.0, reloaded.0,
            "labels diverge for measure {measure}"
        );
        for (i, (ra, rb)) in original.1.iter().zip(&reloaded.1).enumerate() {
            for (j, (va, vb)) in ra.iter().zip(rb).enumerate() {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "measure {measure} diverges after round trip at [{i}][{j}]: {va} vs {vb}"
                );
            }
        }
    }
}

#[test]
fn snapshot_preserves_config_and_prepared_tables() {
    // Non-default config: the merged-tree mode and subclass-count
    // probabilities must survive the round trip (they change scores, so
    // silently reverting to defaults would break bit-identity).
    let sst = SstBuilder::new()
        .tree_mode(TreeMode::MergedThing)
        .probability_mode(ProbabilityModeConfig::SubclassCount)
        .register_ontology(generate_taxonomy(TaxonomySpec {
            concepts: 80,
            branching: 3,
            instances: 20,
            seed: 99,
        }))
        .expect("register")
        .build();
    let imported = round_trip(&sst);
    assert_eq!(imported.config(), sst.config());
    // The embedded SSTVEC1 section must equal a fresh export — the
    // prepared dense-vector tables round-tripped exactly.
    assert_eq!(imported.export_vectors(), sst.export_vectors());
}

#[test]
fn snapshot_round_trips_a_synthetic_corpus() {
    // Two generated taxonomies: instances, documentation, and deep
    // hierarchies beyond the hand-built paper corpus.
    let a = generate_taxonomy(TaxonomySpec {
        concepts: 150,
        branching: 4,
        instances: 75,
        seed: 11,
    });
    let b = generate_taxonomy(TaxonomySpec {
        concepts: 60,
        branching: 6,
        instances: 15,
        seed: 353,
    });
    let sst = SstBuilder::new()
        .register_ontology(a)
        .expect("register primary")
        .register_ontology(b)
        .expect("register secondary")
        .build();
    let bytes = sst.export_snapshot();
    assert_eq!(&bytes[..8], SNAPSHOT_MAGIC, "snapshot leads with its magic");
    let imported =
        SstToolkit::import_snapshot(&bytes, &sst_limits::Limits::default()).expect("round trip");
    // A second export of the import is byte-identical: the format is a
    // fixed point, not just score-equivalent.
    assert_eq!(imported.export_snapshot(), bytes);
}

#[test]
fn snapshot_rejects_corruption_and_truncation() {
    let sst = corpus();
    let bytes = sst.export_snapshot();
    let limits = sst_limits::Limits::default();

    // Every single-byte flip must be caught (checksum verified before any
    // parsing), and every truncation must fail structured — never a panic.
    let mut rng = SplitMix64::seed_from_u64(0xC0DE);
    for _ in 0..32 {
        let mut corrupt = bytes.clone();
        let at = rng.gen_range(0..corrupt.len());
        corrupt[at] ^= 0x41;
        let err = SstToolkit::import_snapshot(&corrupt, &limits).expect_err("corrupt");
        assert!(matches!(err, SstError::InvalidArgument(_)), "{err}");
    }
    for cut in [0, 1, 7, 8, 20, bytes.len() - 1] {
        let err = SstToolkit::import_snapshot(&bytes[..cut], &limits).expect_err("truncated");
        assert!(matches!(err, SstError::InvalidArgument(_)), "{err}");
    }
}

#[test]
fn snapshot_load_is_governed_by_limits() {
    let sst = corpus();
    let bytes = sst.export_snapshot();
    let starved = sst_limits::Limits {
        max_input_bytes: 16,
        ..sst_limits::Limits::default()
    };
    let err = SstToolkit::import_snapshot(&bytes, &starved).expect_err("starved budget");
    assert!(matches!(err, SstError::InvalidArgument(_)), "{err}");
}

//! Malformed-input contract: every parser in the toolkit returns `Err`
//! on broken input — it must never panic or abort the process. Each test
//! here feeds a specific, realistic corruption (truncation, bad escapes,
//! unbalanced structure) to one parser and asserts an honest `Err`.
//!
//! These complement `parser_robustness.rs` (random soup): the inputs
//! below are the hand-picked shapes that used to hit `unwrap`/`expect`
//! paths before the static-analysis gate forced `Result` flows.

use sst_wrappers::{parse_daml, parse_owl, parse_powerloom};

const BASE: &str = "http://example.org/base";

#[test]
fn turtle_truncated_unicode_escape_is_err() {
    // `\u` demands four hex digits; the document ends after two.
    let src = "<http://e/s> <http://e/p> \"bad \\u12";
    let result = sst_rdf::parse_turtle(src, BASE);
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn turtle_missing_object_is_err() {
    let result = sst_rdf::parse_turtle("<http://e/s> <http://e/p> .", BASE);
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn turtle_unknown_prefix_is_err() {
    let result = sst_rdf::parse_turtle("undeclared:s <http://e/p> <http://e/o> .", BASE);
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn ntriples_unterminated_literal_is_err() {
    let src = "<http://e/s> <http://e/p> \"never closed .\n";
    let result = sst_rdf::parse_ntriples(src);
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn rdfxml_unbalanced_elements_are_err() {
    let src = "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\">\
               <rdf:Description rdf:about=\"http://e/s\">";
    let result = sst_rdf::parse_rdfxml(src, BASE);
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn rdfxml_bad_character_reference_is_err() {
    let src = "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\">\
               <rdf:Description rdf:about=\"http://e/&#xZZ;\"/></rdf:RDF>";
    let result = sst_rdf::parse_rdfxml(src, BASE);
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn sparql_trailing_garbage_is_err() {
    let result = sst_rdf::parse_select("SELECT ?s WHERE { ?s ?p ?o } LIMIT 5 trailing garbage");
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn soqa_ql_misspelled_keyword_is_err() {
    let result = sst_soqa::ql::parse_query("SELEC name FROM concepts");
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn soqa_ql_unterminated_string_is_err() {
    let result = sst_soqa::ql::parse_query("SELECT name FROM concepts WHERE name = \"open");
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn powerloom_unbalanced_sexpr_is_err() {
    let result = parse_powerloom("(defconcept Vehicle (", "fixture");
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn owl_broken_xml_is_err() {
    let result = parse_owl("<rdf:RDF <broken", "fixture", BASE);
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn daml_broken_xml_is_err() {
    let result = parse_daml("not xml at all < > &", "fixture", BASE);
    assert!(result.is_err(), "{result:?}");
}

#[test]
fn wordnet_malformed_data_line_is_err() {
    // A data line with a synset offset but truncated before its word
    // count must be rejected, not sliced blindly.
    let result = sst_wrappers::wordnet::parse_data_line("00001740 03 n");
    assert!(result.is_err(), "{result:?}");
}

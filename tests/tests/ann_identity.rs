//! Identity and determinism suite for the dense-vector retrieval
//! subsystem (`VectorStore` + NSW-lite proximity graph).
//!
//! The invariants pinned here are what makes the approximate path
//! trustworthy at all:
//!
//! 1. **Exact-store == naive scan, bitwise.** `most_similar_dense` (the
//!    brute-force scan over the embedding matrix) must reproduce
//!    `most_similar` under `measure_ids::DENSE_VECTOR_MEASURE` over
//!    `ConceptSet::All` exactly — same concepts, same order, same
//!    `f64` bits — for every query and every `k`.
//! 2. **Deterministic tie-breaking.** All k-best entry points share one
//!    comparator (score, then ascending `(ontology, concept)` name), so
//!    truncation at `k` is stable across rebuilds and paths.
//! 3. **Full-probe == exact.** A probe width of the whole corpus
//!    degenerates to the exact scan, bit for bit.
//! 4. **Format round-trip.** `export_vectors` → `import_vectors`
//!    reproduces the store (and its rankings) exactly; corrupted bytes
//!    are structured errors, never panics.
//! 5. **Recall floor.** Default-probe recall@10 stays ≥ 0.95 on a
//!    seeded corpus (the full self-audit lives in `ann_bench`).

use sst_bench::{generate_taxonomy, SplitMix64, TaxonomySpec};
use sst_core::{measure_ids, ConceptSet, SstBuilder, SstError, SstToolkit};

/// Two-ontology synthetic corpus: rankings cross ontology boundaries and
/// the documentation strings give the TF-IDF embeddings real signal.
fn toolkit(primary: usize, secondary: usize, seed: u64) -> SstToolkit {
    let a = generate_taxonomy(TaxonomySpec {
        concepts: primary,
        branching: 4,
        instances: primary / 2,
        seed,
    });
    let b = generate_taxonomy(TaxonomySpec {
        concepts: secondary,
        branching: 6,
        instances: secondary / 4,
        seed: seed.wrapping_mul(31).wrapping_add(7),
    });
    SstBuilder::new()
        .register_ontology(a)
        .expect("register primary")
        .register_ontology(b)
        .expect("register secondary")
        .build()
}

/// Seeded sample of query `(concept, ontology)` names from the store.
fn sample_queries(sst: &SstToolkit, count: usize, seed: u64) -> Vec<(String, String)> {
    let store = sst.vector_store();
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let row = rng.gen_range(0..store.len());
            let label = store.label(row).expect("sampled row exists");
            let (ontology, concept) = label.split_once(':').expect("qualified label");
            (concept.to_owned(), ontology.to_owned())
        })
        .collect()
}

fn assert_bit_identical(
    what: &str,
    a: &[sst_core::ConceptAndSimilarity],
    b: &[sst_core::ConceptAndSimilarity],
) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            (&ra.concept, &ra.ontology),
            (&rb.concept, &rb.ontology),
            "{what}: concept mismatch at rank {i}"
        );
        assert_eq!(
            ra.similarity.to_bits(),
            rb.similarity.to_bits(),
            "{what}: score bits diverge at rank {i}: {} vs {}",
            ra.similarity,
            rb.similarity
        );
    }
}

#[test]
fn exact_store_matches_naive_facade_scan_bitwise() {
    let sst = toolkit(180, 90, 11);
    for (concept, ontology) in sample_queries(&sst, 24, 0xA11CE) {
        for k in [1, 5, 10, 100_000] {
            let naive = sst
                .most_similar(
                    &concept,
                    &ontology,
                    &ConceptSet::All,
                    k,
                    measure_ids::DENSE_VECTOR_MEASURE,
                )
                .expect("naive rank");
            let dense = sst
                .most_similar_dense(&concept, &ontology, k)
                .expect("dense rank");
            assert_bit_identical(&format!("{ontology}:{concept} k={k}"), &naive, &dense);
            // The query itself is always rank 0 at exactly 1.0.
            assert_eq!(dense[0].concept, concept);
            assert_eq!(dense[0].similarity, 1.0);
        }
    }
}

#[test]
fn rankings_are_deterministic_across_rebuilds() {
    let a = toolkit(150, 60, 23);
    let b = toolkit(150, 60, 23);
    for (concept, ontology) in sample_queries(&a, 12, 0xBEEF) {
        let ra = a.most_similar_dense(&concept, &ontology, 25).expect("a");
        let rb = b.most_similar_dense(&concept, &ontology, 25).expect("b");
        assert_bit_identical("rebuild determinism", &ra, &rb);
        let aa = a.most_similar_approx(&concept, &ontology, 25).expect("a");
        let ab = b.most_similar_approx(&concept, &ontology, 25).expect("b");
        assert_bit_identical("rebuild determinism (approx)", &aa, &ab);
    }
}

#[test]
fn tie_break_orders_equal_scores_by_name() {
    // Self-similarity 1.0 is shared by every concept under the identity
    // guard only for the query; but equal scores do occur (e.g. zero
    // embeddings all score 0.0). Assert the documented order directly:
    // within any run of equal scores the results ascend by
    // (ontology, concept).
    let sst = toolkit(160, 80, 5);
    for (concept, ontology) in sample_queries(&sst, 8, 0x7E1) {
        let ranked = sst
            .most_similar(
                &concept,
                &ontology,
                &ConceptSet::All,
                100_000,
                measure_ids::DENSE_VECTOR_MEASURE,
            )
            .expect("rank");
        for pair in ranked.windows(2) {
            if pair[0].similarity == pair[1].similarity {
                let left = (&pair[0].ontology, &pair[0].concept);
                let right = (&pair[1].ontology, &pair[1].concept);
                assert!(left < right, "ties out of order: {left:?} !< {right:?}");
            }
        }
        // Dissimilar uses the same tie rule under the ascending order.
        let dis = sst
            .most_dissimilar(
                &concept,
                &ontology,
                &ConceptSet::All,
                100_000,
                measure_ids::DENSE_VECTOR_MEASURE,
            )
            .expect("dissimilar rank");
        for pair in dis.windows(2) {
            if pair[0].similarity == pair[1].similarity {
                let left = (&pair[0].ontology, &pair[0].concept);
                let right = (&pair[1].ontology, &pair[1].concept);
                assert!(left < right, "ties out of order: {left:?} !< {right:?}");
            }
        }
    }
}

#[test]
fn full_probe_approx_degenerates_to_exact() {
    let sst = toolkit(200, 100, 31);
    let full = sst.vector_store().len();
    for (concept, ontology) in sample_queries(&sst, 12, 0xF00D) {
        let exact = sst
            .most_similar_dense(&concept, &ontology, 50)
            .expect("exact");
        let probed = sst
            .most_similar_approx_with(&concept, &ontology, 50, full)
            .expect("full probe");
        assert_bit_identical("full probe vs exact", &exact, &probed);
    }
}

#[test]
fn approx_contains_query_at_rank_zero() {
    let sst = toolkit(200, 100, 31);
    for (concept, ontology) in sample_queries(&sst, 16, 0xCAFE) {
        let ranked = sst
            .most_similar_approx(&concept, &ontology, 10)
            .expect("approx rank");
        assert_eq!(ranked[0].concept, concept, "query missing from own cell");
        assert_eq!(ranked[0].similarity, 1.0);
    }
}

#[test]
fn vector_file_round_trips_and_rejects_corruption() {
    let sst = toolkit(120, 40, 47);
    let bytes = sst.export_vectors();
    let limits = sst_limits::Limits::default();

    let imported = sst.import_vectors(&bytes, &limits).expect("round trip");
    let store = sst.vector_store();
    assert_eq!(imported.len(), store.len());
    assert_eq!(imported.dim(), store.dim());
    for row in 0..store.len() {
        assert_eq!(imported.label(row), store.label(row));
        let (a, b) = (imported.row(row), store.row(row));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "row {row} bits diverge");
        }
    }

    // Every single-byte flip must be caught (checksum first), and every
    // truncation must fail structured — never a panic.
    let mut rng = SplitMix64::seed_from_u64(0xC0DE);
    for _ in 0..32 {
        let mut corrupt = bytes.clone();
        let at = rng.gen_range(0..corrupt.len());
        corrupt[at] ^= 0x41;
        let err = sst.import_vectors(&corrupt, &limits).expect_err("corrupt");
        assert!(matches!(err, SstError::InvalidArgument(_)), "{err}");
    }
    for cut in [0, 1, 7, 8, 20, bytes.len() - 1] {
        let err = sst
            .import_vectors(&bytes[..cut], &limits)
            .expect_err("truncated");
        assert!(matches!(err, SstError::InvalidArgument(_)), "{err}");
    }

    // Imported stores score identically to the original.
    let mut rng = SplitMix64::seed_from_u64(0xD1CE);
    for _ in 0..6 {
        let qrow = rng.gen_range(0..store.len());
        let a = store.scores_exact(qrow);
        let b = imported.scores_exact(qrow);
        assert_eq!(a.len(), b.len());
        for ((ra, sa), (rb, sb)) in a.iter().zip(&b) {
            assert_eq!(ra, rb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }
}

#[test]
fn default_probe_recall_stays_high() {
    let sst = toolkit(600, 300, 3);
    let queries = sample_queries(&sst, 200, 0x5EED);
    let mut hits = 0usize;
    let mut total = 0usize;
    for (concept, ontology) in &queries {
        let exact = sst
            .most_similar_dense(concept, ontology, 10)
            .expect("exact");
        let approx = sst
            .most_similar_approx(concept, ontology, 10)
            .expect("approx");
        let truth: std::collections::HashSet<(&str, &str)> = exact
            .iter()
            .map(|r| (r.concept.as_str(), r.ontology.as_str()))
            .collect();
        hits += approx
            .iter()
            .filter(|r| truth.contains(&(r.concept.as_str(), r.ontology.as_str())))
            .count();
        total += exact.len();
    }
    let recall = hits as f64 / total as f64;
    assert!(recall >= 0.95, "recall@10 {recall:.3} below the 0.95 floor");
}

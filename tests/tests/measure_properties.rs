//! Property-based tests: measure invariants over randomly generated
//! taxonomies — symmetry, identity, normalization, and the triangle-ish
//! monotonicity properties the distance measures promise.

use proptest::prelude::*;
use sst_bench::{generate_taxonomy, TaxonomySpec};
use sst_core::SstBuilder;
use sst_simpack::{
    edge_similarity, lin_similarity, resnik_similarity, shortest_path_similarity,
    wu_palmer_similarity, wu_palmer_similarity_rooted, InformationContent, Taxonomy,
};

/// Builds a random taxonomy directly (avoids the heavier Ontology layer).
fn arb_taxonomy() -> impl Strategy<Value = Taxonomy> {
    (2usize..60, any::<u64>()).prop_map(|(n, seed)| {
        // Deterministic pseudo-random parents via splitmix-style hashing.
        let mut t = Taxonomy::new(n, 0);
        let mut state = seed;
        for child in 1..n as u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let parent = (state >> 33) % child as u64;
            t.add_edge(child, parent as u32);
            // Occasionally add a second parent (multiple inheritance).
            if state % 5 == 0 && child > 1 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                let second = (state >> 33) % child as u64;
                t.add_edge(child, second as u32);
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_measures_are_symmetric_normalized_and_reflexive(
        t in arb_taxonomy(), xa in any::<u32>(), xb in any::<u32>()
    ) {
        let n = t.node_count() as u32;
        let (a, b) = (xa % n, xb % n);
        let ic = InformationContent::from_subclasses(&t);
        for f in [shortest_path_similarity, edge_similarity, wu_palmer_similarity,
                  wu_palmer_similarity_rooted] {
            let ab = f(&t, a, b);
            prop_assert!((ab - f(&t, b, a)).abs() < 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ab), "out of range: {}", ab);
            prop_assert!((f(&t, a, a) - 1.0).abs() < 1e-12);
        }
        let lin_ab = lin_similarity(&t, &ic, a, b);
        prop_assert!((lin_ab - lin_similarity(&t, &ic, b, a)).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&lin_ab));
        let res = resnik_similarity(&t, &ic, a, b);
        prop_assert!(res >= 0.0 && res.is_finite());
        // Resnik self-similarity equals own IC and dominates pair scores.
        prop_assert!(resnik_similarity(&t, &ic, a, a) + 1e-12 >= res);
    }

    #[test]
    fn deeper_mrca_never_hurts_wu_palmer(t in arb_taxonomy(), x in any::<u32>()) {
        // Along a *single-parent* chain node → parent → grandparent, the
        // similarity to the parent is at least the similarity to the
        // grandparent. (With multiple inheritance a second, shorter route
        // can make an ancestor further up the chain score higher, so the
        // property is restricted to unique-parent chains.)
        let n = t.node_count() as u32;
        let node = x % n;
        let [parent] = t.parents(node) else { return Ok(()); };
        let [grand] = t.parents(*parent) else { return Ok(()); };
        let sp = wu_palmer_similarity_rooted(&t, node, *parent);
        let sg = wu_palmer_similarity_rooted(&t, node, *grand);
        prop_assert!(sp + 1e-12 >= sg, "parent {sp} < grandparent {sg}");
    }

    #[test]
    fn ic_probabilities_are_monotone_toward_the_root(t in arb_taxonomy(), x in any::<u32>()) {
        let ic = InformationContent::from_subclasses(&t);
        let n = t.node_count() as u32;
        let node = x % n;
        for &p in t.parents(node) {
            prop_assert!(ic.probability(p) + 1e-12 >= ic.probability(node));
        }
        prop_assert!((ic.probability(t.root()) - 1.0).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full-stack property: on generated ontologies, every registered
    /// measure keeps its invariants through the facade.
    #[test]
    fn facade_measures_hold_invariants_on_generated_ontologies(
        concepts in 10usize..80, seed in any::<u64>()
    ) {
        let ontology = generate_taxonomy(TaxonomySpec {
            concepts,
            seed,
            instances: concepts / 2,
            ..Default::default()
        });
        let name = ontology.name().to_owned();
        let names: Vec<String> = {
            ontology.concept_ids().map(|id| ontology.concept(id).name.clone()).collect()
        };
        let sst = SstBuilder::new().register_ontology(ontology).unwrap().build();
        let a = &names[seed as usize % names.len()];
        let b = &names[(seed as usize / 7) % names.len()];
        for (id, info) in sst.measures().into_iter().enumerate() {
            let ab = sst.get_similarity(a, &name, b, &name, id).unwrap();
            let ba = sst.get_similarity(b, &name, a, &name, id).unwrap();
            prop_assert!((ab - ba).abs() < 1e-9, "{} asymmetric", info.name);
            prop_assert!(ab >= 0.0 && ab.is_finite());
            if info.normalized {
                prop_assert!(ab <= 1.0 + 1e-9, "{} = {}", info.name, ab);
                let self_sim = sst.get_similarity(a, &name, a, &name, id).unwrap();
                prop_assert!((self_sim - 1.0).abs() < 1e-9, "{} self {}", info.name, self_sim);
            }
        }
    }
}

//! Property-based tests: measure invariants over randomly generated
//! taxonomies — symmetry, identity, normalization, and the triangle-ish
//! monotonicity properties the distance measures promise. Sampled with
//! the vendored deterministic PRNG so failures reproduce exactly.

use sst_bench::{generate_taxonomy, SplitMix64, TaxonomySpec};
use sst_core::SstBuilder;
use sst_simpack::{
    edge_similarity, lin_similarity, resnik_similarity, shortest_path_similarity,
    wu_palmer_similarity, wu_palmer_similarity_rooted, InformationContent, Taxonomy,
};

/// Builds a random taxonomy directly (avoids the heavier Ontology layer):
/// random parents with occasional multiple inheritance.
fn arb_taxonomy(rng: &mut SplitMix64) -> Taxonomy {
    let n = rng.gen_range(2..60);
    let mut t = Taxonomy::new(n, 0);
    for child in 1..n as u32 {
        let parent = rng.gen_range(0..child as usize) as u32;
        t.add_edge(child, parent);
        // Occasionally add a second parent (multiple inheritance).
        if rng.gen_bool(0.2) && child > 1 {
            let second = rng.gen_range(0..child as usize) as u32;
            t.add_edge(child, second);
        }
    }
    t
}

const CASES: u64 = 64;

#[test]
fn graph_measures_are_symmetric_normalized_and_reflexive() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let t = arb_taxonomy(&mut rng);
        let n = t.node_count();
        let a = rng.gen_range(0..n) as u32;
        let b = rng.gen_range(0..n) as u32;
        let ic = InformationContent::from_subclasses(&t);
        for f in [
            shortest_path_similarity,
            edge_similarity,
            wu_palmer_similarity,
            wu_palmer_similarity_rooted,
        ] {
            let ab = f(&t, a, b);
            assert!((ab - f(&t, b, a)).abs() < 1e-12, "seed {seed}");
            assert!(
                (0.0..=1.0 + 1e-12).contains(&ab),
                "seed {seed}: out of range: {}",
                ab
            );
            assert!((f(&t, a, a) - 1.0).abs() < 1e-12, "seed {seed}");
        }
        let lin_ab = lin_similarity(&t, &ic, a, b);
        assert!(
            (lin_ab - lin_similarity(&t, &ic, b, a)).abs() < 1e-12,
            "seed {seed}"
        );
        assert!((0.0..=1.0 + 1e-12).contains(&lin_ab), "seed {seed}");
        let res = resnik_similarity(&t, &ic, a, b);
        assert!(res >= 0.0 && res.is_finite(), "seed {seed}");
        // Resnik self-similarity equals own IC and dominates pair scores.
        assert!(
            resnik_similarity(&t, &ic, a, a) + 1e-12 >= res,
            "seed {seed}"
        );
    }
}

#[test]
fn deeper_mrca_never_hurts_wu_palmer() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x3A3A);
        let t = arb_taxonomy(&mut rng);
        let node = rng.gen_range(0..t.node_count()) as u32;
        // Along a *single-parent* chain node → parent → grandparent, the
        // similarity to the parent is at least the similarity to the
        // grandparent. (With multiple inheritance a second, shorter route
        // can make an ancestor further up the chain score higher, so the
        // property is restricted to unique-parent chains.)
        let [parent] = t.parents(node) else { continue };
        let [grand] = t.parents(*parent) else {
            continue;
        };
        let sp = wu_palmer_similarity_rooted(&t, node, *parent);
        let sg = wu_palmer_similarity_rooted(&t, node, *grand);
        assert!(
            sp + 1e-12 >= sg,
            "seed {seed}: parent {sp} < grandparent {sg}"
        );
    }
}

#[test]
fn ic_probabilities_are_monotone_toward_the_root() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x1C1C);
        let t = arb_taxonomy(&mut rng);
        let ic = InformationContent::from_subclasses(&t);
        let node = rng.gen_range(0..t.node_count()) as u32;
        for &p in t.parents(node) {
            assert!(
                ic.probability(p) + 1e-12 >= ic.probability(node),
                "seed {seed}"
            );
        }
        assert!((ic.probability(t.root()) - 1.0).abs() < 1e-9, "seed {seed}");
    }
}

/// Full-stack property: on generated ontologies, every registered
/// measure keeps its invariants through the facade.
#[test]
fn facade_measures_hold_invariants_on_generated_ontologies() {
    for case in 0..8u64 {
        let mut rng = SplitMix64::seed_from_u64(case.wrapping_mul(0x0FAC).wrapping_add(1));
        let concepts = rng.gen_range(10..80);
        let seed = rng.next_u64();
        let ontology = generate_taxonomy(TaxonomySpec {
            concepts,
            seed,
            instances: concepts / 2,
            ..Default::default()
        });
        let name = ontology.name().to_owned();
        let names: Vec<String> = ontology
            .concept_ids()
            .map(|id| ontology.concept(id).name.clone())
            .collect();
        let sst = SstBuilder::new()
            .register_ontology(ontology)
            .unwrap()
            .build();
        let a = &names[seed as usize % names.len()];
        let b = &names[(seed as usize / 7) % names.len()];
        for (id, info) in sst.measures().into_iter().enumerate() {
            let ab = sst.get_similarity(a, &name, b, &name, id).unwrap();
            let ba = sst.get_similarity(b, &name, a, &name, id).unwrap();
            assert!(
                (ab - ba).abs() < 1e-9,
                "case {case}: {} asymmetric",
                info.name
            );
            assert!(ab >= 0.0 && ab.is_finite(), "case {case}");
            if info.normalized {
                assert!(ab <= 1.0 + 1e-9, "case {case}: {} = {}", info.name, ab);
                let self_sim = sst.get_similarity(a, &name, a, &name, id).unwrap();
                assert!(
                    (self_sim - 1.0).abs() < 1e-9,
                    "case {case}: {} self {}",
                    info.name,
                    self_sim
                );
            }
        }
    }
}

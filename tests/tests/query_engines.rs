//! Cross-checks the two query engines — triple-level SPARQL-lite over the
//! RDF substrate vs meta-model-level SOQA-QL over the facade — on the same
//! corpus document, plus property tests for the LIKE matcher.

use proptest::prelude::*;
use sst_bench::{data_dir, load_corpus, names};
use sst_core::TreeMode;
use sst_rdf::select;
use sst_soqa::ql::like_match;

#[test]
fn sparql_and_soqaql_agree_on_sumo_class_count() {
    let sumo_text = std::fs::read_to_string(data_dir().join("ontologies/sumo.owl"))
        .expect("sumo.owl");
    let graph = sst_rdf::parse_rdfxml(&sumo_text, "http://reliant.teknowledge.com/DAML/SUMO.owl")
        .expect("parse sumo");
    let classes = select(&graph, "SELECT ?c WHERE { ?c a owl:Class . }").expect("sparql");

    let sst = load_corpus(TreeMode::SuperThing, false);
    let t = sst
        .query(&format!("SELECT COUNT(*) FROM concepts OF '{}'", names::SUMO))
        .expect("soqa-ql");
    let soqa_count: usize = t.rows[0][0].render().parse().unwrap();
    // SOQA adds the implicit owl:Thing root on top of the declared classes.
    assert_eq!(soqa_count, classes.len() + 1);
}

#[test]
fn sparql_subclass_join_matches_soqa_direct_subs() {
    let sumo_text = std::fs::read_to_string(data_dir().join("ontologies/sumo.owl"))
        .expect("sumo.owl");
    let graph = sst_rdf::parse_rdfxml(&sumo_text, "http://reliant.teknowledge.com/DAML/SUMO.owl")
        .expect("parse sumo");
    let rows = select(
        &graph,
        "PREFIX sumo: <http://reliant.teknowledge.com/DAML/SUMO.owl#>\n\
         SELECT ?sub WHERE { ?sub rdfs:subClassOf sumo:Mammal . }",
    )
    .expect("sparql");

    let sst = load_corpus(TreeMode::SuperThing, false);
    let mammal = sst.soqa().resolve(names::SUMO, "Mammal").unwrap();
    assert_eq!(rows.len(), sst.soqa().sub_concepts(mammal).len());
}

#[test]
fn sparql_filter_contains_matches_soqaql_like() {
    let sumo_text = std::fs::read_to_string(data_dir().join("ontologies/sumo.owl"))
        .expect("sumo.owl");
    let graph = sst_rdf::parse_rdfxml(&sumo_text, "http://reliant.teknowledge.com/DAML/SUMO.owl")
        .expect("parse sumo");
    let sparql_hits = select(
        &graph,
        "SELECT ?c WHERE { ?c a owl:Class . FILTER CONTAINS(?c, \"mammal\") }",
    )
    .expect("sparql");

    let sst = load_corpus(TreeMode::SuperThing, false);
    let t = sst
        .query(&format!(
            "SELECT name FROM concepts OF '{}' WHERE name CONTAINS 'mammal'",
            names::SUMO
        ))
        .expect("soqa-ql");
    assert_eq!(sparql_hits.len(), t.rows.len());
    assert!(!t.rows.is_empty(), "expected Mammal-derived classes");
}

// ---- LIKE matcher properties -------------------------------------------

proptest! {
    /// A pattern equal to the text (no wildcards) always matches; adding a
    /// leading and trailing `%` preserves matching for any text extension.
    #[test]
    fn like_literal_and_wildcard_extension(
        text in "[a-zA-Z0-9]{0,12}",
        prefix in "[a-zA-Z0-9]{0,6}",
        suffix in "[a-zA-Z0-9]{0,6}",
    ) {
        prop_assert!(like_match(&text, &text));
        let wrapped = format!("%{text}%");
        let extended = format!("{prefix}{text}{suffix}");
        prop_assert!(like_match(&wrapped, &extended));
    }

    /// `_` matches exactly one character: a pattern of n underscores
    /// matches exactly the strings of length n.
    #[test]
    fn like_underscore_counts_characters(n in 0usize..8, text in "[a-z]{0,10}") {
        let pattern = "_".repeat(n);
        prop_assert_eq!(like_match(&pattern, &text), text.chars().count() == n);
    }

    /// `%` alone matches everything.
    #[test]
    fn like_percent_matches_everything(text in "[ -~]{0,20}") {
        prop_assert!(like_match("%", &text));
    }

    /// Patterns without wildcards match only exact strings.
    #[test]
    fn like_without_wildcards_is_equality(a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
        prop_assert_eq!(like_match(&a, &b), a == b);
    }
}

//! Cross-checks the two query engines — triple-level SPARQL-lite over the
//! RDF substrate vs meta-model-level SOQA-QL over the facade — on the same
//! corpus document, plus property tests for the LIKE matcher.

use sst_bench::{data_dir, load_corpus, names, SplitMix64};
use sst_core::TreeMode;
use sst_rdf::select;
use sst_soqa::ql::like_match;

#[test]
fn sparql_and_soqaql_agree_on_sumo_class_count() {
    let sumo_text =
        std::fs::read_to_string(data_dir().join("ontologies/sumo.owl")).expect("sumo.owl");
    let graph = sst_rdf::parse_rdfxml(&sumo_text, "http://reliant.teknowledge.com/DAML/SUMO.owl")
        .expect("parse sumo");
    let classes = select(&graph, "SELECT ?c WHERE { ?c a owl:Class . }").expect("sparql");

    let sst = load_corpus(TreeMode::SuperThing, false);
    let t = sst
        .query(&format!(
            "SELECT COUNT(*) FROM concepts OF '{}'",
            names::SUMO
        ))
        .expect("soqa-ql");
    let soqa_count: usize = t.rows[0][0].render().parse().unwrap();
    // SOQA adds the implicit owl:Thing root on top of the declared classes.
    assert_eq!(soqa_count, classes.len() + 1);
}

#[test]
fn sparql_subclass_join_matches_soqa_direct_subs() {
    let sumo_text =
        std::fs::read_to_string(data_dir().join("ontologies/sumo.owl")).expect("sumo.owl");
    let graph = sst_rdf::parse_rdfxml(&sumo_text, "http://reliant.teknowledge.com/DAML/SUMO.owl")
        .expect("parse sumo");
    let rows = select(
        &graph,
        "PREFIX sumo: <http://reliant.teknowledge.com/DAML/SUMO.owl#>\n\
         SELECT ?sub WHERE { ?sub rdfs:subClassOf sumo:Mammal . }",
    )
    .expect("sparql");

    let sst = load_corpus(TreeMode::SuperThing, false);
    let mammal = sst.soqa().resolve(names::SUMO, "Mammal").unwrap();
    assert_eq!(rows.len(), sst.soqa().sub_concepts(mammal).len());
}

#[test]
fn sparql_filter_contains_matches_soqaql_like() {
    let sumo_text =
        std::fs::read_to_string(data_dir().join("ontologies/sumo.owl")).expect("sumo.owl");
    let graph = sst_rdf::parse_rdfxml(&sumo_text, "http://reliant.teknowledge.com/DAML/SUMO.owl")
        .expect("parse sumo");
    let sparql_hits = select(
        &graph,
        "SELECT ?c WHERE { ?c a owl:Class . FILTER CONTAINS(?c, \"mammal\") }",
    )
    .expect("sparql");

    let sst = load_corpus(TreeMode::SuperThing, false);
    let t = sst
        .query(&format!(
            "SELECT name FROM concepts OF '{}' WHERE name CONTAINS 'mammal'",
            names::SUMO
        ))
        .expect("soqa-ql");
    assert_eq!(sparql_hits.len(), t.rows.len());
    assert!(!t.rows.is_empty(), "expected Mammal-derived classes");
}

// ---- LIKE matcher properties -------------------------------------------

const CASES: u64 = 256;

/// Random string over `alphabet` with length in `min..=max`.
fn word(rng: &mut SplitMix64, alphabet: &[u8], min: usize, max: usize) -> String {
    let len = rng.gen_range(min..max + 1);
    (0..len)
        .map(|_| char::from(alphabet[rng.gen_range(0..alphabet.len())]))
        .collect()
}

const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
const LOWER: &[u8] = b"abcdefghijklmnopqrstuvwxyz";

/// A pattern equal to the text (no wildcards) always matches; adding a
/// leading and trailing `%` preserves matching for any text extension.
#[test]
fn like_literal_and_wildcard_extension() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let text = word(&mut rng, ALNUM, 0, 12);
        let prefix = word(&mut rng, ALNUM, 0, 6);
        let suffix = word(&mut rng, ALNUM, 0, 6);
        assert!(like_match(&text, &text), "seed {seed}");
        let wrapped = format!("%{text}%");
        let extended = format!("{prefix}{text}{suffix}");
        assert!(like_match(&wrapped, &extended), "seed {seed}");
    }
}

/// `_` matches exactly one character: a pattern of n underscores
/// matches exactly the strings of length n.
#[test]
fn like_underscore_counts_characters() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x11DE);
        let n = rng.gen_range(0..8);
        let text = word(&mut rng, LOWER, 0, 10);
        let pattern = "_".repeat(n);
        assert_eq!(
            like_match(&pattern, &text),
            text.chars().count() == n,
            "seed {seed}"
        );
    }
}

/// `%` alone matches everything.
#[test]
fn like_percent_matches_everything() {
    let printable: Vec<u8> = (b' '..=b'~').collect();
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xCE27);
        let text = word(&mut rng, &printable, 0, 20);
        assert!(like_match("%", &text), "seed {seed}");
    }
}

/// Patterns without wildcards match only exact strings.
#[test]
fn like_without_wildcards_is_equality() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xE4A1);
        let a = word(&mut rng, LOWER, 1, 8);
        let b = word(&mut rng, LOWER, 1, 8);
        assert_eq!(like_match(&a, &b), a == b, "seed {seed}");
    }
}

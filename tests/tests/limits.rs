//! Resource-governance integration tests.
//!
//! Three families:
//!
//! 1. **Deep-nesting regressions** — the stack-overflow inputs that
//!    motivated the `Limits` layer must come back as structured `Depth`
//!    violations under the *default* limits, for every recursive parser.
//! 2. **Partial recovery** — the `*_partial` entry points must keep the
//!    prefix (or, for line-oriented N-Triples, the salvageable lines)
//!    parsed before an error.
//! 3. **Fixture identity** — parsing every seed fixture under `data/`
//!    with default limits must produce exactly what an unbounded parse
//!    produces: governance is free for legitimate documents.

use sst_limits::{LimitKind, Limits};

// ---------------------------------------------------------------------------
// 1. Deep nesting under default limits.
// ---------------------------------------------------------------------------

const DEPTH: usize = 100_000;

fn expect_depth_violation(err: sst_rdf::RdfError, what: &str) {
    match err {
        sst_rdf::RdfError::Limit(v) => {
            assert_eq!(v.kind, LimitKind::Depth, "{what}: {v}")
        }
        other => panic!("{what}: expected a depth violation, got: {other}"),
    }
}

#[test]
fn turtle_deep_blank_node_property_lists_error_cleanly() {
    // Regression: each `[` recursed once in parse_object, so ~100k levels
    // overflowed the stack before the depth guard existed.
    let mut doc = String::from("<http://e/s> <http://e/p> ");
    doc.push_str(&"[ <http://e/q> ".repeat(DEPTH));
    doc.push_str("<http://e/o>");
    doc.push_str(&" ]".repeat(DEPTH));
    doc.push_str(" .\n");
    let err = sst_rdf::parse_turtle(&doc, "http://e/").unwrap_err();
    expect_depth_violation(err, "blank node property lists");
}

#[test]
fn turtle_deep_collections_error_cleanly() {
    let mut doc = String::from("<http://e/s> <http://e/p> ");
    doc.push_str(&"( ".repeat(DEPTH));
    doc.push_str("<http://e/o>");
    doc.push_str(&" )".repeat(DEPTH));
    doc.push_str(" .\n");
    let err = sst_rdf::parse_turtle(&doc, "http://e/").unwrap_err();
    expect_depth_violation(err, "collections");
}

#[test]
fn rdfxml_deep_element_nesting_errors_cleanly() {
    let mut doc = String::from(
        "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\" \
         xmlns:e=\"http://e/\">",
    );
    doc.push_str(&"<e:D>".repeat(DEPTH));
    doc.push_str(&"</e:D>".repeat(DEPTH));
    doc.push_str("</rdf:RDF>");
    let err = sst_rdf::parse_rdfxml(&doc, "http://e/").unwrap_err();
    expect_depth_violation(err, "rdfxml elements");
}

#[test]
fn sexpr_deep_lists_error_cleanly() {
    let mut doc = "(".repeat(DEPTH);
    doc.push('x');
    doc.push_str(&")".repeat(DEPTH));
    let err = sst_sexpr::parse_all(&doc).unwrap_err();
    assert_eq!(err.violation.map(|v| v.kind), Some(LimitKind::Depth));
    // The same input through the PowerLoom wrapper surfaces as
    // SoqaError::Limit, not a stack overflow.
    let wrapped = sst_wrappers::parse_powerloom(&doc, "deep").unwrap_err();
    assert!(matches!(
        wrapped,
        sst_soqa::SoqaError::Limit(v) if v.kind == LimitKind::Depth
    ));
}

#[test]
fn raising_the_depth_limit_is_an_explicit_opt_in() {
    let mut doc = String::from("<http://e/s> <http://e/p> ");
    doc.push_str(&"[ <http://e/q> ".repeat(200));
    doc.push_str("<http://e/o>");
    doc.push_str(&" ]".repeat(200));
    doc.push_str(" .\n");
    // 200 levels exceed the default of 128…
    assert!(sst_rdf::parse_turtle(&doc, "http://e/").is_err());
    // …but a caller who knows its documents can raise the ceiling.
    let relaxed = Limits::default().with_max_depth(512);
    let graph = sst_rdf::parse_turtle_with_limits(&doc, "http://e/", &relaxed, None).unwrap();
    assert_eq!(graph.len(), 201); // the outer statement + one `q` link per level
}

// ---------------------------------------------------------------------------
// 2. Partial recovery.
// ---------------------------------------------------------------------------

#[test]
fn ntriples_partial_resyncs_per_line() {
    let doc = "<http://e/a> <http://e/p> \"one\" .\n\
               this line is garbage\n\
               <http://e/b> <http://e/p> \"two\" .\n\
               also garbage\n\
               <http://e/c> <http://e/p> \"three\" .\n";
    let partial = sst_rdf::parse_ntriples_partial(doc, &Limits::default());
    assert!(!partial.is_complete());
    assert_eq!(partial.value.len(), 3, "good lines survive");
    assert_eq!(partial.errors.len(), 2, "one diagnostic per bad line");
}

#[test]
fn turtle_partial_keeps_the_prefix() {
    let doc = "@prefix e: <http://e/> .\n\
               e:a e:p \"one\" .\n\
               e:b e:p \"two\" .\n\
               e:c e:p ] broken\n";
    let partial = sst_rdf::parse_turtle_partial(doc, "http://e/", &Limits::default(), None);
    assert!(!partial.is_complete());
    assert_eq!(
        partial.value.len(),
        2,
        "statements before the error survive"
    );
}

#[test]
fn rdfxml_partial_keeps_triples_before_the_error() {
    let doc = "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\" \
               xmlns:e=\"http://e/\">\
               <rdf:Description rdf:about=\"http://e/a\"><e:p>one</e:p></rdf:Description>\
               <rdf:Description rdf:about=\"http://e/b\"><e:p>two</e:p></mismatched>\
               </rdf:RDF>";
    let partial = sst_rdf::parse_rdfxml_partial(doc, "http://e/", &Limits::default(), None);
    assert!(!partial.is_complete());
    assert!(partial.value.len() >= 2, "triples before the error survive");
}

#[test]
fn sexpr_partial_keeps_whole_forms() {
    let partial = sst_sexpr::parse_all_partial("(a 1) (b 2) (c ", &Limits::default(), None);
    assert!(!partial.is_complete());
    assert_eq!(partial.value.len(), 2);
    assert_eq!(partial.errors.len(), 1);
}

#[test]
fn limit_violations_abort_partial_recovery() {
    // Limits are document-global: once the budget is gone, resyncing to
    // the next line must NOT continue (that would defeat the cap).
    let tight = Limits::default().with_max_items(2);
    let doc = "<http://e/a> <http://e/p> \"1\" .\n\
               <http://e/b> <http://e/p> \"2\" .\n\
               <http://e/c> <http://e/p> \"3\" .\n\
               <http://e/d> <http://e/p> \"4\" .\n";
    let partial = sst_rdf::parse_ntriples_partial(doc, &tight);
    assert!(!partial.is_complete());
    assert_eq!(partial.value.len(), 2);
    assert_eq!(partial.errors.len(), 1, "fatal: no further resync");
}

// ---------------------------------------------------------------------------
// 3. Fixture identity: default limits are invisible for real documents.
// ---------------------------------------------------------------------------

fn fixture(rel: &str) -> String {
    let path = sst_bench::data_dir().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Canonical triple listing for graph comparison (Graph iterates its
/// BTree-backed store in a deterministic order).
fn triples(graph: &sst_rdf::Graph) -> Vec<String> {
    graph.iter().map(|t| format!("{t:?}")).collect()
}

#[test]
fn rdfxml_fixtures_parse_identically_under_default_limits() {
    for (file, base) in [
        (
            "ontologies/univ-bench.owl",
            "http://www.lehigh.edu/univ-bench.owl",
        ),
        ("ontologies/swrc.owl", "http://swrc.ontoware.org/ontology"),
        (
            "ontologies/univ1.0.daml",
            "http://www.cs.umd.edu/projects/plus/DAML/onts/univ1.0.daml",
        ),
    ] {
        let source = fixture(file);
        let governed = sst_rdf::parse_rdfxml(&source, base)
            .unwrap_or_else(|e| panic!("{file} under default limits: {e}"));
        let unbounded =
            sst_rdf::parse_rdfxml_with_limits(&source, base, &Limits::unbounded(), None)
                .unwrap_or_else(|e| panic!("{file} unbounded: {e}"));
        assert_eq!(triples(&governed), triples(&unbounded), "{file}");
    }
}

#[test]
fn ploom_fixture_parses_identically_under_default_limits() {
    let source = fixture("ontologies/course.ploom");
    let governed = sst_sexpr::parse_all(&source).expect("default limits");
    let unbounded =
        sst_sexpr::parse_all_with_limits(&source, &Limits::unbounded(), None).expect("unbounded");
    assert_eq!(governed, unbounded);
}

#[test]
fn wordnet_fixtures_parse_identically_under_default_limits() {
    let data = fixture("wordnet/data.noun");
    let governed = sst_wrappers::parse_wordnet(&data, "wn").expect("default limits");
    let unbounded = sst_wrappers::parse_wordnet_with_limits(&data, "wn", &Limits::unbounded())
        .expect("unbounded");
    assert_eq!(governed.concept_count(), unbounded.concept_count());
    assert_eq!(governed.max_depth(), unbounded.max_depth());

    let index = fixture("wordnet/index.noun");
    let governed_idx = sst_wrappers::WordNetIndex::parse(&index).expect("default limits");
    let unbounded_idx = sst_wrappers::WordNetIndex::parse_with_limits(&index, &Limits::unbounded())
        .expect("unbounded");
    assert_eq!(governed_idx.len(), unbounded_idx.len());
    assert_eq!(
        governed_idx.primary_synset("professor"),
        unbounded_idx.primary_synset("professor")
    );
}

#[test]
fn wrapper_dispatch_accepts_explicit_limits() {
    use sst_wrappers::Language;
    let source = fixture("ontologies/univ-bench.owl");
    let ontology = sst_wrappers::parse_with_limits(
        Language::Owl,
        &source,
        "univ",
        "http://www.lehigh.edu/univ-bench.owl",
        &Limits::default(),
    )
    .expect("parse");
    // Starving the same parse proves the limits actually reach the parser.
    let starved = sst_wrappers::parse_with_limits(
        Language::Owl,
        &source,
        "univ",
        "http://www.lehigh.edu/univ-bench.owl",
        &Limits::default().with_max_input_bytes(64),
    )
    .unwrap_err();
    assert!(matches!(
        starved,
        sst_soqa::SoqaError::Limit(v) if v.kind == LimitKind::InputBytes
    ));
    assert!(ontology.concept_count() > 0);
}

//! Integration tests for the alignment engine: the stability property of
//! the deferred-acceptance matcher, the greedy-vs-stable quality
//! differential on seeded ground truth, and the `POST /align` endpoint.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sst_bench::{generate_taxonomy, perturb, Perturbation, TaxonomySpec};
use sst_core::{
    align_with_limits, measure_ids, Alignment, AlignmentConfig, Amalgamation, CandidateGen,
    MatchMode, SstBuilder, SstToolkit,
};
use sst_limits::Limits;
use sst_server::{Server, ServerConfig};
use sst_simpack::Combiner;

fn perturbed_pair(
    concepts: usize,
    kind: Perturbation,
    strength: f64,
) -> (SstToolkit, String, String) {
    let original = generate_taxonomy(TaxonomySpec {
        concepts,
        branching: 3,
        instances: 0,
        seed: 99,
    });
    let perturbed = perturb(&original, kind, strength, 7);
    let source = original.name().to_owned();
    let target = perturbed.name().to_owned();
    let sst = SstBuilder::new()
        .register_ontology(original)
        .expect("register original")
        .register_ontology(perturbed)
        .expect("register perturbed")
        .build();
    (sst, source, target)
}

/// The matching the stable engine emits admits no blocking pair: no
/// above-threshold (source, target) pair in which *both* sides strictly
/// prefer each other over what the matching gave them. Scores are
/// recomputed independently, pair by pair, through the public
/// `combined_similarity` path rather than trusting the engine's own
/// numbers.
#[test]
fn stable_alignment_admits_no_blocking_pair() {
    // Structure-only perturbation keeps every name unique within its
    // ontology, so by-name score lookups below are unambiguous.
    let (sst, source, target) = perturbed_pair(60, Perturbation::Structure, 0.5);
    let config = AlignmentConfig {
        threshold: 0.25,
        mode: MatchMode::Stable,
        candidates: CandidateGen::Exhaustive,
        ..AlignmentConfig::default()
    };
    let alignment =
        align_with_limits(&sst, &source, &target, &config, &Limits::default()).expect("align");
    assert!(
        !alignment.correspondences.is_empty(),
        "stable alignment found nothing to match"
    );

    let combiner = Combiner::uniform(config.strategy, config.measures.len());
    let score = |s: &str, t: &str| {
        sst.combined_similarity(s, &source, t, &target, &config.measures, &combiner)
            .expect("pairwise combined score")
    };

    // What each matched concept got, keyed by name.
    let source_got: std::collections::HashMap<&str, f64> = alignment
        .correspondences
        .iter()
        .map(|c| (c.source_concept.as_str(), c.similarity))
        .collect();
    let target_got: std::collections::HashMap<&str, f64> = alignment
        .correspondences
        .iter()
        .map(|c| (c.target_concept.as_str(), c.similarity))
        .collect();

    let names_of = |ontology: &str| -> Vec<String> {
        let ont = sst.soqa().ontology(ontology).expect("ontology");
        ont.concept_ids()
            .map(|id| ont.concept(id).name.clone())
            .collect()
    };
    let mut blocking = Vec::new();
    for s in names_of(&source) {
        for t in names_of(&target) {
            let pair = score(&s, &t);
            if pair.is_nan() || pair < config.threshold {
                continue;
            }
            let s_prefers = source_got.get(s.as_str()).is_none_or(|&got| pair > got);
            let t_prefers = target_got.get(t.as_str()).is_none_or(|&got| pair > got);
            if s_prefers && t_prefers {
                blocking.push((s.clone(), t.clone(), pair));
            }
        }
    }
    assert!(
        blocking.is_empty(),
        "stable matching admits blocking pairs: {blocking:?}"
    );
}

fn f1_against_identity(alignment: &Alignment, truth: usize) -> f64 {
    let proposed = alignment.correspondences.len();
    let correct = alignment
        .correspondences
        .iter()
        .filter(|c| c.source.concept == c.target.concept)
        .count();
    if proposed == 0 || correct == 0 {
        return 0.0;
    }
    let precision = correct as f64 / proposed as f64;
    let recall = correct as f64 / truth as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Greedy-vs-stable differential: on a heavily perturbed taxonomy where
/// concept ids are the ground truth, deferred acceptance never does worse
/// than first-come local matching, and the blocked generator never
/// materializes the full rectangle.
#[test]
fn stable_matches_ground_truth_at_least_as_well_as_greedy() {
    let concepts = 150;
    let (sst, source, target) = perturbed_pair(concepts, Perturbation::All, 0.45);
    let run = |mode: MatchMode| {
        let config = AlignmentConfig {
            measures: vec![
                measure_ids::CONCEPTUAL_SIMILARITY_MEASURE,
                measure_ids::JARO_WINKLER_MEASURE,
            ],
            strategy: Amalgamation::WeightedAverage,
            threshold: 0.35,
            mode,
            candidates: CandidateGen::Blocked { width: 8 },
        };
        align_with_limits(&sst, &source, &target, &config, &Limits::default()).expect("align")
    };
    let greedy = run(MatchMode::Greedy);
    let stable = run(MatchMode::Stable);

    assert!(
        stable.stats.candidate_pairs < concepts * concepts,
        "blocked generation materialized the full rectangle"
    );
    assert_eq!(stable.stats.sources_without_candidates, 0);

    let greedy_f1 = f1_against_identity(&greedy, concepts);
    let stable_f1 = f1_against_identity(&stable, concepts);
    assert!(
        stable_f1 >= greedy_f1,
        "stable F1 {stable_f1:.4} below greedy F1 {greedy_f1:.4}"
    );
    assert!(stable_f1 > 0.8, "stable F1 {stable_f1:.4} implausibly low");
}

fn send_raw(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    stream.write_all(raw).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    send_raw(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

struct StopOnDrop(sst_server::ShutdownHandle);

impl Drop for StopOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// `POST /align` end to end: a well-formed request aligns two registered
/// ontologies; malformed bodies and unknown names map to client errors;
/// a starved step budget maps to 422 instead of unbounded work.
#[test]
fn align_endpoint_answers_and_maps_errors() {
    let (sst, source, target) = perturbed_pair(40, Perturbation::Names, 0.3);
    let corpora = sst_server::Corpora::new("default", std::sync::Arc::new(sst));

    let serve = |limits: Limits, check: &dyn Fn(SocketAddr)| {
        let server = Server::bind(ServerConfig {
            ql_limits: limits,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        std::thread::scope(|scope| {
            let running = scope.spawn(|| server.run(&corpora));
            let _stop = StopOnDrop(handle.clone());
            check(addr);
            handle.shutdown();
            assert!(running.join().expect("run thread").is_ok());
        });
    };

    serve(Limits::default(), &|addr| {
        let body = format!(
            "{{\"source\":\"{source}\",\"target\":\"{target}\",\
             \"measures\":[\"jaro_winkler\"],\"mode\":\"stable\",\
             \"threshold\":0.5,\"width\":8}}"
        );
        let (status, reply) = post(addr, "/align", &body);
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"mode\":\"stable\""), "{reply}");
        assert!(reply.contains("\"correspondences\":["), "{reply}");
        assert!(reply.contains("\"stats\":"), "{reply}");

        // Greedy mode answers too, and echoes its mode.
        let greedy = body.replace("\"stable\"", "\"greedy\"");
        let (status, reply) = post(addr, "/align", &greedy);
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"mode\":\"greedy\""), "{reply}");

        // Client errors: garbage body, missing fields, bad mode, unknown
        // ontology, wrong method.
        assert_eq!(post(addr, "/align", "not json").0, 400);
        assert_eq!(post(addr, "/align", "{\"source\":\"x\"}").0, 400);
        let bad_mode = body.replace("\"stable\"", "\"chaotic\"");
        assert_eq!(post(addr, "/align", &bad_mode).0, 400);
        let ghost = format!("{{\"source\":\"{source}\",\"target\":\"ghost\"}}");
        assert_eq!(post(addr, "/align", &ghost).0, 404);
        assert_eq!(
            send_raw(addr, b"GET /align HTTP/1.1\r\nhost: test\r\n\r\n").0,
            405
        );
    });

    // A starved step budget is a 422, not a hung worker.
    serve(
        Limits {
            max_steps: 1,
            ..Limits::default()
        },
        &|addr| {
            let body = format!("{{\"source\":\"{source}\",\"target\":\"{target}\"}}");
            let (status, reply) = post(addr, "/align", &body);
            assert_eq!(status, 422, "{reply}");
        },
    );
}

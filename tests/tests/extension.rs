//! The paper's extension points, exercised end to end: registering a
//! supplementary `MeasureRunner` (including a *combined* measure, §5's
//! future work) and plugging a new "language" in through the SOQA meta
//! model.

use sst_core::{
    measure_ids as m, ConceptSet, MeasureRunner, RunnerInfo, SimilarityContext, SstBuilder,
};
use sst_simpack::MeasureKind;
use sst_soqa::{GlobalConcept, OntologyBuilder, OntologyMetadata};

fn tiny_ontology(name: &str) -> sst_soqa::Ontology {
    let mut b = OntologyBuilder::new(OntologyMetadata {
        name: name.into(),
        language: "Test".into(),
        ..OntologyMetadata::default()
    });
    let thing = b.concept("Thing");
    let person = b.concept("Person");
    let student = b.concept("Student");
    let professor = b.concept("Professor");
    b.add_subclass(person, thing);
    b.add_subclass(student, person);
    b.add_subclass(professor, person);
    b.build()
}

/// A user-supplied measure: exact-name equality.
#[derive(Debug)]
struct NameEqualityRunner;

impl MeasureRunner for NameEqualityRunner {
    fn info(&self) -> RunnerInfo {
        RunnerInfo {
            name: "name_equality".into(),
            display: "Name Equality".into(),
            kind: MeasureKind::String,
            normalized: true,
        }
    }

    fn similarity(&self, ctx: &SimilarityContext<'_>, a: GlobalConcept, b: GlobalConcept) -> f64 {
        f64::from(ctx.name(a) == ctx.name(b))
    }
}

/// A *combined* measure amalgamating two basic ones (Ehrig et al.'s layer
/// combination, §5): average of Wu-Palmer and name equality.
#[derive(Debug)]
struct CombinedRunner;

impl MeasureRunner for CombinedRunner {
    fn info(&self) -> RunnerInfo {
        RunnerInfo {
            name: "combined".into(),
            display: "Combined (structure + name)".into(),
            kind: MeasureKind::Graph,
            normalized: true,
        }
    }

    fn similarity(&self, ctx: &SimilarityContext<'_>, a: GlobalConcept, b: GlobalConcept) -> f64 {
        let structural = sst_simpack::wu_palmer_similarity_rooted(
            ctx.tree.taxonomy(),
            ctx.tree.node(a),
            ctx.tree.node(b),
        );
        let lexical = f64::from(ctx.name(a) == ctx.name(b));
        (structural + lexical) / 2.0
    }
}

#[test]
fn custom_runner_registers_and_runs() {
    let sst = SstBuilder::new()
        .register_ontology(tiny_ontology("a"))
        .unwrap()
        .register_ontology(tiny_ontology("b"))
        .unwrap()
        .register_runner(Box::new(NameEqualityRunner))
        .build();
    let id = sst.measure_id("name_equality").expect("registered");
    assert_eq!(id, sst.measure_count() - 1);
    assert_eq!(
        sst.get_similarity("Student", "a", "Student", "b", id)
            .unwrap(),
        1.0
    );
    assert_eq!(
        sst.get_similarity("Student", "a", "Professor", "b", id)
            .unwrap(),
        0.0
    );
}

#[test]
fn combined_runner_blends_families() {
    let sst = SstBuilder::new()
        .register_ontology(tiny_ontology("a"))
        .unwrap()
        .register_ontology(tiny_ontology("b"))
        .unwrap()
        .register_runner(Box::new(CombinedRunner))
        .build();
    let combined = sst.measure_id("combined").unwrap();
    // Same name across ontologies: lexical 1, structural small → in between.
    let v = sst
        .get_similarity("Student", "a", "Student", "b", combined)
        .unwrap();
    assert!(v > 0.5 && v < 1.0, "got {v}");
    // Custom measures drive every service, not just pairwise calls.
    let top = sst
        .most_similar("Student", "a", &ConceptSet::All, 3, combined)
        .unwrap();
    assert_eq!(top[0].concept, "Student");
    assert_eq!(top[0].ontology, "a");
    assert_eq!(top[1].concept, "Student");
    assert_eq!(top[1].ontology, "b");
}

#[test]
fn default_registry_is_stable() {
    // The paper-style integer constants must keep pointing at the right
    // runners — this pins the registration order.
    let sst = SstBuilder::new()
        .register_ontology(tiny_ontology("a"))
        .unwrap()
        .build();
    for (constant, name) in [
        (m::COSINE_MEASURE, "cosine"),
        (m::LEVENSHTEIN_MEASURE, "levenshtein"),
        (m::CONCEPTUAL_SIMILARITY_MEASURE, "wu_palmer"),
        (m::RESNIK_MEASURE, "resnik"),
        (m::LIN_MEASURE, "lin"),
        (m::TFIDF_MEASURE, "tfidf"),
        (m::TREE_EDIT_MEASURE, "tree_edit"),
    ] {
        assert_eq!(sst.measure_info(constant).unwrap().name, name);
        assert_eq!(sst.measure_id(name).unwrap(), constant);
    }
}

/// A "new ontology language" needs no SST change: anything mapped onto the
/// SOQA meta model participates in every measure (here: a fake in-memory
/// format — the same path a CYC or Ontolingua wrapper would take).
#[test]
fn new_language_via_meta_model_only() {
    let mut b = OntologyBuilder::new(OntologyMetadata {
        name: "cyc_like".into(),
        language: "CycL".into(),
        ..OntologyMetadata::default()
    });
    let thing = b.concept("Thing");
    let agent = b.concept("IntelligentAgent");
    b.add_subclass(agent, thing);
    let sst = SstBuilder::new()
        .register_ontology(b.build())
        .unwrap()
        .register_ontology(tiny_ontology("uni"))
        .unwrap()
        .build();
    let v = sst
        .get_similarity(
            "IntelligentAgent",
            "cyc_like",
            "Person",
            "uni",
            m::SHORTEST_PATH_MEASURE,
        )
        .unwrap();
    assert!(v > 0.0);
}

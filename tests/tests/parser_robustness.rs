//! Robustness fuzzing: every parser in the workspace must return `Ok` or
//! `Err` on arbitrary input — never panic, hang, or overflow. These
//! properties run the parsers over random byte soup and over mutated
//! fragments of valid documents (the nastier case). Inputs are sampled
//! with the vendored deterministic PRNG so failures reproduce exactly.

use sst_bench::SplitMix64;

const CASES: u64 = 256;

/// Random string over `alphabet` with length in `0..=max`.
fn soup(rng: &mut SplitMix64, alphabet: &str, max: usize) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    let len = rng.gen_range(0..max + 1);
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

/// Printable ASCII plus the structural characters in `extra`.
fn printable_plus(extra: &str) -> String {
    let mut s: String = (b' '..=b'~').map(char::from).collect();
    s.push('\n');
    s.push_str(extra);
    s
}

#[test]
fn xml_parser_never_panics() {
    let alphabet = printable_plus("<>&;\"'");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let input = soup(&mut rng, &alphabet, 200);
        let mut parser = sst_rdf::xml::XmlParser::new(&input);
        for _ in 0..600 {
            match parser.next_event() {
                Ok(sst_rdf::xml::XmlEvent::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
}

#[test]
fn rdfxml_parser_never_panics() {
    let alphabet = printable_plus("<>&;\"'");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0BAD);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_rdf::parse_rdfxml(&input, "http://fuzz/");
    }
}

#[test]
fn turtle_parser_never_panics() {
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x7E47);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_rdf::parse_turtle(&input, "http://fuzz/");
    }
}

#[test]
fn ntriples_parser_never_panics() {
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0170);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_rdf::parse_ntriples(&input);
    }
}

#[test]
fn sparql_parser_never_panics() {
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5AB1);
        let input = soup(&mut rng, &alphabet, 200);
        let graph = sst_rdf::Graph::new();
        let _ = sst_rdf::select(&graph, &input);
    }
}

#[test]
fn sexpr_parser_never_panics() {
    let alphabet = printable_plus("()\";");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x53B8);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_sexpr::parse_all(&input);
    }
}

#[test]
fn powerloom_wrapper_never_panics() {
    let alphabet = printable_plus("()\";?");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x9100);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_wrappers::parse_powerloom(&input, "fuzz");
    }
}

#[test]
fn wordnet_wrapper_never_panics() {
    let alphabet = printable_plus("|@");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x30D0);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_wrappers::parse_wordnet(&input, "fuzz");
        let _ = sst_wrappers::WordNetIndex::parse(&input);
    }
}

#[test]
fn soqaql_never_panics() {
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x50DA);
        let input = soup(&mut rng, &alphabet, 120);
        let soqa = sst_soqa::Soqa::new();
        let _ = sst_soqa::ql::execute(&soqa, &input);
    }
}

/// Splices `replacement` over `doc[start..start+len]` (clamped).
fn splice(doc: &str, start: usize, len: usize, replacement: &str) -> Option<String> {
    let bytes = doc.as_bytes();
    let start = start.min(bytes.len());
    let end = (start + len).min(bytes.len());
    let mut mutated = Vec::new();
    mutated.extend_from_slice(&bytes[..start]);
    mutated.extend_from_slice(replacement.as_bytes());
    mutated.extend_from_slice(&bytes[end..]);
    String::from_utf8(mutated).ok()
}

/// Mutated valid documents: flip a window of a well-formed OWL file and
/// reparse — the parser must fail cleanly or succeed, not panic.
#[test]
fn mutated_owl_never_panics() {
    const DOC: &str = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/f">
  <owl:Class rdf:ID="Person"><rdfs:comment>doc &amp; text</rdfs:comment></owl:Class>
  <owl:Class rdf:ID="Student"><rdfs:subClassOf rdf:resource="#Person"/></owl:Class>
</rdf:RDF>"##;
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0112);
        let start = rng.gen_range(0..400);
        let len = rng.gen_range(0..40);
        let replacement = soup(&mut rng, &alphabet, 40);
        if let Some(text) = splice(DOC, start, len, &replacement) {
            let _ = sst_wrappers::parse_owl(&text, "fuzz", "http://example.org/f");
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault corpus: hand-written corruptions that byte soup is
// unlikely to hit — truncated escapes, unterminated tokens, mismatched
// tags, oversized literals. Every case must come back as a structured
// error (or a clean parse where the corruption is harmless), never a
// panic or hang.
// ---------------------------------------------------------------------------

#[test]
fn truncated_unicode_escapes_error_cleanly() {
    // Turtle \u (4 hex digits) and \U (8 hex digits) cut short, at end of
    // input and before the closing quote.
    for doc in [
        "<http://e/s> <http://e/p> \"a\\u00",
        "<http://e/s> <http://e/p> \"a\\u00\" .",
        "<http://e/s> <http://e/p> \"a\\U0001F4",
        "<http://e/s> <http://e/p> \"a\\U0001F4\" .",
        "<http://e/s> <http://e/p> \"\\uZZZZ\" .",
        "@prefix e: <http://e/\\u00> .",
    ] {
        assert!(sst_rdf::parse_turtle(doc, "http://e/").is_err(), "{doc}");
    }
    for doc in [
        "<http://e/s> <http://e/p> \"a\\u00\" .",
        "<http://e/s> <http://e/p> \"a\\U0001F4\" .",
        "<http://e/s> <http://e/p> \"a\\u",
    ] {
        assert!(sst_rdf::parse_ntriples(doc).is_err(), "{doc}");
    }
}

#[test]
fn unterminated_strings_and_comments_error_cleanly() {
    assert!(sst_rdf::parse_turtle("<http://e/s> <http://e/p> \"open", "http://e/").is_err());
    assert!(
        sst_rdf::parse_turtle("<http://e/s> <http://e/p> \"\"\"long open", "http://e/").is_err()
    );
    assert!(sst_rdf::parse_ntriples("<http://e/s> <http://e/p> \"open").is_err());
    assert!(sst_sexpr::parse_all("(doc \"open").is_err());
    assert!(sst_sexpr::parse_all("(doc \"dangling\\").is_err());
    // Comments that never see a newline must terminate at EOF, not hang.
    let _ = sst_rdf::parse_turtle("# only a comment", "http://e/");
    let _ = sst_sexpr::parse_all("; only a comment");
}

#[test]
fn mismatched_close_tags_error_cleanly() {
    const OPEN: &str =
        "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\" xmlns:e=\"http://e/\">";
    for body in [
        "<e:A></e:B></rdf:RDF>",      // wrong close name
        "<e:A><e:B></e:A></rdf:RDF>", // close skips a level
        "<e:A>",                      // never closed
        "</e:A></rdf:RDF>",           // close without open
    ] {
        let doc = format!("{OPEN}{body}");
        assert!(sst_rdf::parse_rdfxml(&doc, "http://e/").is_err(), "{body}");
    }
}

#[test]
fn oversized_literals_hit_the_literal_limit() {
    use sst_rdf::LimitKind;
    let huge = "A".repeat((1 << 20) + 1); // one byte past the default cap
    let turtle = format!("<http://e/s> <http://e/p> \"{huge}\" .");
    let nt = format!("<http://e/s> <http://e/p> \"{huge}\" .\n");
    let xml = format!(
        "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\" \
         xmlns:e=\"http://e/\"><rdf:Description rdf:about=\"http://e/s\">\
         <e:p>{huge}</e:p></rdf:Description></rdf:RDF>"
    );
    let sexpr = format!("(doc \"{huge}\")");
    let wn = format!("00000001 03 n 01 entity 0 000 | {huge}\n");

    let turtle_err = sst_rdf::parse_turtle(&turtle, "http://e/").unwrap_err();
    assert!(matches!(turtle_err, sst_rdf::RdfError::Limit(v) if v.kind == LimitKind::LiteralBytes));
    let nt_err = sst_rdf::parse_ntriples(&nt).unwrap_err();
    assert!(matches!(nt_err, sst_rdf::RdfError::Limit(v) if v.kind == LimitKind::LiteralBytes));
    let xml_err = sst_rdf::parse_rdfxml(&xml, "http://e/").unwrap_err();
    assert!(matches!(xml_err, sst_rdf::RdfError::Limit(v) if v.kind == LimitKind::LiteralBytes));
    let sexpr_err = sst_sexpr::parse_all(&sexpr).unwrap_err();
    assert_eq!(
        sexpr_err.violation.map(|v| v.kind),
        Some(sst_sexpr::LimitKind::LiteralBytes)
    );
    let wn_err = sst_wrappers::parse_wordnet(&wn, "fuzz").unwrap_err();
    assert!(matches!(
        wn_err,
        sst_soqa::SoqaError::Limit(v) if v.kind == sst_wrappers::LimitKind::LiteralBytes
    ));
}

#[test]
fn wordnet_forged_counts_error_cleanly() {
    // Announced counts far beyond the fields present must be rejected
    // without pre-allocating to the announced size.
    for doc in [
        "00000001 03 n ffffffff entity 0 000 | g\n",
        "00000001 03 n 01 entity 0 999999999 @ 00000002 n 0000 | g\n",
    ] {
        assert!(sst_wrappers::parse_wordnet(doc, "fuzz").is_err(), "{doc}");
    }
    assert!(sst_wrappers::WordNetIndex::parse("bank n 99999999 0 1 1 00000001\n").is_err());
}

/// Mutated PowerLoom modules likewise.
#[test]
fn mutated_ploom_never_panics() {
    const DOC: &str = r#"(defmodule "M" :documentation "d")
(in-module "M")
(defconcept PERSON :documentation "A human.")
(defconcept STUDENT (?s PERSON))
(defrelation knows ((?a PERSON) (?b PERSON)))
(assert (PERSON Anna))"#;
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x1A0B);
        let start = rng.gen_range(0..160);
        let len = rng.gen_range(0..30);
        let replacement = soup(&mut rng, &alphabet, 30);
        if let Some(text) = splice(DOC, start, len, &replacement) {
            let _ = sst_wrappers::parse_powerloom(&text, "fuzz");
        }
    }
}

//! Robustness fuzzing: every parser in the workspace must return `Ok` or
//! `Err` on arbitrary input — never panic, hang, or overflow. These
//! properties run the parsers over random byte soup and over mutated
//! fragments of valid documents (the nastier case).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xml_parser_never_panics(input in "[ -~\\n<>&;\"']{0,200}") {
        let mut parser = sst_rdf::xml::XmlParser::new(&input);
        for _ in 0..600 {
            match parser.next_event() {
                Ok(sst_rdf::xml::XmlEvent::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    #[test]
    fn rdfxml_parser_never_panics(input in "[ -~\\n<>&;\"']{0,200}") {
        let _ = sst_rdf::parse_rdfxml(&input, "http://fuzz/");
    }

    #[test]
    fn turtle_parser_never_panics(input in "[ -~\\n]{0,200}") {
        let _ = sst_rdf::parse_turtle(&input, "http://fuzz/");
    }

    #[test]
    fn ntriples_parser_never_panics(input in "[ -~\\n]{0,200}") {
        let _ = sst_rdf::parse_ntriples(&input);
    }

    #[test]
    fn sparql_parser_never_panics(input in "[ -~\\n]{0,200}") {
        let graph = sst_rdf::Graph::new();
        let _ = sst_rdf::select(&graph, &input);
    }

    #[test]
    fn sexpr_parser_never_panics(input in "[ -~\\n()\";]{0,200}") {
        let _ = sst_sexpr::parse_all(&input);
    }

    #[test]
    fn powerloom_wrapper_never_panics(input in "[ -~\\n()\";?]{0,200}") {
        let _ = sst_wrappers::parse_powerloom(&input, "fuzz");
    }

    #[test]
    fn wordnet_wrapper_never_panics(input in "[ -~\\n|@]{0,200}") {
        let _ = sst_wrappers::parse_wordnet(&input, "fuzz");
        let _ = sst_wrappers::WordNetIndex::parse(&input);
    }

    #[test]
    fn soqaql_never_panics(input in "[ -~\\n]{0,120}") {
        let soqa = sst_soqa::Soqa::new();
        let _ = sst_soqa::ql::execute(&soqa, &input);
    }

    /// Mutated valid documents: flip a window of a well-formed OWL file and
    /// reparse — the parser must fail cleanly or succeed, not panic.
    #[test]
    fn mutated_owl_never_panics(
        start in 0usize..400,
        len in 0usize..40,
        replacement in "[ -~]{0,40}",
    ) {
        const DOC: &str = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/f">
  <owl:Class rdf:ID="Person"><rdfs:comment>doc &amp; text</rdfs:comment></owl:Class>
  <owl:Class rdf:ID="Student"><rdfs:subClassOf rdf:resource="#Person"/></owl:Class>
</rdf:RDF>"##;
        let bytes = DOC.as_bytes();
        let start = start.min(bytes.len());
        let end = (start + len).min(bytes.len());
        let mut mutated = Vec::new();
        mutated.extend_from_slice(&bytes[..start]);
        mutated.extend_from_slice(replacement.as_bytes());
        mutated.extend_from_slice(&bytes[end..]);
        if let Ok(text) = String::from_utf8(mutated) {
            let _ = sst_wrappers::parse_owl(&text, "fuzz", "http://example.org/f");
        }
    }

    /// Mutated PowerLoom modules likewise.
    #[test]
    fn mutated_ploom_never_panics(
        start in 0usize..160,
        len in 0usize..30,
        replacement in "[ -~]{0,30}",
    ) {
        const DOC: &str = r#"(defmodule "M" :documentation "d")
(in-module "M")
(defconcept PERSON :documentation "A human.")
(defconcept STUDENT (?s PERSON))
(defrelation knows ((?a PERSON) (?b PERSON)))
(assert (PERSON Anna))"#;
        let bytes = DOC.as_bytes();
        let start = start.min(bytes.len());
        let end = (start + len).min(bytes.len());
        let mut mutated = Vec::new();
        mutated.extend_from_slice(&bytes[..start]);
        mutated.extend_from_slice(replacement.as_bytes());
        mutated.extend_from_slice(&bytes[end..]);
        if let Ok(text) = String::from_utf8(mutated) {
            let _ = sst_wrappers::parse_powerloom(&text, "fuzz");
        }
    }
}

//! Robustness fuzzing: every parser in the workspace must return `Ok` or
//! `Err` on arbitrary input — never panic, hang, or overflow. These
//! properties run the parsers over random byte soup and over mutated
//! fragments of valid documents (the nastier case). Inputs are sampled
//! with the vendored deterministic PRNG so failures reproduce exactly.

use sst_bench::SplitMix64;

const CASES: u64 = 256;

/// Random string over `alphabet` with length in `0..=max`.
fn soup(rng: &mut SplitMix64, alphabet: &str, max: usize) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    let len = rng.gen_range(0..max + 1);
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

/// Printable ASCII plus the structural characters in `extra`.
fn printable_plus(extra: &str) -> String {
    let mut s: String = (b' '..=b'~').map(char::from).collect();
    s.push('\n');
    s.push_str(extra);
    s
}

#[test]
fn xml_parser_never_panics() {
    let alphabet = printable_plus("<>&;\"'");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let input = soup(&mut rng, &alphabet, 200);
        let mut parser = sst_rdf::xml::XmlParser::new(&input);
        for _ in 0..600 {
            match parser.next_event() {
                Ok(sst_rdf::xml::XmlEvent::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
}

#[test]
fn rdfxml_parser_never_panics() {
    let alphabet = printable_plus("<>&;\"'");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0BAD);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_rdf::parse_rdfxml(&input, "http://fuzz/");
    }
}

#[test]
fn turtle_parser_never_panics() {
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x7E47);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_rdf::parse_turtle(&input, "http://fuzz/");
    }
}

#[test]
fn ntriples_parser_never_panics() {
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0170);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_rdf::parse_ntriples(&input);
    }
}

#[test]
fn sparql_parser_never_panics() {
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5AB1);
        let input = soup(&mut rng, &alphabet, 200);
        let graph = sst_rdf::Graph::new();
        let _ = sst_rdf::select(&graph, &input);
    }
}

#[test]
fn sexpr_parser_never_panics() {
    let alphabet = printable_plus("()\";");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x53B8);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_sexpr::parse_all(&input);
    }
}

#[test]
fn powerloom_wrapper_never_panics() {
    let alphabet = printable_plus("()\";?");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x9100);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_wrappers::parse_powerloom(&input, "fuzz");
    }
}

#[test]
fn wordnet_wrapper_never_panics() {
    let alphabet = printable_plus("|@");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x30D0);
        let input = soup(&mut rng, &alphabet, 200);
        let _ = sst_wrappers::parse_wordnet(&input, "fuzz");
        let _ = sst_wrappers::WordNetIndex::parse(&input);
    }
}

#[test]
fn soqaql_never_panics() {
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x50DA);
        let input = soup(&mut rng, &alphabet, 120);
        let soqa = sst_soqa::Soqa::new();
        let _ = sst_soqa::ql::execute(&soqa, &input);
    }
}

/// Splices `replacement` over `doc[start..start+len]` (clamped).
fn splice(doc: &str, start: usize, len: usize, replacement: &str) -> Option<String> {
    let bytes = doc.as_bytes();
    let start = start.min(bytes.len());
    let end = (start + len).min(bytes.len());
    let mut mutated = Vec::new();
    mutated.extend_from_slice(&bytes[..start]);
    mutated.extend_from_slice(replacement.as_bytes());
    mutated.extend_from_slice(&bytes[end..]);
    String::from_utf8(mutated).ok()
}

/// Mutated valid documents: flip a window of a well-formed OWL file and
/// reparse — the parser must fail cleanly or succeed, not panic.
#[test]
fn mutated_owl_never_panics() {
    const DOC: &str = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/f">
  <owl:Class rdf:ID="Person"><rdfs:comment>doc &amp; text</rdfs:comment></owl:Class>
  <owl:Class rdf:ID="Student"><rdfs:subClassOf rdf:resource="#Person"/></owl:Class>
</rdf:RDF>"##;
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x0112);
        let start = rng.gen_range(0..400);
        let len = rng.gen_range(0..40);
        let replacement = soup(&mut rng, &alphabet, 40);
        if let Some(text) = splice(DOC, start, len, &replacement) {
            let _ = sst_wrappers::parse_owl(&text, "fuzz", "http://example.org/f");
        }
    }
}

/// Mutated PowerLoom modules likewise.
#[test]
fn mutated_ploom_never_panics() {
    const DOC: &str = r#"(defmodule "M" :documentation "d")
(in-module "M")
(defconcept PERSON :documentation "A human.")
(defconcept STUDENT (?s PERSON))
(defrelation knows ((?a PERSON) (?b PERSON)))
(assert (PERSON Anna))"#;
    let alphabet = printable_plus("");
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x1A0B);
        let start = rng.gen_range(0..160);
        let len = rng.gen_range(0..30);
        let replacement = soup(&mut rng, &alphabet, 30);
        if let Some(text) = splice(DOC, start, len, &replacement) {
            let _ = sst_wrappers::parse_powerloom(&text, "fuzz");
        }
    }
}

//! SOQA-QL end to end over the real five-ontology corpus: the query shell
//! the paper exposes through the SST facade's helper methods.

use sst_bench::{load_corpus, names};
use sst_core::TreeMode;

#[test]
fn query_all_ontology_metadata() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let t = sst
        .query("SELECT name, language, concept_count FROM ontology ORDER BY name")
        .unwrap();
    assert_eq!(t.rows.len(), 5);
    let total: i64 = t
        .rows
        .iter()
        .map(|r| r[2].render().parse::<i64>().unwrap())
        .sum();
    assert_eq!(total, 943);
    // Languages are reported per ontology.
    let langs: Vec<String> = t.rows.iter().map(|r| r[1].render()).collect();
    assert!(langs.contains(&"PowerLoom".to_owned()));
    assert!(langs.contains(&"DAML+OIL".to_owned()));
}

#[test]
fn like_query_finds_professors_across_ontologies() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let t = sst
        .query("SELECT ontology, name FROM concepts WHERE name LIKE '%rofessor%' ORDER BY ontology")
        .unwrap();
    assert!(
        t.rows.len() >= 8,
        "expected professors in several ontologies"
    );
    let ontologies: std::collections::HashSet<String> =
        t.rows.iter().map(|r| r[0].render()).collect();
    assert!(ontologies.len() >= 3);
}

#[test]
fn depth_filter_and_limit() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let t = sst
        .query(&format!(
            "SELECT name, depth FROM concepts OF '{}' WHERE depth >= 3 ORDER BY depth DESC LIMIT 5",
            names::SUMO
        ))
        .unwrap();
    assert_eq!(t.rows.len(), 5);
    let depths: Vec<i64> = t
        .rows
        .iter()
        .map(|r| r[1].render().parse().unwrap())
        .collect();
    assert!(depths.windows(2).all(|w| w[0] >= w[1]));
    assert!(depths[0] >= 5, "SUMO should be deep, got {depths:?}");
}

#[test]
fn attribute_and_instance_extents() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let attrs = sst
        .query(&format!(
            "SELECT name, concept, data_type FROM attributes OF '{}'",
            names::UNIV_BENCH
        ))
        .unwrap();
    assert!(attrs.rows.len() >= 5);
    let instances = sst
        .query(&format!(
            "SELECT name, concept FROM instances OF '{}'",
            names::COURSES
        ))
        .unwrap();
    assert!(instances.rows.iter().any(|r| r[0].render() == "ProfMeier"));
}

#[test]
fn documentation_contains_search() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    let t = sst
        .query("SELECT ontology, name FROM concepts WHERE documentation CONTAINS 'teaches'")
        .unwrap();
    assert!(!t.rows.is_empty());
}

#[test]
fn bad_queries_surface_errors() {
    let sst = load_corpus(TreeMode::SuperThing, false);
    assert!(sst.query("SELECT nothing FROM concepts").is_err());
    assert!(sst.query("DROP TABLE concepts").is_err());
    assert!(sst.query("SELECT name FROM concepts OF 'ghost'").is_err());
}

//! Integration tests for the `sst-server` query service: a real listener,
//! real client sockets, multi-threaded traffic.
//!
//! The invariants under test are the server's whole contract:
//! every accepted request is answered (200/4xx — never a hang, never a
//! 5xx under well-formed load), overload is shed with `429 Retry-After`
//! instead of queueing unboundedly, stalled clients hit the deadline
//! (`408`), shutdown drains in-flight work, and the bounded similarity
//! LRU returns bit-identical scores to the uncached toolkit even while
//! evicting under a tiny capacity.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use sst_bench::{load_corpus, names};
use sst_core::{SstToolkit, TreeMode};
use sst_server::{Corpora, Server, ServerConfig};

fn corpus() -> Arc<SstToolkit> {
    Arc::new(load_corpus(TreeMode::SuperThing, false))
}

/// Sends raw bytes, reads until the server closes, returns (status, body).
fn send_raw(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    stream.write_all(raw).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    send_raw(
        addr,
        format!("GET {target} HTTP/1.1\r\nhost: test\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    send_raw(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Pulls `"field":<number>` out of a flat JSON body.
fn json_number(body: &str, field: &str) -> f64 {
    let pat = format!("\"{field}\":");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {field} in {body:?}"))
        + pat.len();
    let rest = &body[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated number in {body:?}"));
    rest[..end].trim().parse().expect("numeric field")
}

/// Reads a named counter out of the `/metrics` text exposition
/// (`  <name padded> <value>` lines under a `counters:` heading).
fn metrics_counter(metrics_body: &str, name: &str) -> Option<u64> {
    metrics_body.lines().find_map(|line| {
        let (n, v) = line.trim_start().split_once(char::is_whitespace)?;
        (n == name).then(|| v.trim().parse().ok())?
    })
}

/// Current value of a counter, read straight from the toolkit registry
/// (no HTTP round-trip — usable while all workers are deliberately busy).
fn counter_now(sst: &SstToolkit, name: &str) -> u64 {
    metrics_counter(&sst.metrics().render_text(), name).unwrap_or(0)
}

/// Polls `pred` every 10ms for up to 5s; panics on timeout.
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    for _ in 0..500 {
        if pred() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for: {what}");
}

/// Shuts the server down even when an assertion unwinds the test, so a
/// failure panics instead of deadlocking the thread scope on join.
struct StopOnDrop(sst_server::ShutdownHandle);

impl Drop for StopOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

#[test]
fn endpoints_answer_end_to_end() {
    let sst = corpus();
    let corpora = Corpora::new("default", Arc::clone(&sst));
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(&corpora));
        let _stop = StopOnDrop(handle.clone());

        let (status, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        // Self-similarity through the cache: exactly 1 on cosine.
        let target = format!(
            "/similarity?first=Professor&first_ontology={o}&second=Professor&second_ontology={o}",
            o = names::DAML_UNIV
        );
        let (status, body) = get(addr, &target);
        assert_eq!(status, 200, "{body}");
        assert_eq!(json_number(&body, "similarity"), 1.0);

        // Measure by name == measure by id.
        let (s1, b1) = get(addr, &format!("{target}&measure=levenshtein"));
        let (s2, b2) = get(addr, &format!("{target}&measure=4"));
        assert_eq!((s1, s2), (200, 200));
        assert_eq!(
            json_number(&b1, "similarity"),
            json_number(&b2, "similarity")
        );

        let (status, body) = get(
            addr,
            &format!(
                "/rank?concept=Professor&ontology={}&k=3&measure=levenshtein",
                names::DAML_UNIV
            ),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.matches("\"concept\"").count(), 3);

        let (status, body) = post(addr, "/ql", "SELECT name FROM ontology ORDER BY name");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"columns\":[\"name\"]"), "{body}");

        // Error mapping: unknown names 404, missing params 400, bad query
        // 400, unknown endpoint 404, wrong method 405, garbage bytes 400.
        assert_eq!(
            get(
                addr,
                "/similarity?first=Nope&first_ontology=ghost&second=A&second_ontology=ghost"
            )
            .0,
            404
        );
        assert_eq!(get(addr, "/similarity?first=only").0, 400);
        assert_eq!(get(addr, &format!("{target}&measure=9999")).0, 404);
        assert_eq!(post(addr, "/ql", "SELECT nothing FROM nowhere").0, 400);
        assert_eq!(get(addr, "/no-such-endpoint").0, 404);
        assert_eq!(post(addr, "/metrics", "").0, 405);
        assert_eq!(send_raw(addr, b"GARBAGE\r\n\r\n").0, 400);

        // The metrics endpoint exposes the traffic we just generated.
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metrics_counter(&metrics, "server.requests.healthz") >= Some(1));
        assert!(metrics_counter(&metrics, "server.requests.similarity") >= Some(4));
        assert!(metrics_counter(&metrics, "server.requests.ql") >= Some(1));
        assert!(metrics_counter(&metrics, "core.cache.hits").is_some());

        handle.shutdown();
        assert!(running.join().expect("run thread").is_ok());
    });
}

#[test]
fn rank_param_audit_and_approx_path() {
    let sst = corpus();
    let corpora = Corpora::new("default", Arc::clone(&sst));
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(&corpora));
        let _stop = StopOnDrop(handle.clone());
        let base = format!("/rank?concept=Professor&ontology={}", names::DAML_UNIV);

        // Malformed numerics and k=0 are 400 — never a 500 or a hang.
        assert_eq!(get(addr, &format!("{base}&k=0")).0, 400);
        assert_eq!(get(addr, &format!("{base}&k=-3")).0, 400);
        assert_eq!(get(addr, &format!("{base}&k=abc")).0, 400);
        assert_eq!(get(addr, &format!("{base}&k=1.5")).0, 400);
        assert_eq!(get(addr, &format!("{base}&k=99999999999999999999")).0, 400);

        // k beyond the corpus truncates to the full concept set (200).
        let n = sst.tree().all_concepts().len();
        let (status, body) = get(addr, &format!("{base}&k=100000"));
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.matches("\"concept\"").count(), n);

        // approx accepts only true/1/false/0.
        assert_eq!(get(addr, &format!("{base}&k=3&approx=yes")).0, 400);
        assert_eq!(get(addr, &format!("{base}&k=3&approx=")).0, 400);
        assert_eq!(get(addr, &format!("{base}&k=3&approx=0")).0, 200);
        assert_eq!(get(addr, &format!("{base}&k=3&approx=1")).0, 200);

        // approx serves only the dense_vector measure: combining it with
        // any other measure is a 400, naming it explicitly is fine.
        assert_eq!(
            get(addr, &format!("{base}&k=3&approx=true&measure=levenshtein")).0,
            400
        );
        let (status, body) = get(
            addr,
            &format!("{base}&k=3&approx=true&measure=dense_vector"),
        );
        assert_eq!(status, 200, "{body}");

        // The approximate path returns the query itself at rank 0 with
        // similarity 1, and unknown names still 404.
        let (status, body) = get(addr, &format!("{base}&k=5&approx=true"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"concept\":\"Professor\""), "{body}");
        assert_eq!(json_number(&body, "similarity"), 1.0);
        assert_eq!(
            get(addr, "/rank?concept=Nope&ontology=ghost&k=3&approx=true").0,
            404
        );

        // The approx path records its own counter next to the endpoint's.
        let metrics = get(addr, "/metrics").1;
        let approx_requests = metrics_counter(&metrics, "server.rank.approx.requests").unwrap_or(0);
        assert!(approx_requests >= 3, "approx counter: {approx_requests}");
        assert!(metrics_counter(&metrics, "core.vector.approx.queries") >= Some(3));

        handle.shutdown();
        assert!(running.join().expect("run thread").is_ok());
    });
}

#[test]
fn concurrent_mixed_traffic_never_hangs_or_500s() {
    let sst = corpus();
    let corpora = Corpora::new("default", Arc::clone(&sst));
    let server = Server::bind(ServerConfig {
        workers: 4,
        queue_capacity: 32,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 30;

    std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(&corpora));
        let _stop = StopOnDrop(handle.clone());

        let client_threads: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut statuses = Vec::with_capacity(ROUNDS);
                    for r in 0..ROUNDS {
                        let (status, _) = match (c + r) % 4 {
                            0 => get(addr, "/healthz"),
                            1 => get(
                                addr,
                                &format!(
                                    "/similarity?first=Professor&first_ontology={o}\
                                     &second=EMPLOYEE&second_ontology={c}&measure=levenshtein",
                                    o = names::DAML_UNIV,
                                    c = names::COURSES
                                ),
                            ),
                            2 => get(
                                addr,
                                &format!(
                                    "/rank?concept=Professor&ontology={}&k=2&measure=levenshtein",
                                    names::DAML_UNIV
                                ),
                            ),
                            _ => post(addr, "/ql", "SELECT name FROM ontology"),
                        };
                        statuses.push(status);
                    }
                    statuses
                })
            })
            .collect();

        let mut ok = 0u32;
        let mut shed = 0u32;
        for t in client_threads {
            for status in t.join().expect("client thread") {
                match status {
                    200 => ok += 1,
                    429 => shed += 1,
                    other => panic!(
                        "unexpected status {other}: only 200/429 allowed under well-formed load"
                    ),
                }
            }
        }
        assert_eq!(ok as usize + shed as usize, CLIENTS * ROUNDS);
        assert!(ok > 0, "at least some traffic must get through");

        handle.shutdown();
        assert!(running.join().expect("run thread").is_ok());

        // Shed accounting matches what clients observed.
        assert_eq!(
            metrics_counter(&sst.metrics().render_text(), "server.shed"),
            Some(u64::from(shed))
        );
    });
}

#[test]
fn overload_sheds_with_429_and_drains_on_shutdown() {
    let sst = corpus();
    let corpora = Corpora::new("default", Arc::clone(&sst));
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        request_deadline: Duration::from_millis(1500),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(&corpora));
        let _stop = StopOnDrop(handle.clone());

        // Stall the only worker: connect but send nothing, forcing the
        // worker to block on the read until the deadline fires. Sequence
        // on the accept counter instead of guessing with sleeps.
        let mut stalled = TcpStream::connect(addr).expect("connect stall");
        stalled
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        wait_until("stall accepted", || {
            counter_now(&sst, "server.accepted") >= 1
        });
        // The idle worker pops it within a scheduler tick.
        std::thread::sleep(Duration::from_millis(200));

        // Queued behind the stalled request (queue capacity 1)…
        let queued = scope.spawn(|| get(addr, "/healthz"));
        wait_until("healthz accepted", || {
            counter_now(&sst, "server.accepted") >= 2
        });

        // …so further traffic overflows the queue and is shed immediately.
        let mut saw_429 = false;
        for _ in 0..5 {
            let mut stream = TcpStream::connect(addr).expect("connect shed");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
                .expect("write");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read");
            if response.starts_with("HTTP/1.1 429") {
                assert!(
                    response.to_ascii_lowercase().contains("retry-after:"),
                    "429 must carry Retry-After: {response:?}"
                );
                saw_429 = true;
            }
        }
        assert!(saw_429, "full queue must shed with 429");

        // Shutdown *now*, while one request is queued: the drain guarantee
        // says it still gets answered — and because shutdown has been
        // requested by the time the worker reaches it, `/healthz` reports
        // the replica as draining with 503 so a balancer stops sending
        // traffic here.
        handle.shutdown();
        assert_eq!(queued.join().expect("queued client").0, 503);

        // The stalled connection was answered with 408 at the deadline.
        let mut stall_response = String::new();
        stalled
            .read_to_string(&mut stall_response)
            .expect("read stall");
        assert!(
            stall_response.starts_with("HTTP/1.1 408"),
            "stalled client gets 408, got {stall_response:?}"
        );

        assert!(running.join().expect("run thread").is_ok());
        let metrics = sst.metrics().render_text();
        assert!(metrics_counter(&metrics, "server.shed") >= Some(1));
        assert!(metrics_counter(&metrics, "server.deadline_hits") >= Some(1));
    });
}

#[test]
fn tiny_lru_stays_bounded_and_bit_identical_under_concurrency() {
    let sst = corpus();
    // Cache capacity far below the working set: constant eviction.
    let corpora = Corpora::with_cache_capacity("default", Arc::clone(&sst), 2);
    let server = Server::bind(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    let pairs = [
        ("Professor", names::DAML_UNIV),
        ("EMPLOYEE", names::COURSES),
        ("Human", names::SUMO),
        ("Mammal", names::SUMO),
        ("AssistantProfessor", names::UNIV_BENCH),
    ];
    // Ground truth straight from the uncached toolkit.
    let expected: Vec<f64> = pairs
        .iter()
        .map(|&(c, o)| {
            sst.get_similarity("Professor", names::DAML_UNIV, c, o, 4)
                .expect("uncached score")
        })
        .collect();

    std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(&corpora));
        let _stop = StopOnDrop(handle.clone());

        let clients: Vec<_> = (0..4)
            .map(|c| {
                let pairs = &pairs;
                let expected = &expected;
                scope.spawn(move || {
                    for r in 0..25 {
                        let (i, &(concept, ontology)) = {
                            let i = (c + r) % pairs.len();
                            (i, &pairs[i])
                        };
                        let (status, body) = get(
                            addr,
                            &format!(
                                "/similarity?first=Professor&first_ontology={}\
                                 &second={concept}&second_ontology={ontology}&measure=4",
                                names::DAML_UNIV
                            ),
                        );
                        if status == 429 {
                            continue; // shed is legal; wrong bits are not
                        }
                        assert_eq!(status, 200, "{body}");
                        let got = json_number(&body, "similarity");
                        assert_eq!(
                            got.to_bits(),
                            expected[i].to_bits(),
                            "cached score for {concept} must be bit-identical to uncached"
                        );
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client");
        }

        handle.shutdown();
        assert!(running.join().expect("run thread").is_ok());

        // The tiny cache must actually have evicted while staying correct.
        let metrics = sst.metrics().render_text();
        assert!(
            metrics_counter(&metrics, "core.cache.evictions") > Some(0),
            "capacity 2 under a 5-pair working set must evict"
        );
    });
}

/// A minimal corpus whose ontology is `ontology` and whose concepts are
/// `Thing ← {Stable, <extra>}`; `Stable` exists in every generation, so
/// traffic survives hot swaps that change `<extra>`.
fn small_toolkit(ontology: &str, extra: &str) -> Arc<sst_core::SstToolkit> {
    use sst_soqa::{OntologyBuilder, OntologyMetadata};
    let mut b = OntologyBuilder::new(OntologyMetadata {
        name: ontology.to_owned(),
        ..OntologyMetadata::default()
    });
    let thing = b.concept("Thing");
    let stable = b.concept("Stable");
    let other = b.concept(extra);
    b.add_subclass(stable, thing);
    b.add_subclass(other, thing);
    Arc::new(
        sst_core::SstBuilder::new()
            .register_ontology(b.build())
            .expect("register")
            .build(),
    )
}

#[test]
fn tenancy_routes_by_corpus_name() {
    let sst = corpus();
    let corpora = Corpora::new("default", Arc::clone(&sst));
    corpora.insert("zoo", small_toolkit("zoo_onto", "Cat"));
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(&corpora));
        let _stop = StopOnDrop(handle.clone());

        // Default corpus answers exactly as before (no selector).
        let default_target = format!(
            "/similarity?first=Professor&first_ontology={o}&second=Professor&second_ontology={o}",
            o = names::DAML_UNIV
        );
        assert_eq!(get(addr, &default_target).0, 200);

        // The named corpus resolves its own concepts…
        let zoo_target = "/similarity?first=Stable&first_ontology=zoo_onto\
             &second=Cat&second_ontology=zoo_onto&ontology=zoo";
        let (status, body) = get(addr, zoo_target);
        assert_eq!(status, 200, "{body}");
        // …and does NOT know the default corpus's concepts (isolation).
        assert_eq!(get(addr, &format!("{default_target}&ontology=zoo")).0, 404);

        // An unknown corpus name is 404 on every selector endpoint.
        assert_eq!(
            get(addr, &format!("{default_target}&ontology=ghost")).0,
            404
        );
        let (status, body) = post(addr, "/ql?ontology=ghost", "SELECT name FROM ontology");
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("unknown corpus"), "{body}");

        // /ql routed to the named corpus sees only that corpus.
        let (status, body) = post(
            addr,
            "/ql?ontology=zoo",
            "SELECT name FROM ontology ORDER BY name",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("zoo_onto"), "{body}");
        assert!(!body.contains(names::DAML_UNIV), "{body}");

        // /rank: a corpus name routes there; a plain ontology name still
        // serves from the default corpus (compatibility).
        let (status, body) = get(addr, "/rank?concept=Stable&ontology=zoo&k=2");
        // `zoo` the corpus is addressed, but the in-corpus ontology is
        // `zoo_onto`, so concept resolution inside it is what decides.
        assert_eq!(status, 404, "{body}");
        let (status, body) = get(
            addr,
            &format!("/rank?concept=Professor&ontology={}&k=2", names::DAML_UNIV),
        );
        assert_eq!(status, 200, "{body}");

        // Duplicate corpus selectors can never route ambiguously: 400
        // end-to-end, naming the key.
        let (status, body) = get(addr, &format!("{default_target}&ontology=a&ontology=b"));
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("duplicate query parameter"), "{body}");
        assert!(body.contains("ontology"), "{body}");

        // Tenancy accounting made it to the exposition.
        let metrics = get(addr, "/metrics").1;
        assert!(metrics_counter(&metrics, "server.tenant.named") >= Some(3));
        assert!(metrics_counter(&metrics, "server.tenant.unknown") >= Some(2));
        assert!(metrics_counter(&metrics, "server.tenant.default") >= Some(1));
        assert!(metrics.contains("server.tenant.corpora"), "{metrics}");

        handle.shutdown();
        assert!(running.join().expect("run thread").is_ok());
    });
}

#[test]
fn hot_swap_under_concurrent_traffic_serves_only_200s() {
    let sst = corpus();
    let corpora = Corpora::new("default", Arc::clone(&sst));
    corpora.insert("live", small_toolkit("live_onto", "GenesisConcept"));
    let server = Server::bind(ServerConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();

    const CLIENTS: usize = 3;
    const ROUNDS: usize = 25;
    const SWAPS: usize = 10;

    std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(&corpora));
        let _stop = StopOnDrop(handle.clone());

        // Clients hammer a concept that exists in every generation while
        // the corpus is swapped out from under them.
        let clients: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let mut statuses = Vec::with_capacity(ROUNDS);
                    for _ in 0..ROUNDS {
                        let (status, _) = get(
                            addr,
                            "/similarity?first=Stable&first_ontology=live_onto\
                             &second=Thing&second_ontology=live_onto&ontology=live",
                        );
                        statuses.push(status);
                    }
                    statuses
                })
            })
            .collect();

        for generation in 0..SWAPS {
            assert!(corpora.insert(
                "live",
                small_toolkit("live_onto", &format!("Generation{generation}"))
            ));
            std::thread::sleep(Duration::from_millis(5));
        }

        for client in clients {
            for status in client.join().expect("client thread") {
                assert_eq!(status, 200, "hot swap must be invisible: every request 200");
            }
        }

        handle.shutdown();
        assert!(running.join().expect("run thread").is_ok());

        let metrics = sst.metrics().render_text();
        assert!(metrics_counter(&metrics, "server.tenant.swaps") >= Some(SWAPS as u64));
    });
}

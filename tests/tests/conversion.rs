//! Cross-language ontology conversion through the full stack: PowerLoom →
//! SOQA meta model → RDF graph → OWL (RDF/XML) → OWL wrapper → SOQA again.
//! The "semantics-aware universal data management" pipeline built from the
//! pieces this workspace provides.

use sst_bench::data_dir;
use sst_core::{measure_ids as m, SstBuilder};
use sst_rdf::select;
use sst_soqa::ontology_to_graph;
use sst_wrappers::{parse_owl, parse_powerloom};

const BASE: &str = "http://example.org/converted/courses";

fn converted_courses() -> (sst_soqa::Ontology, sst_soqa::Ontology) {
    let source =
        std::fs::read_to_string(data_dir().join("ontologies/course.ploom")).expect("course.ploom");
    let original = parse_powerloom(&source, "COURSES").expect("powerloom parse");
    let graph = ontology_to_graph(&original, BASE);
    let owl_text = sst_rdf::write_rdfxml(&graph);
    let roundtripped = parse_owl(&owl_text, "COURSES_OWL", BASE).expect("owl reparse");
    (original, roundtripped)
}

#[test]
fn conversion_preserves_concepts_and_hierarchy() {
    let (original, converted) = converted_courses();
    // The OWL side gains the implicit owl:Thing root.
    assert_eq!(converted.concept_count(), original.concept_count() + 1);
    for cid in original.concept_ids() {
        let concept = original.concept(cid);
        let converted_id = converted
            .concept_by_name(&concept.name)
            .unwrap_or_else(|| panic!("lost concept {}", concept.name));
        // Direct supers survive (names compared; Thing is added for roots).
        let original_supers: Vec<&str> = original
            .direct_supers(cid)
            .iter()
            .map(|&s| original.concept(s).name.as_str())
            .collect();
        let converted_supers: Vec<&str> = converted
            .direct_supers(converted_id)
            .iter()
            .map(|&s| converted.concept(s).name.as_str())
            .collect();
        for sup in original_supers {
            assert!(
                converted_supers.contains(&sup),
                "{} lost super {sup}",
                concept.name
            );
        }
    }
}

#[test]
fn conversion_preserves_documentation_and_attributes() {
    let (original, converted) = converted_courses();
    let student = original.concept_by_name("STUDENT").unwrap();
    let converted_student = converted.concept_by_name("STUDENT").unwrap();
    assert_eq!(
        original.concept(student).documentation,
        converted.concept(converted_student).documentation
    );
    // full-name attribute survives as a datatype property on PERSON.
    let person = converted.concept_by_name("PERSON").unwrap();
    let attrs: Vec<&str> = converted
        .concept(person)
        .attributes
        .iter()
        .map(|&a| converted.attribute(a).name.as_str())
        .collect();
    assert!(attrs.contains(&"full-name"), "attributes: {attrs:?}");
}

#[test]
fn converted_ontology_is_similarity_comparable_with_the_original() {
    let (original, converted) = converted_courses();
    let sst = SstBuilder::new()
        .register_ontology(original)
        .unwrap()
        .register_ontology(converted)
        .unwrap()
        .build();
    // A concept should recognize its converted twin with high TFIDF score.
    let sim = sst
        .get_similarity(
            "STUDENT",
            "COURSES",
            "STUDENT",
            "COURSES_OWL",
            m::TFIDF_MEASURE,
        )
        .unwrap();
    assert!(
        sim > 0.9,
        "converted twin should be near-identical, got {sim}"
    );
    // And the twin ranks first among all converted concepts.
    let top = sst
        .most_similar(
            "STUDENT",
            "COURSES",
            &sst_core::ConceptSet::Subtree(sst_core::ConceptRef::new("Thing", "COURSES_OWL")),
            1,
            m::TFIDF_MEASURE,
        )
        .unwrap();
    assert_eq!(top[0].concept, "STUDENT");
}

#[test]
fn sparql_inspects_the_exported_graph() {
    let source =
        std::fs::read_to_string(data_dir().join("ontologies/course.ploom")).expect("course.ploom");
    let original = parse_powerloom(&source, "COURSES").expect("powerloom parse");
    let graph = ontology_to_graph(&original, BASE);

    // All classes.
    let classes = select(&graph, "SELECT ?c WHERE { ?c a owl:Class . }").expect("sparql");
    assert_eq!(classes.len(), original.concept_count());

    // Subclasses of PERSON through a join + filter.
    let rows = select(
        &graph,
        &format!(
            "PREFIX c: <{BASE}#>\n\
             SELECT ?sub WHERE {{ ?sub rdfs:subClassOf c:PERSON . ?sub a owl:Class . }}"
        ),
    )
    .expect("sparql");
    assert_eq!(
        rows.len(),
        original
            .direct_subs(original.concept_by_name("PERSON").unwrap())
            .len()
    );

    // RDFS closure makes the indirect subclasses visible too.
    let closed = sst_rdf::rdfs_closure(&graph, sst_rdf::InferenceOptions::default());
    let rows = select(
        &closed,
        &format!("PREFIX c: <{BASE}#>\nSELECT ?sub WHERE {{ ?sub rdfs:subClassOf c:PERSON . }}"),
    )
    .expect("sparql");
    let person = original.concept_by_name("PERSON").unwrap();
    assert_eq!(rows.len(), original.all_subs(person).len());
}

#[test]
fn diff_of_conversion_roundtrip_shows_only_the_thing_root() {
    let (original, converted) = converted_courses();
    let diff = sst_soqa::diff_ontologies(&original, &converted);
    // Concept-level: only the implicit owl:Thing was added, plus the former
    // roots now hang under it (re-parenting of root concepts).
    assert!(diff
        .concept_changes
        .contains(&sst_soqa::ConceptChange::Added("Thing".into())));
    for change in &diff.concept_changes {
        match change {
            sst_soqa::ConceptChange::Added(n) => assert_eq!(n, "Thing"),
            sst_soqa::ConceptChange::Reparented { before, .. } => {
                assert!(before.is_empty(), "only former roots may be re-parented");
            }
            other => panic!("unexpected change {other:?}"),
        }
    }
    assert!(diff.attributes_removed.is_empty());
    assert!(diff.instances_removed.is_empty());
}

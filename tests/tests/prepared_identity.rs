//! Bit-identity of the prepared-context batch engine (PR 3 tentpole):
//! every batch service must produce *exactly* the same IEEE 754 bits as
//! the naive per-pair path, for every registered measure, on the paper
//! corpus. Comparisons use `f64::to_bits`, so even a `-0.0` vs `0.0` or
//! NaN-payload drift fails.

use sst_bench::{load_corpus, names};
use sst_core::{BatchMode, CachedSimilarity, ConceptRef, ConceptSet, SstToolkit, TreeMode};
use sst_simpack::{Amalgamation, Combiner};

fn corpus() -> SstToolkit {
    load_corpus(TreeMode::SuperThing, false)
}

/// A cross-ontology concept set exercising every runner input: taxonomy
/// positions, names, feature sets, documentation (tf-idf), and subtrees.
fn mixed_set() -> ConceptSet {
    ConceptSet::List(vec![
        ConceptRef::new("Professor", names::DAML_UNIV),
        ConceptRef::new("AssistantProfessor", names::UNIV_BENCH),
        ConceptRef::new("FullProfessor", names::UNIV_BENCH),
        ConceptRef::new("Student", names::UNIV_BENCH),
        ConceptRef::new("GraduateStudent", names::UNIV_BENCH),
        ConceptRef::new("Publication", names::UNIV_BENCH),
        ConceptRef::new("EMPLOYEE", names::COURSES),
        ConceptRef::new("COURSE", names::COURSES),
        ConceptRef::new("Human", names::SUMO),
        ConceptRef::new("Mammal", names::SUMO),
        ConceptRef::new("Publication", names::SWRC),
        ConceptRef::new("PhDStudent", names::SWRC),
        // Duplicate member: the identity axiom and memo-hit semantics must
        // survive repeated concepts in a `List` set.
        ConceptRef::new("Student", names::UNIV_BENCH),
    ])
}

fn all_measures(sst: &SstToolkit) -> Vec<usize> {
    (0..sst.measure_count()).collect()
}

fn assert_matrices_bit_identical(
    measure: usize,
    a: &(Vec<String>, Vec<Vec<f64>>),
    b: &(Vec<String>, Vec<Vec<f64>>),
    what: &str,
) {
    assert_eq!(a.0, b.0, "labels diverge for measure {measure} ({what})");
    for (i, (ra, rb)) in a.1.iter().zip(&b.1).enumerate() {
        for (j, (va, vb)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "measure {measure} {what} diverges at [{i}][{j}]: {va} vs {vb}"
            );
        }
    }
}

#[test]
fn prepared_matrix_is_bit_identical_to_naive_for_every_measure() {
    let sst = corpus();
    let set = mixed_set();
    for measure in all_measures(&sst) {
        let naive = sst
            .similarity_matrix_mode(&set, measure, BatchMode::Naive)
            .unwrap();
        let prepared = sst
            .similarity_matrix_mode(&set, measure, BatchMode::Prepared)
            .unwrap();
        assert_matrices_bit_identical(measure, &naive, &prepared, "prepared vs naive");
    }
}

#[test]
fn prepared_matrix_is_bit_identical_on_a_subtree_set() {
    let sst = corpus();
    let set = ConceptSet::Subtree(ConceptRef::new("Person", names::UNIV_BENCH));
    for measure in all_measures(&sst) {
        let naive = sst
            .similarity_matrix_mode(&set, measure, BatchMode::Naive)
            .unwrap();
        let prepared = sst
            .similarity_matrix_mode(&set, measure, BatchMode::Prepared)
            .unwrap();
        assert_matrices_bit_identical(measure, &naive, &prepared, "subtree prepared vs naive");
    }
}

#[test]
fn parallel_prepared_matrix_matches_serial_for_every_measure() {
    let sst = corpus();
    let set = mixed_set();
    for measure in all_measures(&sst) {
        let serial = sst
            .similarity_matrix_mode(&set, measure, BatchMode::Prepared)
            .unwrap();
        for threads in [1, 3, 8] {
            let parallel = sst
                .similarity_matrix_parallel_mode(&set, measure, threads, BatchMode::Prepared)
                .unwrap();
            assert_matrices_bit_identical(measure, &serial, &parallel, "parallel vs serial");
        }
        let naive_parallel = sst
            .similarity_matrix_parallel_mode(&set, measure, 4, BatchMode::Naive)
            .unwrap();
        assert_matrices_bit_identical(measure, &serial, &naive_parallel, "naive-parallel");
    }
}

#[test]
fn similarity_to_set_matches_pairwise_service_for_every_measure() {
    let sst = corpus();
    let set = mixed_set();
    let (query, query_onto) = ("Professor", names::DAML_UNIV);
    for measure in all_measures(&sst) {
        let batched = sst
            .similarity_to_set(query, query_onto, &set, measure)
            .unwrap();
        let ConceptSet::List(ref refs) = set else {
            unreachable!()
        };
        assert_eq!(batched.len(), refs.len());
        for (row, r) in batched.iter().zip(refs) {
            assert_eq!(row.concept, r.concept);
            assert_eq!(row.ontology, r.ontology);
            let direct = sst
                .get_similarity(query, query_onto, &r.concept, &r.ontology, measure)
                .unwrap();
            assert_eq!(
                row.similarity.to_bits(),
                direct.to_bits(),
                "measure {measure} batch vs pairwise diverges on {}:{}",
                r.ontology,
                r.concept
            );
        }
    }
}

#[test]
fn cached_most_similar_matches_direct_for_every_measure() {
    let sst = corpus();
    let set = mixed_set();
    let cache = CachedSimilarity::new(&sst);
    for measure in all_measures(&sst) {
        let direct = sst
            .most_similar("Student", names::UNIV_BENCH, &set, 7, measure)
            .unwrap();
        // Run the cached path twice: cold (batch-computed misses) and warm
        // (pure memo hits) must both reproduce the direct ranking.
        for pass in ["cold", "warm"] {
            let cached = cache
                .most_similar("Student", names::UNIV_BENCH, &set, 7, measure)
                .unwrap();
            assert_eq!(cached.len(), direct.len());
            for (c, d) in cached.iter().zip(&direct) {
                assert_eq!((&c.concept, &c.ontology), (&d.concept, &d.ontology));
                assert_eq!(
                    c.similarity.to_bits(),
                    d.similarity.to_bits(),
                    "measure {measure} {pass} cached ranking diverges"
                );
            }
        }
    }
    let (hits, misses) = cache.stats();
    assert!(hits > 0 && misses > 0, "hits={hits} misses={misses}");
}

#[test]
fn most_similar_multi_matches_per_measure_rankings() {
    let sst = corpus();
    let set = mixed_set();
    let measures = all_measures(&sst);
    let multi = sst
        .most_similar_multi("Human", names::SUMO, &set, 5, &measures)
        .unwrap();
    assert_eq!(multi.len(), measures.len());
    for (&measure, ranking) in measures.iter().zip(&multi) {
        let single = sst
            .most_similar("Human", names::SUMO, &set, 5, measure)
            .unwrap();
        assert_eq!(ranking.len(), single.len());
        for (a, b) in ranking.iter().zip(&single) {
            assert_eq!((&a.concept, &a.ontology), (&b.concept, &b.ontology));
            assert_eq!(
                a.similarity.to_bits(),
                b.similarity.to_bits(),
                "measure {measure} multi vs single ranking diverges"
            );
        }
    }
}

#[test]
fn combined_ranking_matches_pairwise_combined_scores() {
    let sst = corpus();
    let set = mixed_set();
    let measures = [
        sst_core::measure_ids::CONCEPTUAL_SIMILARITY_MEASURE,
        sst_core::measure_ids::LEVENSHTEIN_MEASURE,
        sst_core::measure_ids::TFIDF_MEASURE,
    ];
    let combiner = Combiner::uniform(Amalgamation::WeightedAverage, measures.len());
    let ranked = sst
        .most_similar_combined("Student", names::UNIV_BENCH, &set, 20, &measures, &combiner)
        .unwrap();
    for row in &ranked {
        let direct = sst
            .combined_similarity(
                "Student",
                names::UNIV_BENCH,
                &row.concept,
                &row.ontology,
                &measures,
                &combiner,
            )
            .unwrap();
        assert_eq!(
            row.similarity.to_bits(),
            direct.to_bits(),
            "combined ranking diverges on {}:{}",
            row.ontology,
            row.concept
        );
    }
}

#[test]
fn alignment_scores_match_pairwise_combined_scores() {
    let sst = corpus();
    let config = sst_core::AlignmentConfig::default();
    let combiner = Combiner::uniform(config.strategy, config.measures.len());
    let result = sst_core::align(&sst, names::UNIV_BENCH, names::COURSES, &config).unwrap();
    assert!(!result.is_empty());
    for corr in &result {
        let scores = sst
            .get_similarities(
                &corr.source_concept,
                names::UNIV_BENCH,
                &corr.target_concept,
                names::COURSES,
                &config.measures,
            )
            .unwrap();
        assert_eq!(
            corr.similarity.to_bits(),
            combiner.combine(&scores).to_bits(),
            "alignment score diverges on {} -> {}",
            corr.source_concept,
            corr.target_concept
        );
    }
}

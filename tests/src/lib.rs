//! Integration-test crate: see the `tests/` directory for the cross-crate
//! test suites (end-to-end paper scenario, design ablations, extension
//! points, SOQA-QL, and property-based measure invariants).

#![forbid(unsafe_code)]

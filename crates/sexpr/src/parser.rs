//! Recursive-descent parser assembling [`Value`]s from tokens.

use std::fmt;

use crate::lexer::{LexError, Lexer, Token, TokenKind};
use crate::value::Value;

/// Parse error for s-expression input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "s-expression parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses exactly one s-expression; trailing content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut forms = parse_all(input)?;
    match forms.len() {
        1 => Ok(forms.remove(0)),
        0 => Err(ParseError {
            message: "empty input".into(),
            line: 1,
        }),
        n => Err(ParseError {
            message: format!("expected one expression, found {n}"),
            line: 1,
        }),
    }
}

/// Parses a whole file of top-level forms (the shape of a `.ploom` module).
pub fn parse_all(input: &str) -> Result<Vec<Value>, ParseError> {
    parse_all_with_metrics(input, None)
}

/// Like [`parse_all`], but records throughput into `metrics` when given:
/// `sexpr.documents` / `sexpr.forms` / `sexpr.bytes` counters and the
/// `sexpr.parse.latency` histogram.
pub fn parse_all_with_metrics(
    input: &str,
    metrics: Option<&sst_obs::Metrics>,
) -> Result<Vec<Value>, ParseError> {
    let _span = metrics.map(|m| m.span("sexpr.parse.latency"));
    let tokens = Lexer::new(input).tokenize()?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut forms = Vec::new();
    while !parser.at_end() {
        forms.push(parser.parse_value()?);
    }
    if let Some(m) = metrics {
        m.inc("sexpr.documents");
        m.add("sexpr.forms", forms.len() as u64);
        m.add("sexpr.bytes", input.len() as u64);
    }
    Ok(forms)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn current_line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.current_line(),
        })
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        let Some(token) = self.tokens.get(self.pos).cloned() else {
            return self.err("unexpected end of input");
        };
        self.pos += 1;
        match token.kind {
            TokenKind::LParen => {
                let mut items = Vec::new();
                loop {
                    match self.tokens.get(self.pos).map(|t| &t.kind) {
                        Some(TokenKind::RParen) => {
                            self.pos += 1;
                            return Ok(Value::List(items));
                        }
                        Some(_) => items.push(self.parse_value()?),
                        None => return self.err("unterminated list"),
                    }
                }
            }
            TokenKind::RParen => self.err("unexpected `)`"),
            TokenKind::Symbol(s) => Ok(Value::Symbol(s)),
            TokenKind::Keyword(k) => Ok(Value::Keyword(k)),
            TokenKind::String(s) => Ok(Value::String(s)),
            TokenKind::Integer(i) => Ok(Value::Integer(i)),
            TokenKind::Float(x) => Ok(Value::Float(x)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_lists() {
        let v = parse("(defconcept STUDENT (?s PERSON) :documentation \"doc\")").expect("parse");
        let items = v.as_list().unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[0].as_symbol(), Some("defconcept"));
        assert_eq!(
            items[2],
            Value::list(vec![Value::symbol("?s"), Value::symbol("PERSON")])
        );
        assert_eq!(
            v.keyword_value("documentation").unwrap().as_str(),
            Some("doc")
        );
    }

    #[test]
    fn parses_multiple_top_level_forms() {
        let forms = parse_all("(a)\n; comment\n(b 1)").expect("parse");
        assert_eq!(forms.len(), 2);
        assert_eq!(forms[1].tail(), &[Value::Integer(1)]);
    }

    #[test]
    fn rejects_imbalanced_input() {
        assert!(parse("(a (b)").is_err());
        assert!(parse(")").is_err());
        assert!(parse("(a) (b)").is_err()); // parse() wants exactly one
        assert!(parse("").is_err());
    }

    #[test]
    fn empty_list_is_fine() {
        assert_eq!(parse("()").expect("parse"), Value::List(vec![]));
    }

    #[test]
    fn error_lines_are_meaningful() {
        let err = parse_all("(a\n(b\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}

//! Recursive-descent parser assembling [`Value`]s from tokens.

use std::fmt;

use sst_limits::{Budget, LimitViolation, Limits, Partial};

use crate::lexer::{LexError, Lexer, Token, TokenKind};
use crate::value::Value;

/// Parse error for s-expression input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
    /// Present when the error is a resource-limit violation rather than a
    /// syntax error.
    pub violation: Option<LimitViolation>,
}

impl ParseError {
    fn new(message: impl Into<String>, line: u32) -> ParseError {
        ParseError {
            message: message.into(),
            line,
            violation: None,
        }
    }

    fn limit(violation: LimitViolation, line: u32) -> ParseError {
        ParseError {
            message: violation.to_string(),
            line,
            violation: Some(violation),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "s-expression parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            violation: e.violation,
        }
    }
}

/// Parses exactly one s-expression; trailing content is an error.
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut forms = parse_all(input)?;
    match forms.len() {
        1 => Ok(forms.remove(0)),
        0 => Err(ParseError::new("empty input", 1)),
        n => Err(ParseError::new(
            format!("expected one expression, found {n}"),
            1,
        )),
    }
}

/// Parses a whole file of top-level forms (the shape of a `.ploom` module)
/// under [`Limits::default`].
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_all(input: &str) -> Result<Vec<Value>, ParseError> {
    parse_all_with_limits(input, &Limits::default(), None)
}

/// Like [`parse_all`], but records throughput into `metrics` when given:
/// `sexpr.documents` / `sexpr.forms` / `sexpr.bytes` counters and the
/// `sexpr.parse.latency` histogram.
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_all_with_metrics(
    input: &str,
    metrics: Option<&sst_obs::Metrics>,
) -> Result<Vec<Value>, ParseError> {
    parse_all_with_limits(input, &Limits::default(), metrics)
}

/// Parses a whole file of top-level forms under an explicit resource
/// [`Limits`] policy. The nesting-depth bound is what keeps the recursive
/// parse from overflowing the stack on `(((((...` input; a violation
/// carries its [`LimitViolation`] in [`ParseError::violation`] and bumps
/// the `sexpr.limit.<kind>` counter when `metrics` is given.
pub fn parse_all_with_limits(
    input: &str,
    limits: &Limits,
    metrics: Option<&sst_obs::Metrics>,
) -> Result<Vec<Value>, ParseError> {
    match parse_all_inner(input, limits, metrics) {
        (forms, None) => Ok(forms),
        (_, Some(err)) => Err(err),
    }
}

/// Parses as much of a document as possible. The returned [`Partial`]
/// holds every complete top-level form before the first error plus that
/// error; a clean parse has an empty `errors` vector.
pub fn parse_all_partial(
    input: &str,
    limits: &Limits,
    metrics: Option<&sst_obs::Metrics>,
) -> Partial<Vec<Value>, ParseError> {
    match parse_all_inner(input, limits, metrics) {
        (forms, None) => Partial::complete(forms),
        (forms, Some(err)) => Partial::broken(forms, err),
    }
}

fn record_limit(metrics: Option<&sst_obs::Metrics>, violation: &LimitViolation) {
    if let Some(m) = metrics {
        m.inc(&format!("sexpr.limit.{}", violation.kind.name()));
    }
}

fn parse_all_inner(
    input: &str,
    limits: &Limits,
    metrics: Option<&sst_obs::Metrics>,
) -> (Vec<Value>, Option<ParseError>) {
    let _span = metrics.map(|m| m.span("sexpr.parse.latency"));
    let budget = Budget::new(limits);
    if let Err(violation) = budget.check_input(input.len(), "sexpr document") {
        record_limit(metrics, &violation);
        return (Vec::new(), Some(ParseError::limit(violation, 1)));
    }
    let tokens = match Lexer::with_limits(input, limits).tokenize() {
        Ok(tokens) => tokens,
        Err(e) => {
            let err = ParseError::from(e);
            if let Some(violation) = &err.violation {
                record_limit(metrics, violation);
            }
            return (Vec::new(), Some(err));
        }
    };
    let mut parser = Parser {
        tokens,
        pos: 0,
        budget,
    };
    let mut forms = Vec::new();
    while !parser.at_end() {
        match parser.parse_value() {
            Ok(value) => forms.push(value),
            Err(err) => {
                if let Some(violation) = &err.violation {
                    record_limit(metrics, violation);
                }
                return (forms, Some(err));
            }
        }
    }
    if let Some(m) = metrics {
        m.inc("sexpr.documents");
        m.add("sexpr.forms", forms.len() as u64);
        m.add("sexpr.bytes", input.len() as u64);
    }
    (forms, None)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    budget: Budget,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn current_line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(message, self.current_line()))
    }

    fn charge(
        &mut self,
        charge: impl FnOnce(&mut Budget) -> Result<(), LimitViolation>,
    ) -> Result<(), ParseError> {
        let line = self.current_line();
        charge(&mut self.budget).map_err(|v| ParseError::limit(v, line))
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.charge(|b| b.item("sexpr values"))?;
        let Some(token) = self.tokens.get(self.pos).cloned() else {
            return self.err("unexpected end of input");
        };
        self.pos += 1;
        match token.kind {
            TokenKind::LParen => {
                // The recursion below is bounded by max_depth instead of
                // overflowing the stack on deeply nested `(((...)))` input.
                self.charge(|b| b.enter("sexpr list nesting"))?;
                let mut items = Vec::new();
                loop {
                    match self.tokens.get(self.pos).map(|t| &t.kind) {
                        Some(TokenKind::RParen) => {
                            self.pos += 1;
                            self.budget.exit();
                            return Ok(Value::List(items));
                        }
                        Some(_) => items.push(self.parse_value()?),
                        None => return self.err("unterminated list"),
                    }
                }
            }
            TokenKind::RParen => self.err("unexpected `)`"),
            TokenKind::Symbol(s) => Ok(Value::Symbol(s)),
            TokenKind::Keyword(k) => Ok(Value::Keyword(k)),
            TokenKind::String(s) => Ok(Value::String(s)),
            TokenKind::Integer(i) => Ok(Value::Integer(i)),
            TokenKind::Float(x) => Ok(Value::Float(x)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_lists() {
        let v = parse("(defconcept STUDENT (?s PERSON) :documentation \"doc\")").expect("parse");
        let items = v.as_list().unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[0].as_symbol(), Some("defconcept"));
        assert_eq!(
            items[2],
            Value::list(vec![Value::symbol("?s"), Value::symbol("PERSON")])
        );
        assert_eq!(
            v.keyword_value("documentation").unwrap().as_str(),
            Some("doc")
        );
    }

    #[test]
    fn parses_multiple_top_level_forms() {
        let forms = parse_all("(a)\n; comment\n(b 1)").expect("parse");
        assert_eq!(forms.len(), 2);
        assert_eq!(forms[1].tail(), &[Value::Integer(1)]);
    }

    #[test]
    fn rejects_imbalanced_input() {
        assert!(parse("(a (b)").is_err());
        assert!(parse(")").is_err());
        assert!(parse("(a) (b)").is_err()); // parse() wants exactly one
        assert!(parse("").is_err());
    }

    #[test]
    fn empty_list_is_fine() {
        assert_eq!(parse("()").expect("parse"), Value::List(vec![]));
    }

    #[test]
    fn error_lines_are_meaningful() {
        let err = parse_all("(a\n(b\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // Regression: parse_value recursed once per nesting level, so this
        // input crashed the process before the depth guard existed.
        let depth = 100_000;
        let mut input = String::with_capacity(2 * depth + 1);
        for _ in 0..depth {
            input.push('(');
        }
        input.push('x');
        for _ in 0..depth {
            input.push(')');
        }
        let err = parse_all(&input).unwrap_err();
        let violation = err.violation.expect("limit violation");
        assert_eq!(violation.kind, sst_limits::LimitKind::Depth);
    }

    #[test]
    fn partial_keeps_forms_before_the_error() {
        let partial = parse_all_partial("(a) (b) (c", &Limits::default(), None);
        assert!(!partial.is_complete());
        assert_eq!(partial.value.len(), 2);
    }

    #[test]
    fn unbounded_limits_opt_out_of_the_item_cap() {
        let limits = Limits::default().with_max_items(2);
        assert!(parse_all_with_limits("(a) (b) (c)", &limits, None).is_err());
        assert!(parse_all_with_limits("(a) (b) (c)", &Limits::unbounded(), None).is_ok());
    }
}

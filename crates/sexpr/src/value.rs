//! The s-expression value model.

use std::fmt;

/// A parsed s-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A bare symbol, e.g. `defconcept`, `PERSON`, or `?x`.
    Symbol(String),
    /// A keyword, e.g. `:documentation` (stored without the colon).
    Keyword(String),
    /// A quoted string with escapes decoded.
    String(String),
    /// An integer.
    Integer(i64),
    /// A floating-point number.
    Float(f64),
    /// A parenthesized list.
    List(Vec<Value>),
}

impl Value {
    /// Builds a symbol value.
    pub fn symbol(s: impl Into<String>) -> Self {
        Value::Symbol(s.into())
    }

    /// Builds a keyword value (pass the name without the leading colon).
    pub fn keyword(s: impl Into<String>) -> Self {
        Value::Keyword(s.into())
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> Self {
        Value::String(s.into())
    }

    /// Builds a list value.
    pub fn list(items: impl Into<Vec<Value>>) -> Self {
        Value::List(items.into())
    }

    /// The symbol's name, if this is a symbol.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Value::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// The keyword's name (without colon), if this is a keyword.
    pub fn as_keyword(&self) -> Option<&str> {
        match self {
            Value::Keyword(s) => Some(s),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The list items, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// First element of a list (the operator position).
    pub fn head(&self) -> Option<&Value> {
        self.as_list()?.first()
    }

    /// Elements of a list after the head.
    pub fn tail(&self) -> &[Value] {
        match self.as_list() {
            Some(items) if !items.is_empty() => &items[1..],
            _ => &[],
        }
    }

    /// Looks up the value following keyword `:name` in this list. This is the
    /// access pattern for PowerLoom options like `:documentation "..."`.
    pub fn keyword_value(&self, name: &str) -> Option<&Value> {
        let items = self.as_list()?;
        let mut iter = items.iter();
        while let Some(item) = iter.next() {
            if item.as_keyword() == Some(name) {
                return iter.next();
            }
        }
        None
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Symbol(s) => write!(f, "{s}"),
            Value::Keyword(k) => write!(f, ":{k}"),
            Value::String(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Value::list(vec![
            Value::symbol("defconcept"),
            Value::symbol("STUDENT"),
            Value::keyword("documentation"),
            Value::string("A learner."),
        ]);
        assert_eq!(v.head().unwrap().as_symbol(), Some("defconcept"));
        assert_eq!(v.tail().len(), 3);
        assert_eq!(
            v.keyword_value("documentation").unwrap().as_str(),
            Some("A learner.")
        );
        assert!(v.keyword_value("missing").is_none());
    }

    #[test]
    fn display_roundtrips_shapes() {
        let v = Value::list(vec![
            Value::symbol("f"),
            Value::Integer(3),
            Value::Float(2.5),
            Value::string("a\"b"),
            Value::keyword("k"),
        ]);
        assert_eq!(v.to_string(), "(f 3 2.5 \"a\\\"b\" :k)");
    }

    #[test]
    fn keyword_value_at_list_end_is_none() {
        let v = Value::list(vec![Value::symbol("f"), Value::keyword("dangling")]);
        assert!(v.keyword_value("dangling").is_none());
    }
}

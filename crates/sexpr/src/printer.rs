//! Pretty printer producing human-readable `.ploom`-style output.

use crate::value::Value;

/// Renders `value` with indentation: short lists stay on one line; longer
/// lists break after the head with each following element indented.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out
}

const ONE_LINE_BUDGET: usize = 60;

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::List(items) if !items.is_empty() => {
            let flat = value.to_string();
            if flat.len() <= ONE_LINE_BUDGET {
                out.push_str(&flat);
                return;
            }
            out.push('(');
            write_value(out, &items[0], indent + 1);
            let child_indent = indent + 2;
            let mut iter = items[1..].iter().peekable();
            while let Some(item) = iter.next() {
                // Keep a keyword together with its value on one line.
                if let Value::Keyword(_) = item {
                    out.push('\n');
                    out.push_str(&" ".repeat(child_indent));
                    write_value(out, item, child_indent);
                    if iter
                        .peek()
                        .is_some_and(|next| !matches!(next, Value::Keyword(_)))
                    {
                        if let Some(next) = iter.next() {
                            out.push(' ');
                            write_value(out, next, child_indent);
                        }
                    }
                } else {
                    out.push('\n');
                    out.push_str(&" ".repeat(child_indent));
                    write_value(out, item, child_indent);
                }
            }
            out.push(')');
        }
        other => out.push_str(&other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn short_forms_stay_flat() {
        let v = parse("(a b c)").unwrap();
        assert_eq!(to_string_pretty(&v), "(a b c)");
    }

    #[test]
    fn long_forms_break_with_keyword_pairs() {
        let v = parse(
            "(defconcept VISITING-PROFESSOR (?p PROFESSOR) :documentation \"A professor visiting from another institution for a term.\")",
        )
        .unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  :documentation \"A professor"));
        // Pretty output must re-parse to the same value.
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn pretty_print_roundtrips() {
        for src in [
            "(a)",
            "()",
            "(a (b (c d)) :k 1 2.5 \"s\")",
            "(assert (and (EMPLOYEE Fred) (= (salary Fred) 5000)))",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
        }
    }
}

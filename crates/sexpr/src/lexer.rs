//! Tokenizer for the KIF-style s-expression dialect PowerLoom uses.

use std::fmt;

use sst_limits::{Budget, LimitViolation, Limits};

/// Token categories.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    LParen,
    RParen,
    Symbol(String),
    Keyword(String),
    String(String),
    Integer(i64),
    Float(f64),
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// Lexer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    /// Present when the error is a resource-limit violation rather than a
    /// syntax error.
    pub violation: Option<LimitViolation>,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming tokenizer. Comments run from `;` to end of line.
#[derive(Debug)]
pub struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    budget: Budget,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer under [`Limits::default`].
    // lint: allow(limits) convenience constructor applying Limits::default()
    pub fn new(input: &'a str) -> Self {
        Self::with_limits(input, &Limits::default())
    }

    /// Creates a lexer under an explicit resource [`Limits`] policy (the
    /// per-token length cap bounds string/symbol accumulation).
    pub fn with_limits(input: &'a str, limits: &Limits) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
            budget: Budget::new(limits),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            violation: None,
        }
    }

    fn check_literal(&self, len: usize, what: &'static str) -> Result<(), LexError> {
        self.budget.check_literal(len, what).map_err(|v| LexError {
            message: v.to_string(),
            line: self.line,
            violation: Some(v),
        })
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while !matches!(self.chars.peek(), Some('\n') | None) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn is_symbol_char(c: char) -> bool {
        !c.is_whitespace() && !matches!(c, '(' | ')' | '"' | ';')
    }

    /// Produces the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_trivia();
        let line = self.line;
        let Some(&c) = self.chars.peek() else {
            return Ok(None);
        };
        let kind = match c {
            '(' => {
                self.bump();
                TokenKind::LParen
            }
            ')' => {
                self.bump();
                TokenKind::RParen
            }
            '"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    self.check_literal(s.len(), "sexpr string")?;
                    match self.bump() {
                        Some('"') => break,
                        Some('\\') => match self.bump() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some(other) => {
                                return Err(self.err(format!("unknown escape `\\{other}`")))
                            }
                            None => return Err(self.err("dangling escape")),
                        },
                        Some(c) => s.push(c),
                        None => return Err(self.err("unterminated string")),
                    }
                }
                TokenKind::String(s)
            }
            ':' => {
                self.bump();
                let mut name = String::new();
                while let Some(c) = self
                    .chars
                    .peek()
                    .copied()
                    .filter(|&c| Self::is_symbol_char(c))
                {
                    self.check_literal(name.len(), "sexpr keyword")?;
                    self.bump();
                    name.push(c);
                }
                if name.is_empty() {
                    return Err(self.err("empty keyword"));
                }
                TokenKind::Keyword(name)
            }
            _ => {
                let mut word = String::new();
                while let Some(c) = self
                    .chars
                    .peek()
                    .copied()
                    .filter(|&c| Self::is_symbol_char(c))
                {
                    self.check_literal(word.len(), "sexpr symbol")?;
                    self.bump();
                    word.push(c);
                }
                if word.is_empty() {
                    return Err(self.err(format!("unexpected character `{c}`")));
                }
                Self::classify_word(word)
            }
        };
        Ok(Some(Token { kind, line }))
    }

    /// Numbers are symbols that parse as integers or floats; everything else
    /// stays a symbol (including `?vars` and qualified names like `PL:X`).
    fn classify_word(word: String) -> TokenKind {
        let numeric_shape = {
            let body = word.strip_prefix(['+', '-']).unwrap_or(&word);
            !body.is_empty() && body.chars().all(|c| c.is_ascii_digit() || c == '.')
        };
        if numeric_shape {
            if let Ok(i) = word.parse::<i64>() {
                return TokenKind::Integer(i);
            }
            if let Ok(x) = word.parse::<f64>() {
                return TokenKind::Float(x);
            }
        }
        TokenKind::Symbol(word)
    }

    /// Collects all tokens.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        while let Some(tok) = self.next_token()? {
            tokens.push(tok);
        }
        Ok(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        Lexer::new(input)
            .tokenize()
            .expect("lex")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_structure() {
        assert_eq!(
            kinds("(defconcept X)"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("defconcept".into()),
                TokenKind::Symbol("X".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn lexes_keywords_strings_numbers() {
        assert_eq!(
            kinds(":doc \"a\\\"b\" 42 -7 3.5"),
            vec![
                TokenKind::Keyword("doc".into()),
                TokenKind::String("a\"b".into()),
                TokenKind::Integer(42),
                TokenKind::Integer(-7),
                TokenKind::Float(3.5),
            ]
        );
    }

    #[test]
    fn variables_and_qualified_names_stay_symbols() {
        assert_eq!(
            kinds("?x PL:EMPLOYEE v1.2.3"),
            vec![
                TokenKind::Symbol("?x".into()),
                TokenKind::Symbol("PL:EMPLOYEE".into()),
                TokenKind::Symbol("v1.2.3".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = Lexer::new("; header\n(a ; trailing\n b)")
            .tokenize()
            .expect("lex");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0].line, 2); // (
        assert_eq!(toks[2].line, 3); // b
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }

    #[test]
    fn plus_minus_alone_are_symbols() {
        assert_eq!(
            kinds("+ - -x"),
            vec![
                TokenKind::Symbol("+".into()),
                TokenKind::Symbol("-".into()),
                TokenKind::Symbol("-x".into()),
            ]
        );
    }
}

//! # sst-sexpr — S-expression substrate for the PowerLoom wrapper
//!
//! PowerLoom ontologies (like the SIRUP Course Ontology in the paper's
//! running example) are written in a KIF-style Lisp syntax:
//!
//! ```text
//! (defconcept EMPLOYEE (?e PERSON)
//!   :documentation "A person employed by the university.")
//! ```
//!
//! This crate provides the lexer, parser, value model, and pretty printer
//! that `sst-wrappers::powerloom` builds on.
//!
//! ```
//! use sst_sexpr::{parse, Value};
//!
//! let v = parse("(defconcept STUDENT (?s PERSON))").unwrap();
//! assert_eq!(v.head().unwrap().as_symbol(), Some("defconcept"));
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod parser;
pub mod printer;
pub mod value;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{
    parse, parse_all, parse_all_partial, parse_all_with_limits, parse_all_with_metrics, ParseError,
};
pub use printer::to_string_pretty;
pub use sst_limits::{Budget, LimitKind, LimitViolation, Limits, Partial};
pub use value::Value;

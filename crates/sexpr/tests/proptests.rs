//! Property tests: printer ↔ parser roundtrips over generated values,
//! sampled with a deterministic inline PRNG (no external test engine).

use sst_sexpr::{parse, to_string_pretty, Value};

/// Deterministic PRNG (SplitMix64) so failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick(&mut self, alphabet: &str) -> char {
        let chars: Vec<char> = alphabet.chars().collect();
        chars[self.below(chars.len())]
    }

    fn word(&mut self, first: &str, rest: &str, max_rest: usize) -> String {
        let mut s = String::new();
        s.push(self.pick(first));
        for _ in 0..self.below(max_rest + 1) {
            s.push(self.pick(rest));
        }
        s
    }

    fn printable(&mut self, max: usize) -> String {
        let len = self.below(max + 1);
        (0..len)
            .map(|_| char::from(b' ' + self.below(95) as u8))
            .collect()
    }
}

const SYM_FIRST: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ?*<>=+-";
const SYM_REST: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789?*<>=+:./-";

fn arb_atom(rng: &mut Rng) -> Value {
    match rng.below(5) {
        0 => Value::Symbol(rng.word(SYM_FIRST, SYM_REST, 12)),
        1 => Value::Keyword(rng.word(
            "abcdefghijklmnopqrstuvwxyz",
            "abcdefghijklmnopqrstuvwxyz0123456789-",
            10,
        )),
        2 => Value::String(rng.printable(16)),
        3 => Value::Integer(rng.next() as i32 as i64),
        _ => {
            let raw = (rng.next() % 32_000) as f64 / 16.0 - 1000.0;
            Value::Float((raw * 16.0).round() / 16.0)
        }
    }
}

fn arb_value(rng: &mut Rng, depth: usize) -> Value {
    if depth > 0 && rng.below(3) == 0 {
        let n = rng.below(6);
        Value::List((0..n).map(|_| arb_value(rng, depth - 1)).collect())
    } else {
        arb_atom(rng)
    }
}

/// Symbols that happen to look numeric re-lex as numbers, so exclude
/// numeric-shaped symbols from roundtrip comparisons.
fn lexes_cleanly(v: &Value) -> bool {
    match v {
        Value::Symbol(s) => {
            let body = s.strip_prefix(['+', '-']).unwrap_or(s);
            body.is_empty() || !body.chars().all(|c| c.is_ascii_digit() || c == '.')
        }
        Value::Float(x) => x.is_finite(),
        Value::List(items) => items.iter().all(lexes_cleanly),
        _ => true,
    }
}

const CASES: u64 = 256;

#[test]
fn display_roundtrips() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let v = arb_value(&mut rng, 4);
        if !lexes_cleanly(&v) {
            continue;
        }
        let printed = v.to_string();
        let reparsed = parse(&printed).expect("reparse Display output");
        assert_eq!(reparsed, v, "seed {seed}: printed as {}", printed);
    }
}

#[test]
fn pretty_printer_roundtrips() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0xBEEF));
        let v = arb_value(&mut rng, 4);
        if !lexes_cleanly(&v) {
            continue;
        }
        let pretty = to_string_pretty(&v);
        let reparsed = parse(&pretty).expect("reparse pretty output");
        assert_eq!(reparsed, v, "seed {seed}: pretty printed as {}", pretty);
    }
}

/// The keyword_value accessor finds exactly the value following the
/// first occurrence of the keyword.
#[test]
fn keyword_value_semantics() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x7A11));
        let head = rng.word(
            "abcdefghijklmnopqrstuvwxyz",
            "abcdefghijklmnopqrstuvwxyz",
            7,
        );
        let kw = rng.word(
            "abcdefghijklmnopqrstuvwxyz",
            "abcdefghijklmnopqrstuvwxyz",
            7,
        );
        let payload = rng.printable(12);
        let v = Value::list(vec![
            Value::symbol(head),
            Value::keyword(kw.clone()),
            Value::string(payload.clone()),
        ]);
        assert_eq!(
            v.keyword_value(&kw).and_then(Value::as_str),
            Some(payload.as_str()),
            "seed {seed}"
        );
        assert!(v.keyword_value("missing-keyword").is_none(), "seed {seed}");
    }
}

//! Property tests: printer ↔ parser roundtrips over arbitrary values.

use proptest::prelude::*;
use sst_sexpr::{parse, to_string_pretty, Value};

fn arb_atom() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-zA-Z?*<>=+-][a-zA-Z0-9?*<>=+:./-]{0,12}".prop_map(Value::Symbol),
        "[a-z][a-z0-9-]{0,10}".prop_map(Value::Keyword),
        proptest::string::string_regex("[ -~]{0,16}")
            .unwrap()
            .prop_map(Value::String),
        any::<i32>().prop_map(|i| Value::Integer(i as i64)),
        (-1000.0f64..1000.0).prop_map(|x| Value::Float((x * 16.0).round() / 16.0)),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_atom().prop_recursive(4, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Value::List)
    })
}

/// Symbols that happen to look numeric re-lex as numbers, so exclude
/// numeric-shaped symbols from roundtrip comparisons.
fn lexes_cleanly(v: &Value) -> bool {
    match v {
        Value::Symbol(s) => {
            let body = s.strip_prefix(['+', '-']).unwrap_or(s);
            body.is_empty() || !body.chars().all(|c| c.is_ascii_digit() || c == '.')
        }
        Value::Float(x) => x.is_finite(),
        Value::List(items) => items.iter().all(lexes_cleanly),
        _ => true,
    }
}

proptest! {
    #[test]
    fn display_roundtrips(v in arb_value().prop_filter("ambiguous lexemes", lexes_cleanly)) {
        let printed = v.to_string();
        let reparsed = parse(&printed).expect("reparse Display output");
        prop_assert_eq!(&reparsed, &v, "printed as {}", printed);
    }

    #[test]
    fn pretty_printer_roundtrips(v in arb_value().prop_filter("ambiguous lexemes", lexes_cleanly)) {
        let pretty = to_string_pretty(&v);
        let reparsed = parse(&pretty).expect("reparse pretty output");
        prop_assert_eq!(&reparsed, &v, "pretty printed as {}", pretty);
    }

    /// The keyword_value accessor finds exactly the value following the
    /// first occurrence of the keyword.
    #[test]
    fn keyword_value_semantics(
        head in "[a-z]{1,8}",
        kw in "[a-z]{1,8}",
        payload in "[ -~]{0,12}",
    ) {
        let v = Value::list(vec![
            Value::symbol(head),
            Value::keyword(kw.clone()),
            Value::string(payload.clone()),
        ]);
        prop_assert_eq!(v.keyword_value(&kw).and_then(Value::as_str), Some(payload.as_str()));
        prop_assert!(v.keyword_value("missing-keyword").is_none());
    }
}

//! Property tests for the measure library: metric axioms and normalization
//! over generated inputs, sampled with a deterministic inline PRNG (no
//! external test engine).

use std::collections::BTreeSet;

use sst_simpack::{
    cosine, dice, features, jaccard, jaro, jaro_winkler, levenshtein_distance,
    levenshtein_similarity, needleman_wunsch_similarity, overlap, qgram, sequence_similarity,
    smith_waterman_similarity, tree_edit_distance, AlignmentScoring, CostModel, LabeledTree,
};

/// Deterministic PRNG (SplitMix64) so failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// Word over a restricted alphabet, e.g. `word("abc", 0, 8)`.
    fn word(&mut self, alphabet: &[u8], min: usize, max: usize) -> String {
        let len = min + self.below(max - min + 1);
        (0..len)
            .map(|_| char::from(alphabet[self.below(alphabet.len())]))
            .collect()
    }

    fn printable(&mut self, max: usize) -> String {
        let len = self.below(max + 1);
        (0..len)
            .map(|_| char::from(b' ' + self.below(95) as u8))
            .collect()
    }
}

const CASES: u64 = 256;

/// Levenshtein is a metric: identity, symmetry, triangle inequality.
#[test]
fn levenshtein_is_a_metric() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let a = rng.word(b"abc", 0, 8);
        let b = rng.word(b"abc", 0, 8);
        let c = rng.word(b"abc", 0, 8);
        assert_eq!(levenshtein_distance(&a, &a), 0, "seed {seed}");
        assert_eq!(
            levenshtein_distance(&a, &b),
            levenshtein_distance(&b, &a),
            "seed {seed}"
        );
        let ab = levenshtein_distance(&a, &b);
        let bc = levenshtein_distance(&b, &c);
        let ac = levenshtein_distance(&a, &c);
        assert!(
            ac <= ab + bc,
            "seed {seed}: triangle violated: {} > {} + {}",
            ac,
            ab,
            bc
        );
    }
}

/// All string similarities stay in [0, 1] and are 1 on identical input.
#[test]
fn string_similarities_normalized() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x5F5F));
        let a = rng.printable(12);
        let b = rng.printable(12);
        for (name, f) in [
            (
                "levenshtein",
                levenshtein_similarity as fn(&str, &str) -> f64,
            ),
            ("jaro", jaro),
            ("jaro_winkler", jaro_winkler),
        ] {
            let v = f(&a, &b);
            assert!(
                (0.0..=1.0 + 1e-12).contains(&v),
                "seed {seed} {}: {}",
                name,
                v
            );
            assert!(
                (f(&a, &a) - 1.0).abs() < 1e-12,
                "seed {seed} {} identity",
                name
            );
            assert!(
                (v - f(&b, &a)).abs() < 1e-12,
                "seed {seed} {} symmetry",
                name
            );
        }
        let v = qgram(&a, &b, 3);
        assert!((0.0..=1.0 + 1e-12).contains(&v), "seed {seed}");
    }
}

/// Vector measures over arbitrary feature sets: range, symmetry,
/// identity (on non-empty sets), and the overlap ≥ jaccard ordering.
#[test]
fn vector_measures_axioms() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0xABCD));
        let xs: BTreeSet<String> = (0..rng.below(8))
            .map(|_| rng.word(b"abcde", 1, 3))
            .collect();
        let ys: BTreeSet<String> = (0..rng.below(8))
            .map(|_| rng.word(b"abcde", 1, 3))
            .collect();
        let x = features(xs.iter().cloned());
        let y = features(ys.iter().cloned());
        for f in [cosine, jaccard, overlap, dice] {
            let v = f(&x, &y);
            assert!((0.0..=1.0 + 1e-12).contains(&v), "seed {seed}");
            assert!((v - f(&y, &x)).abs() < 1e-12, "seed {seed}");
            if !x.is_empty() {
                assert!((f(&x, &x) - 1.0).abs() < 1e-12, "seed {seed}");
            }
        }
        assert!(overlap(&x, &y) + 1e-12 >= jaccard(&x, &y), "seed {seed}");
        assert!(dice(&x, &y) + 1e-12 >= jaccard(&x, &y), "seed {seed}");
    }
}

/// Sequence similarity (Eq. 4) and both alignment similarities stay in
/// [0, 1], symmetric under symmetric costs, and 1 on identical input.
#[test]
fn sequence_measures_axioms() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x4321));
        let a: Vec<String> = (0..rng.below(10))
            .map(|_| rng.word(b"abcd", 1, 2))
            .collect();
        let b: Vec<String> = (0..rng.below(10))
            .map(|_| rng.word(b"abcd", 1, 2))
            .collect();
        let scoring = AlignmentScoring::default();
        for (name, v, w) in [
            (
                "levenshtein",
                sequence_similarity(&a, &b, CostModel::UNIT),
                sequence_similarity(&b, &a, CostModel::UNIT),
            ),
            (
                "needleman_wunsch",
                needleman_wunsch_similarity(&a, &b, scoring),
                needleman_wunsch_similarity(&b, &a, scoring),
            ),
            (
                "smith_waterman",
                smith_waterman_similarity(&a, &b, scoring),
                smith_waterman_similarity(&b, &a, scoring),
            ),
        ] {
            assert!(
                (0.0..=1.0 + 1e-12).contains(&v),
                "seed {seed} {}: {}",
                name,
                v
            );
            assert!((v - w).abs() < 1e-12, "seed {seed} {} symmetry", name);
        }
        assert!(
            (sequence_similarity(&a, &a, CostModel::UNIT) - 1.0).abs() < 1e-12,
            "seed {seed}"
        );
        assert!(
            (needleman_wunsch_similarity(&a, &a, scoring) - 1.0).abs() < 1e-12,
            "seed {seed}"
        );
    }
}

/// Random tree via a parent vector (parent[i] < i) with labels from a
/// small set — the same shape the proptest strategy generated.
fn arb_tree(rng: &mut Rng) -> LabeledTree {
    let n = 1 + rng.below(9);
    let mut tree = LabeledTree::new();
    let mut ids = Vec::new();
    for i in 0..n {
        let label = rng.word(b"abc", 1, 1);
        let parent = if i == 0 {
            None
        } else {
            Some(ids[rng.below(i)])
        };
        ids.push(tree.add_node(label, parent));
    }
    tree
}

/// Tree edit distance: identity, symmetry, and the size bound
/// d(a, b) ≤ |a| + |b|.
#[test]
fn tree_edit_axioms() {
    for seed in 0..64u64 {
        let mut rng = Rng(seed.wrapping_mul(0x7E57));
        let a = arb_tree(&mut rng);
        let b = arb_tree(&mut rng);
        assert_eq!(tree_edit_distance(&a, &a), 0, "seed {seed}");
        let ab = tree_edit_distance(&a, &b);
        assert_eq!(ab, tree_edit_distance(&b, &a), "seed {seed}");
        assert!(ab <= a.len() + b.len(), "seed {seed}");
        // Distance at least the size difference.
        assert!(ab >= a.len().abs_diff(b.len()), "seed {seed}");
    }
}

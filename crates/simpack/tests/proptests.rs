//! Property tests for the measure library: metric axioms and normalization
//! over random inputs.

use proptest::prelude::*;
use sst_simpack::{
    cosine, dice, features, jaccard, jaro, jaro_winkler, levenshtein_distance,
    levenshtein_similarity, needleman_wunsch_similarity, overlap, qgram, sequence_similarity,
    smith_waterman_similarity, tree_edit_distance, AlignmentScoring, CostModel, LabeledTree,
};

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(
        a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}"
    ) {
        prop_assert_eq!(levenshtein_distance(&a, &a), 0);
        prop_assert_eq!(levenshtein_distance(&a, &b), levenshtein_distance(&b, &a));
        let ab = levenshtein_distance(&a, &b);
        let bc = levenshtein_distance(&b, &c);
        let ac = levenshtein_distance(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle violated: {} > {} + {}", ac, ab, bc);
    }

    /// All string similarities stay in [0, 1] and are 1 on identical input.
    #[test]
    fn string_similarities_normalized(a in "[ -~]{0,12}", b in "[ -~]{0,12}") {
        for (name, f) in [
            ("levenshtein", levenshtein_similarity as fn(&str, &str) -> f64),
            ("jaro", jaro),
            ("jaro_winkler", jaro_winkler),
        ] {
            let v = f(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{}: {}", name, v);
            prop_assert!((f(&a, &a) - 1.0).abs() < 1e-12, "{} identity", name);
            prop_assert!((v - f(&b, &a)).abs() < 1e-12, "{} symmetry", name);
        }
        let v = qgram(&a, &b, 3);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
    }

    /// Vector measures over arbitrary feature sets: range, symmetry,
    /// identity (on non-empty sets), and the overlap ≥ jaccard ordering.
    #[test]
    fn vector_measures_axioms(
        xs in proptest::collection::btree_set("[a-e]{1,3}", 0..8),
        ys in proptest::collection::btree_set("[a-e]{1,3}", 0..8),
    ) {
        let x = features(xs.iter().cloned());
        let y = features(ys.iter().cloned());
        for f in [cosine, jaccard, overlap, dice] {
            let v = f(&x, &y);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
            prop_assert!((v - f(&y, &x)).abs() < 1e-12);
            if !x.is_empty() {
                prop_assert!((f(&x, &x) - 1.0).abs() < 1e-12);
            }
        }
        prop_assert!(overlap(&x, &y) + 1e-12 >= jaccard(&x, &y));
        prop_assert!(dice(&x, &y) + 1e-12 >= jaccard(&x, &y));
    }

    /// Sequence similarity (Eq. 4) and both alignment similarities stay in
    /// [0, 1], symmetric under symmetric costs, and 1 on identical input.
    #[test]
    fn sequence_measures_axioms(
        a in proptest::collection::vec("[a-d]{1,2}", 0..10),
        b in proptest::collection::vec("[a-d]{1,2}", 0..10),
    ) {
        let scoring = AlignmentScoring::default();
        for (name, v, w) in [
            (
                "levenshtein",
                sequence_similarity(&a, &b, CostModel::UNIT),
                sequence_similarity(&b, &a, CostModel::UNIT),
            ),
            (
                "needleman_wunsch",
                needleman_wunsch_similarity(&a, &b, scoring),
                needleman_wunsch_similarity(&b, &a, scoring),
            ),
            (
                "smith_waterman",
                smith_waterman_similarity(&a, &b, scoring),
                smith_waterman_similarity(&b, &a, scoring),
            ),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{}: {}", name, v);
            prop_assert!((v - w).abs() < 1e-12, "{} symmetry", name);
        }
        prop_assert!((sequence_similarity(&a, &a, CostModel::UNIT) - 1.0).abs() < 1e-12);
        prop_assert!(
            (needleman_wunsch_similarity(&a, &a, scoring) - 1.0).abs() < 1e-12
        );
    }
}

fn arb_tree() -> impl Strategy<Value = LabeledTree> {
    // Random parent vector (parent[i] < i) with labels from a small set.
    (1usize..10).prop_flat_map(|n| {
        let labels = proptest::collection::vec("[a-c]", n);
        let parents: Vec<BoxedStrategy<usize>> = (0..n)
            .map(|i| {
                if i == 0 {
                    Just(0usize).boxed()
                } else {
                    (0..i).boxed()
                }
            })
            .collect();
        (labels, parents).prop_map(|(labels, parents)| {
            let mut tree = LabeledTree::new();
            let mut ids = Vec::new();
            for (i, label) in labels.iter().enumerate() {
                let parent = if i == 0 { None } else { Some(ids[parents[i]]) };
                ids.push(tree.add_node(label.clone(), parent));
            }
            tree
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tree edit distance: identity, symmetry, and the size bound
    /// d(a, b) ≤ |a| + |b|.
    #[test]
    fn tree_edit_axioms(a in arb_tree(), b in arb_tree()) {
        prop_assert_eq!(tree_edit_distance(&a, &a), 0);
        let ab = tree_edit_distance(&a, &b);
        prop_assert_eq!(ab, tree_edit_distance(&b, &a));
        prop_assert!(ab <= a.len() + b.len());
        // Distance at least the size difference.
        prop_assert!(ab >= a.len().abs_diff(b.len()));
    }
}

//! Seeded differential tests for the fast kernels: every bit-parallel or
//! bitset-backed path must reproduce its classic reference implementation
//! *bit for bit* on randomized inputs, including the multi-block regime
//! (patterns longer than one 64-bit word) and non-ASCII alphabets. The
//! PRNG is deterministic (SplitMix64), so any failure reproduces exactly
//! from the printed seed.

use sst_simpack::{
    jaro, jaro_fast, jaro_winkler, jaro_winkler_fast, levenshtein_similarity_chars,
    myers_sequence_similarity_from, myers_similarity_chars_from, needleman_wunsch_similarity,
    needleman_wunsch_similarity_scratch, qgram, qgram_packed_from, sequence_similarity,
    smith_waterman_similarity, smith_waterman_similarity_scratch, with_jaro_scratch,
    with_myers_scratch, AlignScratch, AlignmentScoring, CostModel, JaroMask, MyersPattern,
    QGramPacked,
};

/// Deterministic PRNG (SplitMix64) so failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Mixed alphabet: ASCII letters plus multi-byte code points (Latin-1
/// supplement, Greek, CJK, and an astral-plane symbol) so char-to-symbol
/// casts and 21-bit q-gram packing see the full scalar-value range.
const ALPHABET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'A', 'Z', '0', '9', '_', ' ', 'é', 'ß', 'λ', 'Ω', '中', '文', '𝛼',
];

fn word(rng: &mut Rng, max_len: usize) -> Vec<char> {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| ALPHABET[rng.below(ALPHABET.len())])
        .collect()
}

/// Classic O(nm) two-row Levenshtein DP over arbitrary symbols — the
/// independent reference the bit-parallel kernel is checked against.
fn classic_levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = Vec::with_capacity(b.len() + 1);
    for (i, x) in a.iter().enumerate() {
        curr.clear();
        curr.push(i + 1);
        for (y, w) in b.iter().zip(prev.windows(2)) {
            let sub = w[0] + usize::from(x != y);
            let del = w[1] + 1;
            let ins = curr.last().copied().unwrap_or(0) + 1;
            curr.push(sub.min(del).min(ins));
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev.last().copied().unwrap_or(0)
}

/// Myers over chars equals the classic DP distance and reproduces
/// `levenshtein_similarity_chars` bit for bit — across the single-block
/// (≤ 64) and multi-block (up to 300-symbol) regimes.
#[test]
fn myers_chars_matches_classic_dp_including_multiblock() {
    for seed in 0..400u64 {
        let mut rng = Rng(seed.wrapping_mul(0xC0FF_EE01));
        // Skew lengths so both regimes are well sampled: half the cases
        // stay under one block, half stretch into multi-block territory.
        let max = if seed % 2 == 0 { 64 } else { 300 };
        let a = word(&mut rng, max);
        let b = word(&mut rng, max);
        let pattern = MyersPattern::from_chars(&a);
        let fast = with_myers_scratch(|s| myers_similarity_chars_from(&pattern, &b, s));
        let reference = levenshtein_similarity_chars(&a, &b);
        assert_eq!(
            fast.to_bits(),
            reference.to_bits(),
            "seed {seed}: myers {fast} vs classic {reference} (|a|={}, |b|={})",
            a.len(),
            b.len()
        );
        let dist = with_myers_scratch(|s| pattern.distance_chars(&b, s));
        assert_eq!(dist, classic_levenshtein(&a, &b), "seed {seed} distance");
    }
}

/// Myers over interned u32 tokens reproduces the unit-cost weighted
/// sequence DP (Eq. 4 with `CostModel::UNIT`) bit for bit.
#[test]
fn myers_ids_matches_unit_sequence_similarity() {
    for seed in 0..400u64 {
        let mut rng = Rng(seed.wrapping_mul(0xBEEF_0002));
        let max = if seed % 2 == 0 { 64 } else { 300 };
        // Small id alphabet forces plenty of matches; occasional large ids
        // exercise the sparse symbol table.
        let ids = |rng: &mut Rng| -> Vec<u32> {
            let len = rng.below(max + 1);
            (0..len)
                .map(|_| {
                    if rng.below(16) == 0 {
                        rng.next() as u32
                    } else {
                        rng.below(12) as u32
                    }
                })
                .collect()
        };
        let a = ids(&mut rng);
        let b = ids(&mut rng);
        let pattern = MyersPattern::new(&a);
        let fast = with_myers_scratch(|s| myers_sequence_similarity_from(&pattern, &b, s));
        let reference = sequence_similarity(&a, &b, CostModel::UNIT);
        assert_eq!(
            fast.to_bits(),
            reference.to_bits(),
            "seed {seed}: myers {fast} vs sequence DP {reference} (|a|={}, |b|={})",
            a.len(),
            b.len()
        );
        let dist = with_myers_scratch(|s| pattern.distance_ids(&b, s));
        assert_eq!(dist, classic_levenshtein(&a, &b), "seed {seed} distance");
    }
}

/// Packed (sorted-u64 bitset) q-gram profiles reproduce the hash-set
/// profile's Dice value bit for bit for every q that packs (q ≤ 3).
#[test]
fn qgram_packed_matches_hash_profile() {
    for seed in 0..400u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9_0003));
        let a: String = word(&mut rng, 40).into_iter().collect();
        let b: String = word(&mut rng, 40).into_iter().collect();
        for q in 1..=3usize {
            let pa = QGramPacked::new(&a, q).expect("q <= 3 packs");
            let pb = QGramPacked::new(&b, q).expect("q <= 3 packs");
            let fast = qgram_packed_from(&pa, &pb);
            let reference = qgram(&a, &b, q);
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "seed {seed} q={q}: packed {fast} vs hash {reference} ({a:?} vs {b:?})"
            );
        }
        assert!(QGramPacked::new(&a, 4).is_none(), "q=4 must not pack");
    }
}

/// One `AlignScratch` reused across many pairs carries capacity only,
/// never state: every scratch call reproduces the allocating reference
/// bit for bit, in whatever order the pairs arrive.
#[test]
fn alignment_scratch_reuse_matches_fresh_allocation() {
    let scoring = AlignmentScoring::default();
    let mut scratch = AlignScratch::default();
    for seed in 0..400u64 {
        let mut rng = Rng(seed.wrapping_mul(0xA119_0005));
        let a = word(&mut rng, 30);
        let b = word(&mut rng, 30);
        let nw = needleman_wunsch_similarity_scratch(&a, &b, scoring, &mut scratch);
        assert_eq!(
            nw.to_bits(),
            needleman_wunsch_similarity(&a, &b, scoring).to_bits(),
            "seed {seed} needleman-wunsch"
        );
        let sw = smith_waterman_similarity_scratch(&a, &b, scoring, &mut scratch);
        assert_eq!(
            sw.to_bits(),
            smith_waterman_similarity(&a, &b, scoring).to_bits(),
            "seed {seed} smith-waterman"
        );
    }
}

/// The scratch-reusing masked Jaro / Jaro-Winkler kernels reproduce the
/// string references bit for bit — with a precomputed position mask, and
/// without one (the > 64-char fallback regime).
#[test]
fn jaro_fast_matches_reference_with_and_without_mask() {
    for seed in 0..400u64 {
        let mut rng = Rng(seed.wrapping_mul(0x1A70_0004));
        // Half the cases fit the 64-char mask window, half overflow it.
        let max = if seed % 2 == 0 { 64 } else { 100 };
        let a = word(&mut rng, max);
        let b = word(&mut rng, max);
        let sa: String = a.iter().collect();
        let sb: String = b.iter().collect();
        let mask = JaroMask::new(&b);
        assert_eq!(mask.is_some(), b.len() <= 64, "seed {seed} mask gate");
        for use_mask in [false, true] {
            let bmask = if use_mask { mask.as_ref() } else { None };
            let fast = with_jaro_scratch(|s| jaro_fast(&a, &b, bmask, s));
            let reference = jaro(&sa, &sb);
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "seed {seed} mask={use_mask}: jaro {fast} vs {reference} ({sa:?} vs {sb:?})"
            );
            let fast_w = with_jaro_scratch(|s| jaro_winkler_fast(&a, &b, bmask, s));
            let reference_w = jaro_winkler(&sa, &sb);
            assert_eq!(
                fast_w.to_bits(),
                reference_w.to_bits(),
                "seed {seed} mask={use_mask}: jaro-winkler {fast_w} vs {reference_w}"
            );
        }
    }
}

//! Measure amalgamation (paper §5): Ehrig et al. combine per-layer
//! similarities with an amalgamation function, and the paper notes such
//! combined measures slot into SST as additional runners. This module
//! provides the combination strategies as first-class values so toolkit
//! clients can build weighted ensembles declaratively.

/// How a set of component scores is folded into one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Amalgamation {
    /// Weighted arithmetic mean.
    WeightedAverage,
    /// The maximum component (optimistic).
    Max,
    /// The minimum component (pessimistic).
    Min,
    /// Weighted harmonic mean — punishes disagreement between components
    /// harder than the arithmetic mean.
    HarmonicMean,
}

/// A combination of component scores with per-component weights.
#[derive(Debug, Clone)]
pub struct Combiner {
    strategy: Amalgamation,
    weights: Vec<f64>,
}

impl Combiner {
    /// Builds a combiner. Weights must be positive and are normalized
    /// internally; for `Max`/`Min` they are ignored.
    pub fn new(strategy: Amalgamation, weights: Vec<f64>) -> Result<Combiner, String> {
        if weights.is_empty() {
            return Err("at least one weight is required".to_owned());
        }
        if weights
            .iter()
            .any(|&w| w <= 0.0 || !w.is_finite() || w.is_nan())
        {
            return Err("weights must be positive and finite".to_owned());
        }
        Ok(Combiner { strategy, weights })
    }

    /// Uniform weights for `n` components.
    pub fn uniform(strategy: Amalgamation, n: usize) -> Combiner {
        // Bypass `new` rather than unwrap its validation: the literal
        // weight 1.0 satisfies it by construction.
        Combiner {
            strategy,
            weights: vec![1.0; n.max(1)],
        }
    }

    /// Number of component scores expected.
    pub fn arity(&self) -> usize {
        self.weights.len()
    }

    /// Folds `scores` (same length as the weights) into one value.
    ///
    /// # Panics
    /// Panics if `scores.len() != self.arity()`.
    pub fn combine(&self, scores: &[f64]) -> f64 {
        // lint: allow(panic) documented in the `# Panics` section: arity is a construction-time invariant
        assert_eq!(
            scores.len(),
            self.weights.len(),
            "score/weight arity mismatch"
        );
        // NaN handling is uniform across all four strategies: any NaN
        // component makes the combined score NaN, which downstream
        // `NaN >= threshold` filters drop. Without this check, `Max`/`Min`
        // would silently skip NaN operands (`f64::max`/`f64::min` ignore
        // them), so an all-NaN slice folded to ±inf — an out-of-range
        // "similarity" that passes every threshold.
        if scores.iter().any(|s| s.is_nan()) {
            return f64::NAN;
        }
        let total: f64 = self.weights.iter().sum();
        match self.strategy {
            Amalgamation::WeightedAverage => {
                scores
                    .iter()
                    .zip(&self.weights)
                    .map(|(s, w)| s * w)
                    .sum::<f64>()
                    / total
            }
            Amalgamation::Max => scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Amalgamation::Min => scores.iter().copied().fold(f64::INFINITY, f64::min),
            Amalgamation::HarmonicMean => {
                if scores.contains(&0.0) {
                    return 0.0;
                }
                total
                    / scores
                        .iter()
                        .zip(&self.weights)
                        .map(|(s, w)| w / s)
                        .sum::<f64>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_average() {
        let c = Combiner::new(Amalgamation::WeightedAverage, vec![3.0, 1.0]).unwrap();
        assert!((c.combine(&[1.0, 0.0]) - 0.75).abs() < 1e-12);
        assert!((c.combine(&[0.4, 0.8]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_and_min() {
        let c = Combiner::uniform(Amalgamation::Max, 3);
        assert_eq!(c.combine(&[0.2, 0.9, 0.4]), 0.9);
        let c = Combiner::uniform(Amalgamation::Min, 3);
        assert_eq!(c.combine(&[0.2, 0.9, 0.4]), 0.2);
    }

    #[test]
    fn harmonic_mean_punishes_disagreement() {
        let c = Combiner::uniform(Amalgamation::HarmonicMean, 2);
        let agree = c.combine(&[0.5, 0.5]);
        let disagree = c.combine(&[0.9, 0.1]);
        assert!((agree - 0.5).abs() < 1e-12);
        assert!(disagree < 0.2);
        assert_eq!(c.combine(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn preserves_unit_range_for_unit_inputs() {
        for strategy in [
            Amalgamation::WeightedAverage,
            Amalgamation::Max,
            Amalgamation::Min,
            Amalgamation::HarmonicMean,
        ] {
            let c = Combiner::uniform(strategy, 3);
            for scores in [[0.0, 0.5, 1.0], [1.0, 1.0, 1.0], [0.0, 0.0, 0.0]] {
                let v = c.combine(&scores);
                assert!((0.0..=1.0).contains(&v), "{strategy:?} gave {v}");
            }
        }
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(Combiner::new(Amalgamation::Max, vec![]).is_err());
        assert!(Combiner::new(Amalgamation::Max, vec![0.0]).is_err());
        assert!(Combiner::new(Amalgamation::Max, vec![-1.0]).is_err());
        assert!(Combiner::new(Amalgamation::Max, vec![f64::NAN]).is_err());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        Combiner::uniform(Amalgamation::Max, 2).combine(&[0.5]);
    }

    #[test]
    fn nan_propagates_uniformly() {
        // Regression: `f64::min`/`f64::max` ignore NaN operands, so an
        // all-NaN slice used to fold to +inf (Min) / -inf (Max) — values
        // outside [0, 1] that pass any threshold filter.
        for strategy in [
            Amalgamation::WeightedAverage,
            Amalgamation::Max,
            Amalgamation::Min,
            Amalgamation::HarmonicMean,
        ] {
            let c = Combiner::uniform(strategy, 2);
            assert!(
                c.combine(&[f64::NAN, f64::NAN]).is_nan(),
                "{strategy:?} did not propagate all-NaN"
            );
            assert!(
                c.combine(&[0.5, f64::NAN]).is_nan(),
                "{strategy:?} did not propagate mixed NaN"
            );
            // A NaN combined score is dropped by the caller-side
            // `score >= threshold` filter even at threshold 0.
            let combined = c.combine(&[f64::NAN, 0.9]);
            assert_ne!(
                combined.partial_cmp(&0.0),
                Some(std::cmp::Ordering::Greater)
            );
            assert!(combined.is_nan());
        }
        // HarmonicMean's zero short-circuit must not mask a NaN component.
        let h = Combiner::uniform(Amalgamation::HarmonicMean, 2);
        assert!(h.combine(&[0.0, f64::NAN]).is_nan());
        // NaN-free inputs are unaffected.
        let min = Combiner::uniform(Amalgamation::Min, 2);
        assert_eq!(min.combine(&[0.3, 0.7]), 0.3);
        let max = Combiner::uniform(Amalgamation::Max, 2);
        assert_eq!(max.combine(&[0.3, 0.7]), 0.7);
    }
}

//! Information-theoretic similarity measures (paper §2.2, Eq. 7–8):
//! Resnik (1995) and Lin (1998), plus Jiang-Conrath as an extension.
//!
//! The probability `p(c)` of encountering a concept is computed over a
//! corpus: either instance counts (when extensions are populated) or —
//! the paper's proposal for sparsely populated Semantic Web ontologies —
//! subclass counts, where every concept contributes one observation to
//! itself and all its ancestors.

use crate::graph::{AncestorList, NodeId, Taxonomy};

/// How `p(c)` is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbabilityMode {
    /// Counts from concept instances (Resnik's original corpus counting).
    InstanceCorpus,
    /// Each concept counts once — the paper's subclass-based fallback.
    SubclassCount,
}

/// Precomputed information content for every node of a taxonomy.
#[derive(Debug, Clone)]
pub struct InformationContent {
    /// `p(c)` per node, in (0, 1].
    prob: Vec<f64>,
}

impl InformationContent {
    /// Computes `p(c)` from per-node observation counts: each node's count
    /// is propagated to all its ancestors, and probabilities normalize by
    /// the root's total. Zero-count nodes still contribute an epsilon
    /// observation so their IC is finite.
    pub fn from_counts(taxonomy: &Taxonomy, counts: &[f64]) -> Self {
        // lint: allow(panic) construction-time invariant; counts come from the same taxonomy's node table
        assert_eq!(counts.len(), taxonomy.node_count(), "one count per node");
        let n = taxonomy.node_count();
        let mut cumulative = vec![0.0; n];
        for node in 0..n as NodeId {
            let weight = counts[node as usize].max(1e-9);
            // Propagate to self and every ancestor (deduplicated).
            for (anc, d) in taxonomy.up_distances(node).iter().enumerate() {
                if d.is_some() {
                    cumulative[anc] += weight;
                }
            }
        }
        let total = cumulative[taxonomy.root() as usize];
        let prob = cumulative
            .into_iter()
            .map(|c| (c / total).clamp(1e-12, 1.0))
            .collect();
        InformationContent { prob }
    }

    /// Instance-corpus probabilities from per-concept instance counts.
    pub fn from_instances(taxonomy: &Taxonomy, instance_counts: &[usize]) -> Self {
        let counts: Vec<f64> = instance_counts.iter().map(|&c| c as f64).collect();
        Self::from_counts(taxonomy, &counts)
    }

    /// Subclass-count probabilities (every concept = one observation).
    pub fn from_subclasses(taxonomy: &Taxonomy) -> Self {
        Self::from_counts(taxonomy, &vec![1.0; taxonomy.node_count()])
    }

    /// Builds with the given mode, falling back to subclass counts when the
    /// instance space is *sparsely populated* — the paper's recommendation
    /// ("when the instance space is sparsely populated (as currently in
    /// most Semantic Web ontologies) … we propose to use the probability of
    /// encountering a subclass"). "Sparse" means fewer than 10% of concepts
    /// carry any instance.
    pub fn for_mode(taxonomy: &Taxonomy, mode: ProbabilityMode, instance_counts: &[usize]) -> Self {
        match mode {
            ProbabilityMode::SubclassCount => Self::from_subclasses(taxonomy),
            ProbabilityMode::InstanceCorpus => {
                let populated = instance_counts.iter().filter(|&&c| c > 0).count();
                if populated * 10 < taxonomy.node_count() {
                    Self::from_subclasses(taxonomy)
                } else {
                    Self::from_instances(taxonomy, instance_counts)
                }
            }
        }
    }

    /// `p(c)`.
    pub fn probability(&self, node: NodeId) -> f64 {
        self.prob[node as usize]
    }

    /// Information content `−log₂ p(c)`.
    pub fn ic(&self, node: NodeId) -> f64 {
        -self.probability(node).log2()
    }
}

/// The common subsumer with maximal information content, if any, computed
/// from two precomputed upward-distance tables (see
/// [`Taxonomy::up_distances`]). This is the batch entry point: matrix scans
/// compute one table per concept instead of two fresh BFS runs per pair.
pub fn best_subsumer_from(
    ic: &InformationContent,
    da: &[Option<u32>],
    db: &[Option<u32>],
) -> Option<NodeId> {
    (0..da.len() as NodeId)
        .filter(|&n| da[n as usize].is_some() && db[n as usize].is_some())
        .max_by(|&x, &y| {
            ic.ic(x)
                .partial_cmp(&ic.ic(y))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(y.cmp(&x)) // deterministic tie-break on smaller id
        })
}

/// The common subsumer with maximal information content, if any.
fn best_subsumer(t: &Taxonomy, ic: &InformationContent, a: NodeId, b: NodeId) -> Option<NodeId> {
    best_subsumer_from(ic, &t.up_distances(a), &t.up_distances(b))
}

/// [`best_subsumer_from`] over compact ancestor lists (see
/// [`AncestorList`]). The merge walk visits the common nodes in the same
/// ascending id order as the full-table scan, and the fold replicates
/// `max_by` exactly (keep the incumbent only when it compares `Greater`),
/// so the selected subsumer — and every IC measure built on it — is
/// identical.
pub fn best_subsumer_compact(
    ic: &InformationContent,
    a: &AncestorList,
    b: &AncestorList,
) -> Option<NodeId> {
    let mut best: Option<NodeId> = None;
    for (n, _, _) in a.common(b) {
        best = Some(match best {
            None => n,
            Some(x) => {
                let keep = ic
                    .ic(x)
                    .partial_cmp(&ic.ic(n))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(n.cmp(&x))
                    == std::cmp::Ordering::Greater;
                if keep {
                    x
                } else {
                    n
                }
            }
        });
    }
    best
}

/// [`resnik_similarity_from`] over compact ancestor lists.
pub fn resnik_similarity_compact(
    ic: &InformationContent,
    a: &AncestorList,
    b: &AncestorList,
) -> f64 {
    resnik_core(ic, best_subsumer_compact(ic, a, b))
}

/// [`lin_similarity_from`] over compact ancestor lists.
pub fn lin_similarity_compact(
    ic: &InformationContent,
    a: NodeId,
    b: NodeId,
    la: &AncestorList,
    lb: &AncestorList,
) -> f64 {
    let denom = ic.probability(a).log2() + ic.probability(b).log2();
    if denom == 0.0 {
        return if a == b { 1.0 } else { 0.0 };
    }
    lin_core(ic, best_subsumer_compact(ic, la, lb), denom)
}

/// [`jiang_conrath_similarity_from`] over compact ancestor lists.
pub fn jiang_conrath_similarity_compact(
    ic: &InformationContent,
    a: NodeId,
    b: NodeId,
    la: &AncestorList,
    lb: &AncestorList,
) -> f64 {
    jiang_conrath_core(ic, a, b, best_subsumer_compact(ic, la, lb))
}

/// Resnik similarity (Eq. 7): `max_{z ∈ S(a,b)} −log₂ p(z)`.
///
/// **Unnormalized**: the value is an information content in bits (Table 1
/// reports 12.7 for the self-comparison), not a score in [0, 1].
pub fn resnik_similarity(t: &Taxonomy, ic: &InformationContent, a: NodeId, b: NodeId) -> f64 {
    resnik_core(ic, best_subsumer(t, ic, a, b))
}

/// Table-based [`resnik_similarity`].
pub fn resnik_similarity_from(
    ic: &InformationContent,
    da: &[Option<u32>],
    db: &[Option<u32>],
) -> f64 {
    resnik_core(ic, best_subsumer_from(ic, da, db))
}

fn resnik_core(ic: &InformationContent, best: Option<NodeId>) -> f64 {
    // `+ 0.0` canonicalizes IEEE −0.0 (from −log₂ 1) to 0.0.
    best.map(|z| ic.ic(z)).unwrap_or(0.0) + 0.0
}

/// Lin similarity (Eq. 8):
/// `2·log₂ p(mrca) / (log₂ p(a) + log₂ p(b))`, in [0, 1].
///
/// When both arguments carry zero information (p = 1, e.g. the root), the
/// value is 1 for identical concepts and 0 otherwise.
pub fn lin_similarity(t: &Taxonomy, ic: &InformationContent, a: NodeId, b: NodeId) -> f64 {
    let denom = ic.probability(a).log2() + ic.probability(b).log2();
    if denom == 0.0 {
        return if a == b { 1.0 } else { 0.0 };
    }
    lin_core(ic, best_subsumer(t, ic, a, b), denom)
}

/// Table-based [`lin_similarity`].
pub fn lin_similarity_from(
    ic: &InformationContent,
    a: NodeId,
    b: NodeId,
    da: &[Option<u32>],
    db: &[Option<u32>],
) -> f64 {
    let denom = ic.probability(a).log2() + ic.probability(b).log2();
    if denom == 0.0 {
        return if a == b { 1.0 } else { 0.0 };
    }
    lin_core(ic, best_subsumer_from(ic, da, db), denom)
}

fn lin_core(ic: &InformationContent, best: Option<NodeId>, denom: f64) -> f64 {
    let Some(z) = best else {
        return 0.0;
    };
    // `+ 0.0` canonicalizes IEEE −0.0 (zero numerator, negative denominator).
    (2.0 * ic.probability(z).log2() / denom).clamp(0.0, 1.0) + 0.0
}

/// Jiang-Conrath distance converted to a similarity:
/// `1 / (1 + IC(a) + IC(b) − 2·IC(mrca))`. An extension measure (the
/// paper's future work lists additional IC measures).
pub fn jiang_conrath_similarity(
    t: &Taxonomy,
    ic: &InformationContent,
    a: NodeId,
    b: NodeId,
) -> f64 {
    jiang_conrath_core(ic, a, b, best_subsumer(t, ic, a, b))
}

/// Table-based [`jiang_conrath_similarity`].
pub fn jiang_conrath_similarity_from(
    ic: &InformationContent,
    a: NodeId,
    b: NodeId,
    da: &[Option<u32>],
    db: &[Option<u32>],
) -> f64 {
    jiang_conrath_core(ic, a, b, best_subsumer_from(ic, da, db))
}

fn jiang_conrath_core(ic: &InformationContent, a: NodeId, b: NodeId, best: Option<NodeId>) -> f64 {
    let Some(z) = best else {
        return 0.0;
    };
    let distance = (ic.ic(a) + ic.ic(b) - 2.0 * ic.ic(z)).max(0.0);
    1.0 / (1.0 + distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0=root, 1=Person, 2=Student, 3=Professor, 4=FullProf, 5=Animal,
    /// 6=Bird — same shape as the graph-measure tests.
    fn sample() -> Taxonomy {
        let mut t = Taxonomy::new(7, 0);
        t.add_edge(1, 0);
        t.add_edge(2, 1);
        t.add_edge(3, 1);
        t.add_edge(4, 3);
        t.add_edge(5, 0);
        t.add_edge(6, 5);
        t
    }

    #[test]
    fn subclass_probabilities_sum_at_root() {
        let t = sample();
        let ic = InformationContent::from_subclasses(&t);
        assert!((ic.probability(0) - 1.0).abs() < 1e-9);
        // Person subtree: Person, Student, Professor, FullProf = 4 of 7.
        assert!((ic.probability(1) - 4.0 / 7.0).abs() < 1e-9);
        assert!((ic.probability(6) - 1.0 / 7.0).abs() < 1e-9);
        // Monotone: ancestors are at least as probable.
        assert!(ic.probability(1) <= ic.probability(0));
        assert!(ic.probability(4) <= ic.probability(3));
    }

    #[test]
    fn root_ic_is_zero() {
        let t = sample();
        let ic = InformationContent::from_subclasses(&t);
        assert_eq!(ic.ic(0), 0.0);
        assert!(ic.ic(4) > ic.ic(3));
    }

    #[test]
    fn resnik_zero_across_root_positive_within() {
        let t = sample();
        let ic = InformationContent::from_subclasses(&t);
        // Student vs Bird subsume only at the root: IC 0.
        assert_eq!(resnik_similarity(&t, &ic, 2, 6), 0.0);
        // Student vs Professor share Person.
        let r = resnik_similarity(&t, &ic, 2, 3);
        assert!((r - (4.0f64 / 7.0).log2().abs()).abs() < 1e-9);
        // Self-similarity equals own IC (unnormalized!).
        assert!((resnik_similarity(&t, &ic, 4, 4) - ic.ic(4)).abs() < 1e-12);
        assert!(resnik_similarity(&t, &ic, 4, 4) > 1.0);
    }

    #[test]
    fn lin_bounds_and_identity() {
        let t = sample();
        let ic = InformationContent::from_subclasses(&t);
        assert_eq!(lin_similarity(&t, &ic, 4, 4), 1.0);
        assert_eq!(lin_similarity(&t, &ic, 2, 6), 0.0);
        let l = lin_similarity(&t, &ic, 2, 3);
        assert!(l > 0.0 && l < 1.0);
        assert_eq!(lin_similarity(&t, &ic, 0, 0), 1.0);
        assert_eq!(lin_similarity(&t, &ic, 0, 1), 0.0);
    }

    #[test]
    fn lin_prefers_closer_concepts() {
        let t = sample();
        let ic = InformationContent::from_subclasses(&t);
        let near = lin_similarity(&t, &ic, 3, 4); // Professor vs FullProf
        let far = lin_similarity(&t, &ic, 2, 4); // Student vs FullProf
        assert!(near > far);
    }

    #[test]
    fn instance_corpus_changes_probabilities() {
        let t = sample();
        // Heavy instance skew toward Bird.
        let ic = InformationContent::from_instances(&t, &[0, 0, 1, 1, 1, 0, 97]);
        assert!(ic.probability(6) > 0.9);
        assert!(ic.ic(6) < 0.2);
        // A rarely-instantiated concept is highly informative.
        assert!(ic.ic(2) > 5.0);
    }

    #[test]
    fn empty_instance_corpus_falls_back_to_subclasses() {
        let t = sample();
        let fallback = InformationContent::for_mode(&t, ProbabilityMode::InstanceCorpus, &[0; 7]);
        let subclass = InformationContent::from_subclasses(&t);
        for n in 0..7 {
            assert!((fallback.probability(n) - subclass.probability(n)).abs() < 1e-12);
        }
    }

    #[test]
    fn jiang_conrath_identity_and_ordering() {
        let t = sample();
        let ic = InformationContent::from_subclasses(&t);
        assert_eq!(jiang_conrath_similarity(&t, &ic, 3, 3), 1.0);
        let near = jiang_conrath_similarity(&t, &ic, 3, 4);
        let far = jiang_conrath_similarity(&t, &ic, 3, 6);
        assert!(near > far);
    }

    #[test]
    fn table_variants_are_bit_identical() {
        let t = sample();
        let ic = InformationContent::from_subclasses(&t);
        let tables: Vec<_> = (0..7).map(|n| t.up_distances(n)).collect();
        for a in 0..7 {
            for b in 0..7 {
                let (da, db) = (&tables[a as usize], &tables[b as usize]);
                assert_eq!(
                    resnik_similarity_from(&ic, da, db).to_bits(),
                    resnik_similarity(&t, &ic, a, b).to_bits()
                );
                assert_eq!(
                    lin_similarity_from(&ic, a, b, da, db).to_bits(),
                    lin_similarity(&t, &ic, a, b).to_bits()
                );
                assert_eq!(
                    jiang_conrath_similarity_from(&ic, a, b, da, db).to_bits(),
                    jiang_conrath_similarity(&t, &ic, a, b).to_bits()
                );
            }
        }
    }

    #[test]
    fn compact_variants_are_bit_identical() {
        let t = sample();
        let ic = InformationContent::from_subclasses(&t);
        let tables: Vec<_> = (0..7).map(|n| t.up_distances(n)).collect();
        let lists: Vec<_> = tables
            .iter()
            .map(|up| AncestorList::from_table(up))
            .collect();
        for a in 0..7 {
            for b in 0..7 {
                let (da, db) = (&tables[a as usize], &tables[b as usize]);
                let (la, lb) = (&lists[a as usize], &lists[b as usize]);
                assert_eq!(
                    best_subsumer_compact(&ic, la, lb),
                    best_subsumer_from(&ic, da, db)
                );
                assert_eq!(
                    resnik_similarity_compact(&ic, la, lb).to_bits(),
                    resnik_similarity_from(&ic, da, db).to_bits()
                );
                assert_eq!(
                    lin_similarity_compact(&ic, a, b, la, lb).to_bits(),
                    lin_similarity_from(&ic, a, b, da, db).to_bits()
                );
                assert_eq!(
                    jiang_conrath_similarity_compact(&ic, a, b, la, lb).to_bits(),
                    jiang_conrath_similarity_from(&ic, a, b, da, db).to_bits()
                );
            }
        }
    }

    #[test]
    fn measures_are_symmetric() {
        let t = sample();
        let ic = InformationContent::from_subclasses(&t);
        for (a, b) in [(2, 3), (2, 6), (0, 4)] {
            assert!(
                (resnik_similarity(&t, &ic, a, b) - resnik_similarity(&t, &ic, b, a)).abs() < 1e-12
            );
            assert!((lin_similarity(&t, &ic, a, b) - lin_similarity(&t, &ic, b, a)).abs() < 1e-12);
            assert!(
                (jiang_conrath_similarity(&t, &ic, a, b) - jiang_conrath_similarity(&t, &ic, b, a))
                    .abs()
                    < 1e-12
            );
        }
    }
}

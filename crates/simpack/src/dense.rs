//! Dense-vector similarity — the embedding counterpart of [`crate::vector`].
//!
//! The sparse measures in [`crate::vector`] operate on TF-IDF term
//! vectors directly; this module provides the fixed-dimension dense
//! kernels underneath the toolkit's vector-retrieval subsystem (concept
//! embeddings, exact and approximate top-k). The functions are plain
//! `&[f64]` slice math with a pinned accumulation order so that every
//! caller — the naive per-pair runner, the prepared batch path, and the
//! vector store — produces bit-identical scores.
//!
//! Scores for ranking use the *shifted unit cosine*
//! `(1 + x·y) / 2` over L2-normalized vectors: it is a strictly
//! monotone transform of cosine (so top-k order is preserved), and it
//! maps the signed cosine range [-1, 1] into the normalized-measure
//! range [0, 1] required by the toolkit's measure invariants.

/// Dot product over the common prefix of two dense vectors, accumulated
/// left to right. Both the exact scan and the ANN probe use this exact
/// loop so their scores agree bit-for-bit.
pub fn dense_dot(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    let mut sum = 0.0;
    for i in 0..n {
        sum += x[i] * y[i];
    }
    sum
}

/// Euclidean (L2) norm.
pub fn dense_norm(x: &[f64]) -> f64 {
    dense_dot(x, x).sqrt()
}

/// True when every component is exactly zero — the embedding of a
/// concept with no textual description. Zero vectors have no direction,
/// so similarity against them is defined as 0.
pub fn dense_is_zero(x: &[f64]) -> bool {
    x.iter().all(|&v| v == 0.0)
}

/// L2-normalizes in place; a zero vector is left untouched.
pub fn dense_normalize(x: &mut [f64]) {
    let norm = dense_norm(x);
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

/// Cosine similarity of arbitrary dense vectors, clamped to [-1, 1];
/// 0 when either vector is zero.
pub fn dense_cosine(x: &[f64], y: &[f64]) -> f64 {
    let denom = dense_norm(x) * dense_norm(y);
    if denom == 0.0 {
        0.0
    } else {
        (dense_dot(x, y) / denom).clamp(-1.0, 1.0)
    }
}

/// Ranking similarity for *unit* (pre-normalized) vectors: the shifted
/// unit cosine `(1 + x·y) / 2`, clamped to [0, 1]. Zero vectors score 0
/// against everything — "no description" must not look half-similar to
/// every concept.
pub fn dense_unit_similarity(x: &[f64], y: &[f64]) -> f64 {
    if dense_is_zero(x) || dense_is_zero(y) {
        return 0.0;
    }
    (0.5 * (1.0 + dense_dot(x, y))).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_basics() {
        assert_eq!(dense_dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dense_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(dense_dot(&[], &[1.0]), 0.0);
    }

    #[test]
    fn normalize_produces_unit_vectors_and_skips_zero() {
        let mut v = vec![3.0, 4.0];
        dense_normalize(&mut v);
        assert!((dense_norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        dense_normalize(&mut z);
        assert!(dense_is_zero(&z));
    }

    #[test]
    fn unit_similarity_range_and_extremes() {
        let mut a = vec![1.0, 1.0];
        dense_normalize(&mut a);
        let mut b = vec![-1.0, -1.0];
        dense_normalize(&mut b);
        assert!((dense_unit_similarity(&a, &a) - 1.0).abs() < 1e-12);
        assert!(dense_unit_similarity(&a, &b).abs() < 1e-12);
        let mut c = vec![1.0, -1.0];
        dense_normalize(&mut c);
        let s = dense_unit_similarity(&a, &c);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_vectors_score_zero_not_half() {
        let z = vec![0.0, 0.0];
        let mut a = vec![1.0, 0.0];
        dense_normalize(&mut a);
        assert_eq!(dense_unit_similarity(&z, &a), 0.0);
        assert_eq!(dense_unit_similarity(&z, &z), 0.0);
        assert_eq!(dense_cosine(&z, &a), 0.0);
    }

    #[test]
    fn unit_similarity_is_monotone_in_cosine() {
        // Vectors at increasing angles from `a` must score strictly
        // lower — the property ANN relies on to rank by dot product.
        let a = [1.0, 0.0];
        let angles = [0.0_f64, 0.5, 1.0, 2.0, 3.0];
        let scores: Vec<f64> = angles
            .iter()
            .map(|t| dense_unit_similarity(&a, &[t.cos(), t.sin()]))
            .collect();
        for w in scores.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn unit_similarity_is_symmetric_bitwise() {
        let mut a = vec![0.3, -0.7, 0.2];
        let mut b = vec![-0.1, 0.9, 0.4];
        dense_normalize(&mut a);
        dense_normalize(&mut b);
        assert_eq!(
            dense_unit_similarity(&a, &b).to_bits(),
            dense_unit_similarity(&b, &a).to_bits()
        );
    }
}

//! Ordered-tree edit distance (Zhang & Shasha 1989) — the "additional
//! similarity measures (especially for trees)" the paper lists as future
//! work, implemented here so taxonomy subtrees can be compared structurally.

/// An ordered, labeled tree built incrementally.
#[derive(Debug, Clone, Default)]
pub struct LabeledTree {
    labels: Vec<String>,
    children: Vec<Vec<usize>>,
    root: Option<usize>,
}

impl LabeledTree {
    pub fn new() -> Self {
        LabeledTree::default()
    }

    /// Adds a node with `label` under `parent` (`None` = the root; only one
    /// root is allowed). Returns the node index.
    pub fn add_node(&mut self, label: impl Into<String>, parent: Option<usize>) -> usize {
        let id = self.labels.len();
        self.labels.push(label.into());
        self.children.push(Vec::new());
        match parent {
            Some(p) => self.children[p].push(id),
            None => {
                // lint: allow(panic) builder misuse (second root) is a programming error, not input-dependent
                assert!(self.root.is_none(), "tree already has a root");
                self.root = Some(id);
            }
        }
        id
    }

    /// Builds a tree from a nested tuple description, e.g.
    /// `("f", [("a", []), ("b", [("c", [])])])` written as s-expressions:
    /// `(f a (b c))`.
    pub fn from_sexpr(text: &str) -> Result<LabeledTree, String> {
        let value = sst_sexpr_parse(text)?;
        let mut tree = LabeledTree::new();
        build_from_value(&value, None, &mut tree)?;
        Ok(tree)
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn label(&self, node: usize) -> &str {
        &self.labels[node]
    }

    /// Post-order traversal of node indices.
    fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        if let Some(root) = self.root {
            self.post_visit(root, &mut order);
        }
        order
    }

    fn post_visit(&self, node: usize, order: &mut Vec<usize>) {
        for &c in &self.children[node] {
            self.post_visit(c, order);
        }
        order.push(node);
    }
}

// A tiny local s-expression reader (kept here to avoid a dependency cycle:
// sst-sexpr depends on nothing, but simpack is meant to stay standalone).
fn sst_sexpr_parse(text: &str) -> Result<SexprNode, String> {
    let mut chars = text.chars().peekable();
    let node = parse_node(&mut chars)?;
    for c in chars {
        if !c.is_whitespace() {
            return Err(format!("trailing content `{c}`"));
        }
    }
    Ok(node)
}

#[derive(Debug)]
struct SexprNode {
    label: String,
    children: Vec<SexprNode>,
}

fn parse_node(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<SexprNode, String> {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
    match chars.peek() {
        Some('(') => {
            chars.next();
            let label = read_word(chars)?;
            let mut children = Vec::new();
            loop {
                while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
                    chars.next();
                }
                match chars.peek() {
                    Some(')') => {
                        chars.next();
                        return Ok(SexprNode { label, children });
                    }
                    Some(_) => children.push(parse_node(chars)?),
                    None => return Err("unterminated list".to_owned()),
                }
            }
        }
        Some(_) => Ok(SexprNode {
            label: read_word(chars)?,
            children: Vec::new(),
        }),
        None => Err("empty input".to_owned()),
    }
}

fn read_word(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    let mut word = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() || c == '(' || c == ')' {
            break;
        }
        word.push(c);
        chars.next();
    }
    if word.is_empty() {
        Err("expected a label".to_owned())
    } else {
        Ok(word)
    }
}

fn build_from_value(
    value: &SexprNode,
    parent: Option<usize>,
    tree: &mut LabeledTree,
) -> Result<(), String> {
    let id = tree.add_node(value.label.clone(), parent);
    for child in &value.children {
        build_from_value(child, Some(id), tree)?;
    }
    Ok(())
}

/// Zhang-Shasha tree edit distance with unit costs (insert, delete,
/// relabel each cost 1).
pub fn tree_edit_distance(a: &LabeledTree, b: &LabeledTree) -> usize {
    tree_edit_distance_zs(&ZsTree::new(a), &ZsTree::new(b))
}

/// [`tree_edit_distance`] over pre-built [`ZsTree`] forms. Batch scans
/// preprocess each tree once (postorder, leftmost leaves, keyroots) and
/// reuse the forms across every pair.
pub fn tree_edit_distance_zs(ta: &ZsTree, tb: &ZsTree) -> usize {
    let mut scratch = ZsScratch::new();
    tree_edit_distance_zs_scratch(ta, tb, &mut scratch)
}

/// Reusable flat DP buffers for the Zhang-Shasha distance: the `n_a × n_b`
/// subtree-distance table plus the per-keyroot-pair forest table, hoisted
/// out of the per-pair path so batch scans allocate once per thread.
#[derive(Debug, Clone, Default)]
pub struct ZsScratch {
    treedist: Vec<usize>,
    fd: Vec<usize>,
}

impl ZsScratch {
    pub fn new() -> ZsScratch {
        ZsScratch::default()
    }
}

/// One thread-local [`ZsScratch`] per thread for `&self` batch scorers.
pub fn with_zs_scratch<R>(f: impl FnOnce(&mut ZsScratch) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<ZsScratch> = RefCell::new(ZsScratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // Unreachable in practice (`f` never re-enters); a fresh scratch
        // computes the same distance.
        Err(_) => f(&mut ZsScratch::new()),
    })
}

/// [`tree_edit_distance_zs`] with caller-provided scratch buffers — the
/// same integer DP, so the distance is identical.
pub fn tree_edit_distance_zs_scratch(ta: &ZsTree, tb: &ZsTree, scratch: &mut ZsScratch) -> usize {
    if ta.n == 0 {
        return tb.n;
    }
    if tb.n == 0 {
        return ta.n;
    }
    let cells = ta.n * tb.n;
    scratch.treedist.clear();
    scratch.treedist.resize(cells, 0);
    for &i in &ta.keyroots {
        for &j in &tb.keyroots {
            compute_treedist(ta, tb, i, j, &mut scratch.treedist, &mut scratch.fd);
        }
    }
    scratch.treedist.last().copied().unwrap_or(0)
}

/// Tree similarity: `1 − d / (|a| + |b|)`. The denominator is the worst
/// case (delete all of `a`, insert all of `b`), so the value is in [0, 1].
pub fn tree_similarity(a: &LabeledTree, b: &LabeledTree) -> f64 {
    tree_similarity_zs(&ZsTree::new(a), &ZsTree::new(b))
}

/// [`tree_similarity`] over pre-built [`ZsTree`] forms.
pub fn tree_similarity_zs(ta: &ZsTree, tb: &ZsTree) -> f64 {
    let mut scratch = ZsScratch::new();
    tree_similarity_zs_scratch(ta, tb, &mut scratch)
}

/// [`tree_similarity_zs`] with caller-provided scratch buffers (the same
/// distance through the same final expression, hence bit-identical).
pub fn tree_similarity_zs_scratch(ta: &ZsTree, tb: &ZsTree, scratch: &mut ZsScratch) -> f64 {
    let total = ta.n + tb.n;
    if total == 0 {
        return 1.0;
    }
    1.0 - tree_edit_distance_zs_scratch(ta, tb, scratch) as f64 / total as f64
}

/// Preprocessed tree in Zhang-Shasha form: postorder labels, leftmost-leaf
/// indices, and keyroots.
#[derive(Debug, Clone)]
pub struct ZsTree {
    labels: Vec<String>,
    /// FNV-1a hash of each label: the relabel-cost check compares hashes
    /// first and only falls back to the strings on a hash match, which
    /// cannot change the outcome (distinct hashes imply distinct strings).
    label_hashes: Vec<u64>,
    /// l[i] = postorder index of the leftmost leaf of the subtree at i.
    l: Vec<usize>,
    keyroots: Vec<usize>,
    n: usize,
}

/// FNV-1a over the label bytes.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl ZsTree {
    /// Preprocesses `tree` for repeated distance computations.
    pub fn new(tree: &LabeledTree) -> Self {
        let order = tree.postorder();
        let n = order.len();
        let mut pos = vec![0usize; n];
        for (i, &node) in order.iter().enumerate() {
            pos[node] = i;
        }
        let mut l = vec![0usize; n];
        for (i, &node) in order.iter().enumerate() {
            // Leftmost leaf: follow first children down.
            let mut cur = node;
            while let Some(&first) = tree.children[cur].first() {
                cur = first;
            }
            l[i] = pos[cur];
        }
        // Keyroots: nodes with no left sibling path above them — highest
        // node for each distinct leftmost leaf.
        let mut keyroots = Vec::new();
        for i in 0..n {
            let is_keyroot = (i + 1..n).all(|j| l[j] != l[i]);
            if is_keyroot {
                keyroots.push(i);
            }
        }
        let labels: Vec<String> = order
            .iter()
            .map(|&node| tree.labels[node].clone())
            .collect();
        let label_hashes = labels.iter().map(|s| fnv1a(s)).collect();
        ZsTree {
            labels,
            label_hashes,
            l,
            keyroots,
            n,
        }
    }
}

/// One keyroot-pair forest DP over flat row-major buffers: `treedist` has
/// stride `b.n`, the forest table `fd` stride `n`. Every flat offset is
/// precomputed into a named variable, so the recurrence reads like the
/// two-dimensional original.
fn compute_treedist(
    a: &ZsTree,
    b: &ZsTree,
    i: usize,
    j: usize,
    treedist: &mut [usize],
    fd: &mut Vec<usize>,
) {
    let cols = b.n;
    let li = a.l[i];
    let lj = b.l[j];
    let m = i - li + 2;
    let n = j - lj + 2;
    // forestdist over postorder ranges, 1-indexed with 0 = empty forest.
    // Deleting/inserting an i-token prefix costs i, so the border cells are
    // just their own index.
    fd.clear();
    fd.resize(m * n, 0);
    for di in 0..m {
        let border = di * n;
        if let Some(cell) = fd.get_mut(border) {
            *cell = di;
        }
    }
    for (dj, cell) in fd.iter_mut().enumerate().take(n) {
        *cell = dj;
    }
    for di in 1..m {
        // Named predecessor offsets keep the recurrence readable and the
        // subscripts free of inline arithmetic.
        let pdi = di - 1;
        let ai = li + pdi;
        let row = di * n;
        let prow = pdi * n;
        let la = a.l[ai];
        let ha = a.label_hashes[ai];
        let td_row = ai * cols;
        for dj in 1..n {
            let pdj = dj - 1;
            let bj = lj + pdj;
            let cur = row + dj;
            let up = prow + dj;
            let left = row + pdj;
            let diag = prow + pdj;
            let lb = b.l[bj];
            let td_idx = td_row + bj;
            let value = if la == li && lb == lj {
                let relabel = if ha == b.label_hashes[bj] {
                    usize::from(a.labels[ai] != b.labels[bj])
                } else {
                    1
                };
                let cell = (fd[up] + 1).min(fd[left] + 1).min(fd[diag] + relabel);
                if let Some(slot) = treedist.get_mut(td_idx) {
                    *slot = cell;
                }
                cell
            } else {
                let da = la - li;
                let db = lb - lj;
                let sub = da * n + db;
                let subtree = treedist.get(td_idx).copied().unwrap_or(0);
                (fd[up] + 1).min(fd[left] + 1).min(fd[sub] + subtree)
            };
            if let Some(slot) = fd.get_mut(cur) {
                *slot = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> LabeledTree {
        LabeledTree::from_sexpr(s).expect("tree")
    }

    #[test]
    fn identical_trees_have_zero_distance() {
        let a = t("(f (a) (b (c)))");
        let b = t("(f (a) (b (c)))");
        assert_eq!(tree_edit_distance(&a, &b), 0);
        assert_eq!(tree_similarity(&a, &b), 1.0);
    }

    #[test]
    fn single_relabel_costs_one() {
        let a = t("(f (a) (b))");
        let b = t("(f (a) (c))");
        assert_eq!(tree_edit_distance(&a, &b), 1);
    }

    #[test]
    fn zhang_shasha_canonical_example() {
        // The classic example from the Zhang-Shasha paper:
        // T1 = f(d(a c(b)) e), T2 = f(c(d(a b)) e), distance 2.
        let a = t("(f (d (a) (c (b))) (e))");
        let b = t("(f (c (d (a) (b))) (e))");
        assert_eq!(tree_edit_distance(&a, &b), 2);
    }

    #[test]
    fn insertion_and_deletion() {
        let a = t("(f (a))");
        let b = t("(f (a) (b))");
        assert_eq!(tree_edit_distance(&a, &b), 1);
        assert_eq!(tree_edit_distance(&b, &a), 1);
    }

    #[test]
    fn distance_to_empty_is_size() {
        let a = t("(f (a) (b))");
        let empty = LabeledTree::new();
        assert_eq!(tree_edit_distance(&a, &empty), 3);
        assert_eq!(tree_edit_distance(&empty, &a), 3);
        assert_eq!(tree_similarity(&empty, &empty), 1.0);
    }

    #[test]
    fn similarity_orders_structural_closeness() {
        let base = t("(Person (Student) (Professor (FullProfessor)))");
        let near = t("(Person (Student) (Professor))");
        let far = t("(Vehicle (Car (Sedan)) (Bike))");
        assert!(tree_similarity(&base, &near) > tree_similarity(&base, &far));
    }

    #[test]
    fn symmetric_distance() {
        let a = t("(f (d (a) (c (b))) (e))");
        let b = t("(g (h) (c (d (a) (b))) (e))");
        assert_eq!(tree_edit_distance(&a, &b), tree_edit_distance(&b, &a));
    }

    #[test]
    fn zs_forms_are_bit_identical_to_direct_calls() {
        let trees = [
            t("(f (d (a) (c (b))) (e))"),
            t("(g (h) (c (d (a) (b))) (e))"),
            t("(f (a) (b))"),
            LabeledTree::new(),
        ];
        let forms: Vec<ZsTree> = trees.iter().map(ZsTree::new).collect();
        for (a, fa) in trees.iter().zip(&forms) {
            for (b, fb) in trees.iter().zip(&forms) {
                assert_eq!(tree_edit_distance_zs(fa, fb), tree_edit_distance(a, b));
                assert_eq!(
                    tree_similarity_zs(fa, fb).to_bits(),
                    tree_similarity(a, b).to_bits()
                );
            }
        }
    }

    #[test]
    fn sexpr_reader_rejects_garbage() {
        assert!(LabeledTree::from_sexpr("(a (b)").is_err());
        assert!(LabeledTree::from_sexpr("").is_err());
        assert!(LabeledTree::from_sexpr("(a) extra").is_err());
    }
}

//! Measure metadata: the catalogue of SimPack measures with the properties
//! clients need to interpret scores (normalization, input kind).

use std::fmt;

/// What kind of input a measure consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// Feature sets / binary vectors (Eq. 1–3).
    Vector,
    /// Character strings.
    String,
    /// Token sequences (Eq. 4).
    Sequence,
    /// Positions in a specialization graph (Eq. 5–6).
    Graph,
    /// Information content over a taxonomy (Eq. 7–8).
    InformationTheoretic,
    /// Full-text TF-IDF vectors.
    FullText,
    /// Ordered labeled trees.
    Tree,
}

impl fmt::Display for MeasureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MeasureKind::Vector => "vector",
            MeasureKind::String => "string",
            MeasureKind::Sequence => "sequence",
            MeasureKind::Graph => "graph",
            MeasureKind::InformationTheoretic => "information-theoretic",
            MeasureKind::FullText => "full-text",
            MeasureKind::Tree => "tree",
        };
        f.write_str(s)
    }
}

/// Static description of one measure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureDescriptor {
    /// Canonical name, e.g. `"lin"`.
    pub name: &'static str,
    /// Human-readable display name, e.g. `"Lin"`.
    pub display: &'static str,
    pub kind: MeasureKind,
    /// True when scores are guaranteed to lie in [0, 1]. Resnik is the
    /// famous exception (it returns information content in bits).
    pub normalized: bool,
    /// Literature reference.
    pub reference: &'static str,
}

/// The catalogue of measures this SimPack implements.
pub const CATALOG: &[MeasureDescriptor] = &[
    MeasureDescriptor {
        name: "cosine",
        display: "Cosine",
        kind: MeasureKind::Vector,
        normalized: true,
        reference: "Baeza-Yates & Ribeiro-Neto 1999, Eq. 1",
    },
    MeasureDescriptor {
        name: "jaccard",
        display: "Extended Jaccard",
        kind: MeasureKind::Vector,
        normalized: true,
        reference: "Strehl, Ghosh & Mooney 2000, Eq. 2",
    },
    MeasureDescriptor {
        name: "overlap",
        display: "Overlap",
        kind: MeasureKind::Vector,
        normalized: true,
        reference: "Baeza-Yates & Ribeiro-Neto 1999, Eq. 3",
    },
    MeasureDescriptor {
        name: "dice",
        display: "Dice",
        kind: MeasureKind::Vector,
        normalized: true,
        reference: "Dice 1945 (extension)",
    },
    MeasureDescriptor {
        name: "levenshtein",
        display: "Levenshtein",
        kind: MeasureKind::Sequence,
        normalized: true,
        reference: "Levenshtein 1966, Eq. 4",
    },
    MeasureDescriptor {
        name: "jaro",
        display: "Jaro",
        kind: MeasureKind::String,
        normalized: true,
        reference: "Jaro 1989 (SecondString extension)",
    },
    MeasureDescriptor {
        name: "jaro_winkler",
        display: "Jaro-Winkler",
        kind: MeasureKind::String,
        normalized: true,
        reference: "Winkler 1990 (SecondString extension)",
    },
    MeasureDescriptor {
        name: "qgram",
        display: "Q-Gram",
        kind: MeasureKind::String,
        normalized: true,
        reference: "Ukkonen 1992 (SimMetrics extension)",
    },
    MeasureDescriptor {
        name: "monge_elkan",
        display: "Monge-Elkan",
        kind: MeasureKind::String,
        normalized: true,
        reference: "Monge & Elkan 1996 (SecondString extension)",
    },
    MeasureDescriptor {
        name: "shortest_path",
        display: "Shortest Path",
        kind: MeasureKind::Graph,
        normalized: true,
        reference: "Rada et al. 1989",
    },
    MeasureDescriptor {
        name: "edge",
        display: "Edge Counting",
        kind: MeasureKind::Graph,
        normalized: true,
        reference: "Resnik 1995 variant, Eq. 5",
    },
    MeasureDescriptor {
        name: "wu_palmer",
        display: "Conceptual Similarity",
        kind: MeasureKind::Graph,
        normalized: true,
        reference: "Wu & Palmer 1994, Eq. 6",
    },
    MeasureDescriptor {
        name: "resnik",
        display: "Resnik",
        kind: MeasureKind::InformationTheoretic,
        normalized: false,
        reference: "Resnik 1995, Eq. 7",
    },
    MeasureDescriptor {
        name: "lin",
        display: "Lin",
        kind: MeasureKind::InformationTheoretic,
        normalized: true,
        reference: "Lin 1998, Eq. 8",
    },
    MeasureDescriptor {
        name: "jiang_conrath",
        display: "Jiang-Conrath",
        kind: MeasureKind::InformationTheoretic,
        normalized: true,
        reference: "Jiang & Conrath 1997 (extension)",
    },
    MeasureDescriptor {
        name: "tfidf",
        display: "TFIDF",
        kind: MeasureKind::FullText,
        normalized: true,
        reference: "Baeza-Yates & Ribeiro-Neto 1999",
    },
    MeasureDescriptor {
        name: "tree_edit",
        display: "Tree Edit Distance",
        kind: MeasureKind::Tree,
        normalized: true,
        reference: "Zhang & Shasha 1989 (future-work measure)",
    },
];

/// Looks up a measure descriptor by canonical name.
pub fn descriptor(name: &str) -> Option<&'static MeasureDescriptor> {
    CATALOG.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique() {
        let mut names: Vec<&str> = CATALOG.iter().map(|d| d.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
    }

    #[test]
    fn resnik_is_the_only_unnormalized_measure() {
        let unnormalized: Vec<&str> = CATALOG
            .iter()
            .filter(|d| !d.normalized)
            .map(|d| d.name)
            .collect();
        assert_eq!(unnormalized, vec!["resnik"]);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(descriptor("lin").unwrap().display, "Lin");
        assert!(descriptor("nope").is_none());
    }

    #[test]
    fn covers_all_paper_table1_measures() {
        // Table 1 columns: Conceptual Similarity, Levenshtein, Lin, Resnik,
        // Shortest Path, TFIDF.
        for name in [
            "wu_palmer",
            "levenshtein",
            "lin",
            "resnik",
            "shortest_path",
            "tfidf",
        ] {
            assert!(descriptor(name).is_some(), "missing {name}");
        }
    }
}

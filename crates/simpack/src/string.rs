//! String similarity measures: character-level Levenshtein (paper §2.2) plus
//! the approximate string-matching measures the paper announces as future
//! extensions from SecondString/SimMetrics (Jaro, Jaro-Winkler, q-grams,
//! Monge-Elkan).

use std::collections::BTreeSet;

/// Character-level Levenshtein edit distance (Levenshtein 1966): minimal
/// number of insertions, deletions, and substitutions.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_distance_chars(&a, &b)
}

/// [`levenshtein_distance`] over pre-collected character slices (its core;
/// batch scans cache the `Vec<char>` per string and call this directly).
pub fn levenshtein_distance_chars(a: &[char], b: &[char]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Two-row dynamic program; `w = [prev[j], prev[j+1]]` via `windows(2)`
    // and `curr.last()` is the cell to the left, so no subscript arithmetic.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = Vec::with_capacity(b.len() + 1);
    for (i, &ca) in a.iter().enumerate() {
        curr.clear();
        curr.push(i + 1);
        for (&cb, w) in b.iter().zip(prev.windows(2)) {
            let cost = usize::from(ca != cb);
            let left = curr.last().copied().unwrap_or(0);
            curr.push((w[1] + 1).min(left + 1).min(w[0] + cost));
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev.last().copied().unwrap_or(0)
}

/// Levenshtein similarity in [0, 1]: `1 − d / max(|a|, |b|)`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_similarity_chars(&a, &b)
}

/// [`levenshtein_similarity`] over pre-collected character slices.
pub fn levenshtein_similarity_chars(a: &[char], b: &[char]) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_distance_chars(a, b) as f64 / max_len as f64
}

/// Jaro similarity (matching characters within half the longer length,
/// discounted by transpositions).
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    jaro_chars(&a, &b)
}

/// [`jaro`] over pre-collected character slices (its core).
pub fn jaro_chars(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push((i, j));
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: matched characters out of order.
    let mut b_matches: Vec<usize> = matches_a.iter().map(|&(_, j)| j).collect();
    let mut transpositions = 0;
    let sorted = {
        let mut s = b_matches.clone();
        s.sort_unstable();
        s
    };
    for (actual, expected) in b_matches.iter().zip(&sorted) {
        if actual != expected {
            transpositions += 1;
        }
    }
    b_matches.clear();
    let t = transpositions as f64 / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Winkler's boost threshold: the prefix bonus only applies to pairs whose
/// Jaro similarity already exceeds this value (Winkler 1990).
const JARO_WINKLER_BOOST_THRESHOLD: f64 = 0.7;

/// Jaro-Winkler: Jaro boosted by the length of the common prefix (≤ 4),
/// with the standard scaling factor p = 0.1. Following Winkler's original
/// definition, the boost is applied only when the base Jaro similarity
/// exceeds the 0.7 boost threshold — dissimilar strings that merely share
/// a prefix keep their plain Jaro score.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    jaro_winkler_chars(&a, &b)
}

/// [`jaro_winkler`] over pre-collected character slices (its core).
pub fn jaro_winkler_chars(a: &[char], b: &[char]) -> f64 {
    let j = jaro_chars(a, b);
    if j <= JARO_WINKLER_BOOST_THRESHOLD {
        return j;
    }
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Q-gram (here trigram, padded) similarity: Dice coefficient over the sets
/// of character q-grams. A degenerate `q == 0` is treated as `q == 1`
/// (unigram Dice) instead of panicking — gram extraction needs at least one
/// character per gram, and unigrams are the smallest well-defined case.
pub fn qgram(a: &str, b: &str, q: usize) -> f64 {
    qgram_from(&QGramProfile::new(a, q), &QGramProfile::new(b, q))
}

/// Precomputed padded q-gram set of one string. Building the profile
/// dominates the cost of [`qgram`], so batch scans construct one per
/// string and compare with [`qgram_from`] — which is [`qgram`]'s own core,
/// making the two bit-identical by construction.
#[derive(Debug, Clone)]
pub struct QGramProfile {
    grams: BTreeSet<Vec<char>>,
    /// Whether the source string was empty (the grams of an empty padded
    /// string are non-empty for q ≥ 2, so this is tracked separately).
    empty: bool,
}

impl QGramProfile {
    pub fn new(s: &str, q: usize) -> Self {
        let q = q.max(1);
        let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
            .chain(s.chars())
            .chain(std::iter::repeat_n('#', q - 1))
            .collect();
        QGramProfile {
            grams: padded.windows(q).map(|w| w.to_vec()).collect(),
            empty: s.is_empty(),
        }
    }
}

/// Q-gram similarity of two precomputed profiles (the core of [`qgram`]).
pub fn qgram_from(a: &QGramProfile, b: &QGramProfile) -> f64 {
    if a.empty && b.empty {
        return 1.0;
    }
    if a.empty || b.empty {
        return 0.0;
    }
    2.0 * a.grams.intersection(&b.grams).count() as f64 / (a.grams.len() + b.grams.len()) as f64
}

/// Monge-Elkan: average over the tokens of `a` of the best inner similarity
/// against any token of `b`. `inner` is typically [`levenshtein_similarity`]
/// or [`jaro_winkler`]. Asymmetric by construction.
pub fn monge_elkan<F>(a: &[&str], b: &[&str], inner: F) -> f64
where
    F: Fn(&str, &str) -> f64,
{
    if a.is_empty() {
        return if b.is_empty() { 1.0 } else { 0.0 };
    }
    if b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for ta in a {
        let best = b.iter().map(|tb| inner(ta, tb)).fold(0.0_f64, f64::max);
        total += best;
    }
    total / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", ""), 3);
        assert_eq!(levenshtein_distance("same", "same"), 0);
    }

    #[test]
    fn levenshtein_similarity_range() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("Professor", "Professors");
        assert!(s > 0.88 && s < 1.0);
    }

    #[test]
    fn levenshtein_is_symmetric_and_unicode_safe() {
        assert_eq!(
            levenshtein_distance("zürich", "zurich"),
            levenshtein_distance("zurich", "zürich")
        );
        assert_eq!(levenshtein_distance("zürich", "zurich"), 1);
    }

    #[test]
    fn jaro_reference_values() {
        // Canonical examples from the record-linkage literature.
        assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-4);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-4);
        assert!((jaro("DWAYNE", "DUANE") - 0.822222).abs() < 1e-4);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefixes() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961111).abs() < 1e-4);
        assert!(jaro_winkler("Professor", "Professional") > jaro("Professor", "Professional"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn jaro_winkler_boost_needs_threshold() {
        // "AB" vs "AXYZ" shares the prefix "A" but jaro ≈ 0.583 ≤ 0.7:
        // below Winkler's boost threshold the plain Jaro score is returned.
        let j = jaro("AB", "AXYZ");
        assert!(j < 0.7, "got {j}");
        assert_eq!(jaro_winkler("AB", "AXYZ"), j);
    }

    #[test]
    fn qgram_behaviour() {
        assert_eq!(qgram("", "", 3), 1.0);
        assert_eq!(qgram("abc", "", 3), 0.0);
        assert_eq!(qgram("night", "night", 3), 1.0);
        let s = qgram("night", "nacht", 3);
        assert!(s > 0.0 && s < 0.5, "got {s}");
    }

    #[test]
    fn qgram_zero_is_treated_as_unigram() {
        assert_eq!(qgram("abc", "abc", 0), qgram("abc", "abc", 1));
        assert_eq!(qgram("abc", "cba", 0), 1.0); // same unigram set
        assert_eq!(qgram("abc", "xyz", 0), 0.0);
    }

    #[test]
    fn chars_cores_match_str_entry_points_bitwise() {
        let pairs = [
            ("kitten", "sitting"),
            ("MARTHA", "MARHTA"),
            ("zürich", "zurich"),
            ("Professor", "Professional"),
            ("", "abc"),
            ("", ""),
        ];
        for (a, b) in pairs {
            let ca: Vec<char> = a.chars().collect();
            let cb: Vec<char> = b.chars().collect();
            assert_eq!(
                levenshtein_similarity(a, b).to_bits(),
                levenshtein_similarity_chars(&ca, &cb).to_bits()
            );
            // Exact symmetry underpins mirrored similarity tables.
            assert_eq!(
                levenshtein_similarity(a, b).to_bits(),
                levenshtein_similarity(b, a).to_bits()
            );
            assert_eq!(jaro(a, b).to_bits(), jaro_chars(&ca, &cb).to_bits());
            assert_eq!(
                jaro_winkler(a, b).to_bits(),
                jaro_winkler_chars(&ca, &cb).to_bits()
            );
            assert_eq!(
                qgram(a, b, 3).to_bits(),
                qgram_from(&QGramProfile::new(a, 3), &QGramProfile::new(b, 3)).to_bits()
            );
        }
    }

    #[test]
    fn monge_elkan_token_sets() {
        let a = ["assistant", "professor"];
        let b = ["professor"];
        let s = monge_elkan(&a, &b, levenshtein_similarity);
        assert!((0.5..1.0).contains(&s), "got {s}");
        // Perfect when every token has an exact counterpart.
        assert_eq!(monge_elkan(&a, &a, levenshtein_similarity), 1.0);
        assert_eq!(monge_elkan(&[], &[], levenshtein_similarity), 1.0);
        assert_eq!(monge_elkan(&a, &[], levenshtein_similarity), 0.0);
    }
}

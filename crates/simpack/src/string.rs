//! String similarity measures: character-level Levenshtein (paper §2.2) plus
//! the approximate string-matching measures the paper announces as future
//! extensions from SecondString/SimMetrics (Jaro, Jaro-Winkler, q-grams,
//! Monge-Elkan).

use std::collections::BTreeSet;

/// Character-level Levenshtein edit distance (Levenshtein 1966): minimal
/// number of insertions, deletions, and substitutions.
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_distance_chars(&a, &b)
}

/// [`levenshtein_distance`] over pre-collected character slices (its core;
/// batch scans cache the `Vec<char>` per string and call this directly).
pub fn levenshtein_distance_chars(a: &[char], b: &[char]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Two-row dynamic program; `w = [prev[j], prev[j+1]]` via `windows(2)`
    // and `curr.last()` is the cell to the left, so no subscript arithmetic.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = Vec::with_capacity(b.len() + 1);
    for (i, &ca) in a.iter().enumerate() {
        curr.clear();
        curr.push(i + 1);
        for (&cb, w) in b.iter().zip(prev.windows(2)) {
            let cost = usize::from(ca != cb);
            let left = curr.last().copied().unwrap_or(0);
            curr.push((w[1] + 1).min(left + 1).min(w[0] + cost));
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev.last().copied().unwrap_or(0)
}

/// Reusable DP rows for [`levenshtein_distance_chars_scratch`], hoisted out
/// of the per-pair path (the classic-DP fallback used where the
/// bit-parallel core does not apply).
#[derive(Debug, Clone, Default)]
pub struct LevenshteinScratch {
    prev: Vec<usize>,
    curr: Vec<usize>,
}

impl LevenshteinScratch {
    pub fn new() -> LevenshteinScratch {
        LevenshteinScratch::default()
    }
}

/// [`levenshtein_distance_chars`] with caller-provided row buffers.
pub fn levenshtein_distance_chars_scratch(
    a: &[char],
    b: &[char],
    scratch: &mut LevenshteinScratch,
) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let LevenshteinScratch { prev, curr } = scratch;
    prev.clear();
    prev.extend(0..=b.len());
    curr.clear();
    for (i, &ca) in a.iter().enumerate() {
        curr.clear();
        curr.push(i + 1);
        for (&cb, w) in b.iter().zip(prev.windows(2)) {
            let cost = usize::from(ca != cb);
            let left = curr.last().copied().unwrap_or(0);
            curr.push((w[1] + 1).min(left + 1).min(w[0] + cost));
        }
        std::mem::swap(prev, curr);
    }
    prev.last().copied().unwrap_or(0)
}

/// Levenshtein similarity in [0, 1]: `1 − d / max(|a|, |b|)`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_similarity_chars(&a, &b)
}

/// [`levenshtein_similarity`] over pre-collected character slices.
pub fn levenshtein_similarity_chars(a: &[char], b: &[char]) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_distance_chars(a, b) as f64 / max_len as f64
}

/// Jaro similarity (matching characters within half the longer length,
/// discounted by transpositions).
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    jaro_chars(&a, &b)
}

/// [`jaro`] over pre-collected character slices (its core).
pub fn jaro_chars(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push((i, j));
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: matched characters out of order.
    let mut b_matches: Vec<usize> = matches_a.iter().map(|&(_, j)| j).collect();
    let mut transpositions = 0;
    let sorted = {
        let mut s = b_matches.clone();
        s.sort_unstable();
        s
    };
    for (actual, expected) in b_matches.iter().zip(&sorted) {
        if actual != expected {
            transpositions += 1;
        }
    }
    b_matches.clear();
    let t = transpositions as f64 / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Reusable buffers for the Jaro match/transposition phases, hoisted out
/// of the per-pair path: batch scans keep one per thread instead of three
/// fresh `Vec`s per pair.
#[derive(Debug, Clone, Default)]
pub struct JaroScratch {
    b_used: Vec<bool>,
    b_matches: Vec<usize>,
    sorted: Vec<usize>,
}

impl JaroScratch {
    pub fn new() -> JaroScratch {
        JaroScratch::default()
    }
}

/// One thread-local [`JaroScratch`] per thread, so `&self` batch scorers
/// reuse buffers without interior mutability in their own state.
pub fn with_jaro_scratch<R>(f: impl FnOnce(&mut JaroScratch) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<JaroScratch> = RefCell::new(JaroScratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // Unreachable in practice (`f` never re-enters); a fresh scratch
        // keeps the result identical either way.
        Err(_) => f(&mut JaroScratch::new()),
    })
}

/// Shared final phase of every Jaro variant: transposition count over the
/// matched `b` positions in `a`-order vs. ascending order, then the
/// classic three-term average. Keeping one expression guarantees the fast
/// paths are bit-identical to [`jaro_chars`].
fn jaro_finish(a_len: usize, b_len: usize, b_matches: &[usize], sorted: &[usize]) -> f64 {
    let m = b_matches.len();
    if m == 0 {
        return 0.0;
    }
    let mut transpositions = 0;
    for (actual, expected) in b_matches.iter().zip(sorted) {
        if actual != expected {
            transpositions += 1;
        }
    }
    let t = transpositions as f64 / 2.0;
    let m = m as f64;
    (m / a_len as f64 + m / b_len as f64 + (m - t) / m) / 3.0
}

/// [`jaro_chars`] with caller-provided scratch buffers — the allocation-free
/// fallback for `b` longer than 64 characters.
pub fn jaro_chars_scratch(a: &[char], b: &[char], scratch: &mut JaroScratch) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    scratch.b_used.clear();
    scratch.b_used.resize(b.len(), false);
    scratch.b_matches.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            let used = scratch.b_used.get(j).copied().unwrap_or(true);
            if !used && b.get(j) == Some(&ca) {
                if let Some(slot) = scratch.b_used.get_mut(j) {
                    *slot = true;
                }
                scratch.b_matches.push(j);
                break;
            }
        }
    }
    let JaroScratch {
        b_matches, sorted, ..
    } = scratch;
    sorted.clear();
    sorted.extend_from_slice(b_matches);
    sorted.sort_unstable();
    jaro_finish(a.len(), b.len(), b_matches, sorted)
}

/// Per-string character bitmask table for the single-word Jaro path:
/// for each distinct character of a string of length ≤ 64, a `u64` with
/// bit `j` set iff the character occurs at position `j`. Built once per
/// concept name; `None` for longer strings (they take the scratch path).
#[derive(Debug, Clone)]
pub struct JaroMask {
    /// Direct-index position masks for ASCII characters (the common case
    /// for concept names) — one load instead of a binary search.
    ascii: Box<[u64; 128]>,
    /// Sorted distinct non-ASCII characters with their position masks.
    entries: Vec<(char, u64)>,
    len: usize,
}

impl JaroMask {
    pub fn new(s: &[char]) -> Option<JaroMask> {
        if s.len() > 64 {
            return None;
        }
        let mut ascii = Box::new([0u64; 128]);
        let mut entries: Vec<(char, u64)> = Vec::new();
        for (j, &c) in s.iter().enumerate() {
            let bit = 1u64 << j;
            let code = c as usize;
            if let Some(slot) = ascii.get_mut(code) {
                *slot |= bit;
                continue;
            }
            match entries.binary_search_by_key(&c, |&(ec, _)| ec) {
                Ok(pos) => {
                    if let Some(entry) = entries.get_mut(pos) {
                        entry.1 |= bit;
                    }
                }
                Err(pos) => entries.insert(pos, (c, bit)),
            }
        }
        Some(JaroMask {
            ascii,
            entries,
            len: s.len(),
        })
    }

    fn mask(&self, c: char) -> u64 {
        if let Some(&m) = self.ascii.get(c as usize) {
            return m;
        }
        match self.entries.binary_search_by_key(&c, |&(ec, _)| ec) {
            Ok(pos) => self.entries.get(pos).map(|&(_, m)| m).unwrap_or(0),
            Err(_) => 0,
        }
    }
}

/// Bits `[0, k)` set (k ≤ 64).
fn low_bits(k: usize) -> u64 {
    if k >= 64 {
        !0u64
    } else {
        (1u64 << k) - 1
    }
}

/// [`jaro_chars`] over a precomputed [`JaroMask`] of `b` (|b| ≤ 64): the
/// inner window scan becomes one AND + trailing-zeros per `a` character.
/// The lowest set bit of `char-mask ∧ window ∧ free` is exactly the first
/// unused in-window match the reference loop would take, so the greedy
/// assignment — and hence the score — is identical bit for bit.
pub fn jaro_chars_masked(a: &[char], bmask: &JaroMask, scratch: &mut JaroScratch) -> f64 {
    let b_len = bmask.len;
    if a.is_empty() && b_len == 0 {
        return 1.0;
    }
    if a.is_empty() || b_len == 0 {
        return 0.0;
    }
    let window = (a.len().max(b_len) / 2).saturating_sub(1);
    let mut free = low_bits(b_len);
    scratch.b_matches.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b_len);
        let window_mask = low_bits(hi) & !low_bits(lo);
        let candidates = bmask.mask(ca) & window_mask & free;
        if candidates != 0 {
            let j = candidates.trailing_zeros() as usize;
            free &= !(1u64 << j);
            scratch.b_matches.push(j);
        }
    }
    // Matched positions in ascending order fall straight out of the mask —
    // no sort needed on this path.
    scratch.sorted.clear();
    let mut matched = low_bits(b_len) & !free;
    while matched != 0 {
        let j = matched.trailing_zeros() as usize;
        scratch.sorted.push(j);
        matched &= matched - 1;
    }
    jaro_finish(a.len(), b_len, &scratch.b_matches, &scratch.sorted)
}

/// Winkler prefix boost shared by [`jaro_winkler_chars`] and the fast
/// batch path.
fn winkler_boost(a: &[char], b: &[char], j: f64) -> f64 {
    if j <= JARO_WINKLER_BOOST_THRESHOLD {
        return j;
    }
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Batch-path Jaro: masked single-word kernel when a [`JaroMask`] of `b`
/// exists, scratch-buffer fallback otherwise. Bit-identical to
/// [`jaro_chars`] either way.
pub fn jaro_fast(a: &[char], b: &[char], bmask: Option<&JaroMask>, s: &mut JaroScratch) -> f64 {
    match bmask {
        Some(mask) => jaro_chars_masked(a, mask, s),
        None => jaro_chars_scratch(a, b, s),
    }
}

/// Batch-path Jaro-Winkler on the same kernels as [`jaro_fast`].
pub fn jaro_winkler_fast(
    a: &[char],
    b: &[char],
    bmask: Option<&JaroMask>,
    s: &mut JaroScratch,
) -> f64 {
    winkler_boost(a, b, jaro_fast(a, b, bmask, s))
}

/// Winkler's boost threshold: the prefix bonus only applies to pairs whose
/// Jaro similarity already exceeds this value (Winkler 1990).
const JARO_WINKLER_BOOST_THRESHOLD: f64 = 0.7;

/// Jaro-Winkler: Jaro boosted by the length of the common prefix (≤ 4),
/// with the standard scaling factor p = 0.1. Following Winkler's original
/// definition, the boost is applied only when the base Jaro similarity
/// exceeds the 0.7 boost threshold — dissimilar strings that merely share
/// a prefix keep their plain Jaro score.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    jaro_winkler_chars(&a, &b)
}

/// [`jaro_winkler`] over pre-collected character slices (its core).
pub fn jaro_winkler_chars(a: &[char], b: &[char]) -> f64 {
    winkler_boost(a, b, jaro_chars(a, b))
}

/// Q-gram (here trigram, padded) similarity: Dice coefficient over the sets
/// of character q-grams. A degenerate `q == 0` is treated as `q == 1`
/// (unigram Dice) instead of panicking — gram extraction needs at least one
/// character per gram, and unigrams are the smallest well-defined case.
pub fn qgram(a: &str, b: &str, q: usize) -> f64 {
    qgram_from(&QGramProfile::new(a, q), &QGramProfile::new(b, q))
}

/// Precomputed padded q-gram set of one string. Building the profile
/// dominates the cost of [`qgram`], so batch scans construct one per
/// string and compare with [`qgram_from`] — which is [`qgram`]'s own core,
/// making the two bit-identical by construction.
#[derive(Debug, Clone)]
pub struct QGramProfile {
    grams: BTreeSet<Vec<char>>,
    /// Whether the source string was empty (the grams of an empty padded
    /// string are non-empty for q ≥ 2, so this is tracked separately).
    empty: bool,
}

impl QGramProfile {
    pub fn new(s: &str, q: usize) -> Self {
        let q = q.max(1);
        let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
            .chain(s.chars())
            .chain(std::iter::repeat_n('#', q - 1))
            .collect();
        QGramProfile {
            grams: padded.windows(q).map(|w| w.to_vec()).collect(),
            empty: s.is_empty(),
        }
    }
}

/// Shared final expression of every q-gram path: Dice coefficient over the
/// gram-set cardinalities, with the empty-string conventions of [`qgram`].
/// One expression for the tree-set and packed profiles keeps them
/// bit-identical.
fn qgram_dice(inter: usize, len_a: usize, len_b: usize, empty_a: bool, empty_b: bool) -> f64 {
    if empty_a && empty_b {
        return 1.0;
    }
    if empty_a || empty_b {
        return 0.0;
    }
    2.0 * inter as f64 / (len_a + len_b) as f64
}

/// Q-gram similarity of two precomputed profiles (the core of [`qgram`]).
pub fn qgram_from(a: &QGramProfile, b: &QGramProfile) -> f64 {
    qgram_dice(
        a.grams.intersection(&b.grams).count(),
        a.grams.len(),
        b.grams.len(),
        a.empty,
        b.empty,
    )
}

/// Bitset-backed q-gram profile for `q ≤ 3`: every padded gram packs
/// injectively into one `u64` (21 bits per `char` — the scalar-value space
/// tops out at `0x10FFFF < 2²¹`), so the gram *set* becomes a sorted,
/// deduplicated `Vec<u64>` and intersection a linear merge walk instead of
/// tree-set iteration. Cardinalities are identical to [`QGramProfile`]'s by
/// injectivity, hence so is the Dice value, bit for bit.
#[derive(Debug, Clone)]
pub struct QGramPacked {
    grams: Vec<u64>,
    empty: bool,
}

/// Bits per packed character; three fit in a `u64` with one to spare.
const QGRAM_CHAR_BITS: u32 = 21;

impl QGramPacked {
    /// Builds the packed profile, or `None` when `q > 3` grams do not fit
    /// one word (callers fall back to [`QGramProfile`]).
    pub fn new(s: &str, q: usize) -> Option<QGramPacked> {
        let q = q.max(1);
        if q > 3 {
            return None;
        }
        let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
            .chain(s.chars())
            .chain(std::iter::repeat_n('#', q - 1))
            .collect();
        let mut grams: Vec<u64> = padded
            .windows(q)
            .map(|w| {
                w.iter()
                    .fold(0u64, |acc, &c| (acc << QGRAM_CHAR_BITS) | c as u64)
            })
            .collect();
        grams.sort_unstable();
        grams.dedup();
        Some(QGramPacked {
            grams,
            empty: s.is_empty(),
        })
    }
}

/// Q-gram similarity of two packed profiles: sorted-u64 merge intersection
/// feeding the same Dice expression as [`qgram_from`].
pub fn qgram_packed_from(a: &QGramPacked, b: &QGramPacked) -> f64 {
    let mut inter = 0usize;
    let mut xs = a.grams.iter().peekable();
    let mut ys = b.grams.iter().peekable();
    while let (Some(&&x), Some(&&y)) = (xs.peek(), ys.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                xs.next();
            }
            std::cmp::Ordering::Greater => {
                ys.next();
            }
            std::cmp::Ordering::Equal => {
                inter += 1;
                xs.next();
                ys.next();
            }
        }
    }
    qgram_dice(inter, a.grams.len(), b.grams.len(), a.empty, b.empty)
}

/// Monge-Elkan: average over the tokens of `a` of the best inner similarity
/// against any token of `b`. `inner` is typically [`levenshtein_similarity`]
/// or [`jaro_winkler`]. Asymmetric by construction.
pub fn monge_elkan<F>(a: &[&str], b: &[&str], inner: F) -> f64
where
    F: Fn(&str, &str) -> f64,
{
    if a.is_empty() {
        return if b.is_empty() { 1.0 } else { 0.0 };
    }
    if b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for ta in a {
        let best = b.iter().map(|tb| inner(ta, tb)).fold(0.0_f64, f64::max);
        total += best;
    }
    total / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", ""), 3);
        assert_eq!(levenshtein_distance("same", "same"), 0);
    }

    #[test]
    fn levenshtein_similarity_range() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("Professor", "Professors");
        assert!(s > 0.88 && s < 1.0);
    }

    #[test]
    fn levenshtein_is_symmetric_and_unicode_safe() {
        assert_eq!(
            levenshtein_distance("zürich", "zurich"),
            levenshtein_distance("zurich", "zürich")
        );
        assert_eq!(levenshtein_distance("zürich", "zurich"), 1);
    }

    #[test]
    fn jaro_reference_values() {
        // Canonical examples from the record-linkage literature.
        assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-4);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-4);
        assert!((jaro("DWAYNE", "DUANE") - 0.822222).abs() < 1e-4);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefixes() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961111).abs() < 1e-4);
        assert!(jaro_winkler("Professor", "Professional") > jaro("Professor", "Professional"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn jaro_winkler_boost_needs_threshold() {
        // "AB" vs "AXYZ" shares the prefix "A" but jaro ≈ 0.583 ≤ 0.7:
        // below Winkler's boost threshold the plain Jaro score is returned.
        let j = jaro("AB", "AXYZ");
        assert!(j < 0.7, "got {j}");
        assert_eq!(jaro_winkler("AB", "AXYZ"), j);
    }

    #[test]
    fn qgram_behaviour() {
        assert_eq!(qgram("", "", 3), 1.0);
        assert_eq!(qgram("abc", "", 3), 0.0);
        assert_eq!(qgram("night", "night", 3), 1.0);
        let s = qgram("night", "nacht", 3);
        assert!(s > 0.0 && s < 0.5, "got {s}");
    }

    #[test]
    fn qgram_zero_is_treated_as_unigram() {
        assert_eq!(qgram("abc", "abc", 0), qgram("abc", "abc", 1));
        assert_eq!(qgram("abc", "cba", 0), 1.0); // same unigram set
        assert_eq!(qgram("abc", "xyz", 0), 0.0);
    }

    #[test]
    fn chars_cores_match_str_entry_points_bitwise() {
        let pairs = [
            ("kitten", "sitting"),
            ("MARTHA", "MARHTA"),
            ("zürich", "zurich"),
            ("Professor", "Professional"),
            ("", "abc"),
            ("", ""),
        ];
        for (a, b) in pairs {
            let ca: Vec<char> = a.chars().collect();
            let cb: Vec<char> = b.chars().collect();
            assert_eq!(
                levenshtein_similarity(a, b).to_bits(),
                levenshtein_similarity_chars(&ca, &cb).to_bits()
            );
            // Exact symmetry underpins mirrored similarity tables.
            assert_eq!(
                levenshtein_similarity(a, b).to_bits(),
                levenshtein_similarity(b, a).to_bits()
            );
            assert_eq!(jaro(a, b).to_bits(), jaro_chars(&ca, &cb).to_bits());
            assert_eq!(
                jaro_winkler(a, b).to_bits(),
                jaro_winkler_chars(&ca, &cb).to_bits()
            );
            assert_eq!(
                qgram(a, b, 3).to_bits(),
                qgram_from(&QGramProfile::new(a, 3), &QGramProfile::new(b, 3)).to_bits()
            );
        }
    }

    #[test]
    fn fast_jaro_paths_are_bit_identical() {
        let pairs = [
            ("MARTHA", "MARHTA"),
            ("DIXON", "DICKSONX"),
            ("DWAYNE", "DUANE"),
            ("abc", "abc"),
            ("abc", "xyz"),
            ("", ""),
            ("", "abc"),
            ("aabbccdd", "ddccbbaa"),
            ("Professor", "Professional"),
        ];
        let mut scratch = JaroScratch::new();
        for (a, b) in pairs {
            let ca: Vec<char> = a.chars().collect();
            let cb: Vec<char> = b.chars().collect();
            let reference = jaro_chars(&ca, &cb);
            assert_eq!(
                jaro_chars_scratch(&ca, &cb, &mut scratch).to_bits(),
                reference.to_bits(),
                "scratch {a:?} vs {b:?}"
            );
            let mask = JaroMask::new(&cb).expect("short string");
            assert_eq!(
                jaro_chars_masked(&ca, &mask, &mut scratch).to_bits(),
                reference.to_bits(),
                "masked {a:?} vs {b:?}"
            );
            assert_eq!(
                jaro_winkler_fast(&ca, &cb, Some(&mask), &mut scratch).to_bits(),
                jaro_winkler_chars(&ca, &cb).to_bits(),
                "winkler {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn packed_qgrams_are_bit_identical() {
        let pairs = [
            ("night", "nacht"),
            ("", ""),
            ("abc", ""),
            ("night", "night"),
            ("zürich", "zurich"),
            ("ababab", "bababa"),
        ];
        for q in [1usize, 2, 3] {
            for (a, b) in pairs {
                let packed = qgram_packed_from(
                    &QGramPacked::new(a, q).expect("q <= 3"),
                    &QGramPacked::new(b, q).expect("q <= 3"),
                );
                assert_eq!(
                    packed.to_bits(),
                    qgram(a, b, q).to_bits(),
                    "{a:?} vs {b:?} q={q}"
                );
            }
        }
        assert!(QGramPacked::new("abc", 4).is_none());
    }

    #[test]
    fn levenshtein_scratch_matches() {
        let mut scratch = LevenshteinScratch::new();
        for (a, b) in [("kitten", "sitting"), ("", "abc"), ("same", "same")] {
            let ca: Vec<char> = a.chars().collect();
            let cb: Vec<char> = b.chars().collect();
            assert_eq!(
                levenshtein_distance_chars_scratch(&ca, &cb, &mut scratch),
                levenshtein_distance_chars(&ca, &cb)
            );
        }
    }

    #[test]
    fn monge_elkan_token_sets() {
        let a = ["assistant", "professor"];
        let b = ["professor"];
        let s = monge_elkan(&a, &b, levenshtein_similarity);
        assert!((0.5..1.0).contains(&s), "got {s}");
        // Perfect when every token has an exact counterpart.
        assert_eq!(monge_elkan(&a, &a, levenshtein_similarity), 1.0);
        assert_eq!(monge_elkan(&[], &[], levenshtein_similarity), 1.0);
        assert_eq!(monge_elkan(&a, &[], levenshtein_similarity), 0.0);
    }
}

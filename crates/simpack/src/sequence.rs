//! Token-sequence edit distance with a configurable cost model and
//! worst-case normalization — the paper's `sim_levenshtein` over vectors of
//! strings produced by mapping M₂ (Eq. 4).
//!
//! The paper argues the cost function should satisfy
//! `c(delete) + c(insert) ≥ c(replace)`; [`CostModel::new`] enforces this,
//! and the ablation bench (`A1` in DESIGN.md) measures what violating it
//! does to the rankings.

/// Edit operation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    pub insert: f64,
    pub delete: f64,
    pub replace: f64,
}

impl CostModel {
    /// Unit costs: the classic Levenshtein setting.
    pub const UNIT: CostModel = CostModel {
        insert: 1.0,
        delete: 1.0,
        replace: 1.0,
    };

    /// Builds a cost model, checking the paper's constraint
    /// `c(delete) + c(insert) ≥ c(replace)` and positivity.
    pub fn new(insert: f64, delete: f64, replace: f64) -> Result<CostModel, String> {
        if insert <= 0.0 || delete <= 0.0 || replace <= 0.0 {
            return Err("edit costs must be positive".to_owned());
        }
        if delete + insert < replace {
            return Err(format!(
                "cost model violates c(delete)+c(insert) ≥ c(replace): {} + {} < {}",
                delete, insert, replace
            ));
        }
        Ok(CostModel {
            insert,
            delete,
            replace,
        })
    }

    /// An *unchecked* constructor for ablation experiments that deliberately
    /// violate the constraint.
    pub fn unchecked(insert: f64, delete: f64, replace: f64) -> CostModel {
        CostModel {
            insert,
            delete,
            replace,
        }
    }
}

/// Weighted edit distance `xform(x, y)` between two token sequences.
pub fn xform<T: PartialEq>(x: &[T], y: &[T], costs: CostModel) -> f64 {
    if x.is_empty() {
        return y.len() as f64 * costs.insert;
    }
    if y.is_empty() {
        return x.len() as f64 * costs.delete;
    }
    // Two-row DP; `w = [prev[j], prev[j+1]]` via `windows(2)` and
    // `curr.last()` is the cell to the left, so no subscript arithmetic.
    let mut prev: Vec<f64> = (0..=y.len()).map(|j| j as f64 * costs.insert).collect();
    let mut curr: Vec<f64> = Vec::with_capacity(y.len() + 1);
    for (i, tx) in x.iter().enumerate() {
        curr.clear();
        curr.push((i + 1) as f64 * costs.delete);
        for (ty, w) in y.iter().zip(prev.windows(2)) {
            let subst = if tx == ty { w[0] } else { w[0] + costs.replace };
            let left = curr.last().copied().unwrap_or(0.0);
            curr.push(subst.min(w[1] + costs.delete).min(left + costs.insert));
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev.last().copied().unwrap_or(0.0)
}

/// Worst-case transformation cost `xform_wc(x, y)` (paper §2.2): replace
/// every token of the shorter sequence, then delete/insert the length
/// difference.
pub fn xform_worst_case<T>(x: &[T], y: &[T], costs: CostModel) -> f64 {
    let common = x.len().min(y.len()) as f64;
    let replaced = common * costs.replace;
    let leftover = if x.len() > y.len() {
        (x.len() - y.len()) as f64 * costs.delete
    } else {
        (y.len() - x.len()) as f64 * costs.insert
    };
    replaced + leftover
}

/// Normalized edit *similarity* between token sequences:
/// `1 − xform(x, y) / xform_wc(x, y)`.
///
/// Note: the paper's Eq. 4 literally reads `xform / xform_wc`, which is a
/// normalized *dissimilarity*; Table 1 reports Levenshtein self-similarity
/// as 1.0, so the implementation must be the complement — which is what
/// SimPack's Java code computed and what we do here.
pub fn sequence_similarity<T: PartialEq>(x: &[T], y: &[T], costs: CostModel) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 1.0;
    }
    let worst = xform_worst_case(x, y, costs);
    if worst == 0.0 {
        return 1.0;
    }
    (1.0 - xform(x, y, costs) / worst).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn unit_costs_match_levenshtein_on_tokens() {
        let x = toks("the professor teaches the course");
        let y = toks("the student attends the course");
        // professor→student, teaches→attends: two replacements.
        assert_eq!(xform(&x, &y, CostModel::UNIT), 2.0);
    }

    #[test]
    fn worst_case_bounds_actual() {
        let x = toks("a b c d");
        let y = toks("e f");
        let actual = xform(&x, &y, CostModel::UNIT);
        let worst = xform_worst_case(&x, &y, CostModel::UNIT);
        assert!(actual <= worst);
        assert_eq!(worst, 2.0 + 2.0); // 2 replacements + 2 deletions
        assert_eq!(actual, 4.0); // nothing shared
        assert_eq!(sequence_similarity(&x, &y, CostModel::UNIT), 0.0);
    }

    #[test]
    fn identity_and_empty() {
        let x = toks("one two three");
        assert_eq!(sequence_similarity(&x, &x, CostModel::UNIT), 1.0);
        let empty: Vec<&str> = vec![];
        assert_eq!(sequence_similarity(&empty, &empty, CostModel::UNIT), 1.0);
        assert_eq!(sequence_similarity(&x, &empty, CostModel::UNIT), 0.0);
    }

    #[test]
    fn similarity_is_symmetric_under_symmetric_costs() {
        let x = toks("alpha beta gamma");
        let y = toks("alpha gamma delta epsilon");
        assert!(
            (sequence_similarity(&x, &y, CostModel::UNIT)
                - sequence_similarity(&y, &x, CostModel::UNIT))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn cheaper_replace_changes_distance() {
        let costs = CostModel::new(1.0, 1.0, 0.5).expect("valid");
        let x = toks("a b");
        let y = toks("c d");
        assert_eq!(xform(&x, &y, costs), 1.0); // two replacements at 0.5
        assert_eq!(xform(&x, &y, CostModel::UNIT), 2.0);
    }

    #[test]
    fn cost_model_validation() {
        assert!(CostModel::new(1.0, 1.0, 2.0).is_ok()); // boundary: 1+1 ≥ 2
        assert!(CostModel::new(1.0, 1.0, 2.5).is_err());
        assert!(CostModel::new(0.0, 1.0, 1.0).is_err());
        // unchecked lets ablations build the invalid model anyway.
        let bad = CostModel::unchecked(1.0, 1.0, 2.5);
        assert_eq!(bad.replace, 2.5);
    }

    #[test]
    fn replace_never_used_when_too_expensive() {
        // With replace > delete+insert the DP should route around it.
        let costs = CostModel::unchecked(1.0, 1.0, 10.0);
        let x = toks("a");
        let y = toks("b");
        assert_eq!(xform(&x, &y, costs), 2.0); // delete + insert
    }

    #[test]
    fn works_on_concept_path_tokens() {
        // M₂ view: paths through the ontology graph as token sequences.
        let x = ["Thing", "Person", "Professor"];
        let y = ["Thing", "Person", "Student"];
        let sim = sequence_similarity(&x, &y, CostModel::UNIT);
        assert!((sim - 2.0 / 3.0).abs() < 1e-12);
    }
}

//! Vector-based similarity measures (paper §2.2, Eq. 1–3).
//!
//! The paper derives binary vectors from resource feature sets via the
//! trivial mapping M₁ (union the features, mark presence). Since the
//! vectors are characteristic functions of sets, the measures are provided
//! both on explicit sets of features and on weighted sparse vectors (for
//! TF-IDF term vectors).

use std::collections::BTreeSet;

/// A feature set: the paper's view of a resource as the set of its
/// properties. `BTreeSet` keeps iteration deterministic.
pub type FeatureSet = BTreeSet<String>;

/// Builds a feature set from anything yielding string-likes.
pub fn features<I, S>(items: I) -> FeatureSet
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    items.into_iter().map(Into::into).collect()
}

fn intersection_size(x: &FeatureSet, y: &FeatureSet) -> usize {
    x.intersection(y).count()
}

/// Every set measure depends only on `|x∩y|`, `|x|`, and `|y|`. These
/// count-based cores carry the final float expressions, shared by the
/// string-set entry points and the interned-id batch path
/// ([`InternedFeatures`]) so the two are bit-identical by construction.
pub fn cosine_from_counts(inter: usize, nx: usize, ny: usize) -> f64 {
    if nx == 0 || ny == 0 {
        return 0.0;
    }
    inter as f64 / ((nx as f64) * (ny as f64)).sqrt()
}

/// Count-based core of [`jaccard`].
pub fn jaccard_from_counts(inter: usize, nx: usize, ny: usize) -> f64 {
    if nx == 0 && ny == 0 {
        return 0.0;
    }
    let inter = inter as f64;
    inter / (nx as f64 + ny as f64 - inter)
}

/// Count-based core of [`overlap`].
pub fn overlap_from_counts(inter: usize, nx: usize, ny: usize) -> f64 {
    if nx == 0 || ny == 0 {
        return 0.0;
    }
    inter as f64 / nx.min(ny) as f64
}

/// Count-based core of [`dice`].
pub fn dice_from_counts(inter: usize, nx: usize, ny: usize) -> f64 {
    if nx == 0 && ny == 0 {
        return 0.0;
    }
    2.0 * inter as f64 / (nx + ny) as f64
}

/// Cosine similarity (Eq. 1) of the binary vectors of two feature sets:
/// `|x∩y| / sqrt(|x|·|y|)`.
pub fn cosine(x: &FeatureSet, y: &FeatureSet) -> f64 {
    cosine_from_counts(intersection_size(x, y), x.len(), y.len())
}

/// Extended Jaccard similarity (Eq. 2): `|x∩y| / (|x| + |y| − |x∩y|)`.
pub fn jaccard(x: &FeatureSet, y: &FeatureSet) -> f64 {
    jaccard_from_counts(intersection_size(x, y), x.len(), y.len())
}

/// Overlap similarity (Eq. 3): `|x∩y| / min(|x|, |y|)`.
pub fn overlap(x: &FeatureSet, y: &FeatureSet) -> f64 {
    overlap_from_counts(intersection_size(x, y), x.len(), y.len())
}

/// Dice coefficient: `2|x∩y| / (|x| + |y|)` — a standard companion of the
/// three paper measures, used by the ablation benches.
pub fn dice(x: &FeatureSet, y: &FeatureSet) -> f64 {
    dice_from_counts(intersection_size(x, y), x.len(), y.len())
}

/// A feature set interned to sorted distinct `u32` ids against a shared
/// batch vocabulary: `|x∩y|` becomes a linear merge over two small sorted
/// slices instead of tree-set iteration with string comparisons. Interning
/// is injective, so the counts — and through the `*_from_counts` cores the
/// measures — are identical to the string-set path.
#[derive(Debug, Clone, Default)]
pub struct InternedFeatures {
    ids: Vec<u32>,
}

impl InternedFeatures {
    /// Wraps sorted, deduplicated ids (typically produced by interning a
    /// [`FeatureSet`] in iteration order against a growing vocabulary, then
    /// sorting).
    pub fn new(mut ids: Vec<u32>) -> InternedFeatures {
        ids.sort_unstable();
        ids.dedup();
        InternedFeatures { ids }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// `|x∩y|` by sorted merge.
    pub fn intersection_size(&self, other: &InternedFeatures) -> usize {
        let mut xs = self.ids.as_slice();
        let mut ys = other.ids.as_slice();
        let mut inter = 0usize;
        while let (Some(&x), Some(&y)) = (xs.first(), ys.first()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => xs = xs.get(1..).unwrap_or(&[]),
                std::cmp::Ordering::Greater => ys = ys.get(1..).unwrap_or(&[]),
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    xs = xs.get(1..).unwrap_or(&[]);
                    ys = ys.get(1..).unwrap_or(&[]);
                }
            }
        }
        inter
    }
}

// ---- Weighted sparse vectors ------------------------------------------

/// A sparse weighted vector sorted by dimension id.
pub type SparseVector = Vec<(u32, f64)>;

fn sparse_dot(x: &SparseVector, y: &SparseVector) -> f64 {
    let (mut i, mut j, mut sum) = (0, 0, 0.0);
    while i < x.len() && j < y.len() {
        match x[i].0.cmp(&y[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                sum += x[i].1 * y[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

fn sparse_norm_sq(x: &SparseVector) -> f64 {
    x.iter().map(|&(_, w)| w * w).sum()
}

/// Cosine similarity of weighted vectors (Eq. 1).
pub fn cosine_weighted(x: &SparseVector, y: &SparseVector) -> f64 {
    let denom = (sparse_norm_sq(x) * sparse_norm_sq(y)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (sparse_dot(x, y) / denom).clamp(-1.0, 1.0)
    }
}

/// Extended Jaccard on weighted vectors (Eq. 2):
/// `x·y / (‖x‖² + ‖y‖² − x·y)`.
///
/// With signed components (dense embeddings projected back to sparse
/// form) the raw ratio can leave [0, 1] — a negative dot product makes
/// it negative, and `min(‖x‖², ‖y‖²) < x·y` is possible for unequal
/// norms — so the result is clamped like `cosine_weighted`.
pub fn jaccard_weighted(x: &SparseVector, y: &SparseVector) -> f64 {
    let dot = sparse_dot(x, y);
    let denom = sparse_norm_sq(x) + sparse_norm_sq(y) - dot;
    if denom == 0.0 {
        0.0
    } else {
        (dot / denom).clamp(0.0, 1.0)
    }
}

/// Overlap on weighted vectors (Eq. 3): `x·y / min(‖x‖², ‖y‖²)`, clamped
/// to [0, 1] for the same reason as [`jaccard_weighted`].
pub fn overlap_weighted(x: &SparseVector, y: &SparseVector) -> f64 {
    let denom = sparse_norm_sq(x).min(sparse_norm_sq(y));
    if denom == 0.0 {
        0.0
    } else {
        (sparse_dot(x, y) / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx() -> FeatureSet {
        features(["type", "name"])
    }

    fn fy() -> FeatureSet {
        features(["type", "age"])
    }

    #[test]
    fn paper_example_vectors() {
        // The paper's R_x = {type, name}, R_y = {type, age}: one shared
        // feature of two each.
        assert!((cosine(&fx(), &fy()) - 0.5).abs() < 1e-12);
        assert!((jaccard(&fx(), &fy()) - 1.0 / 3.0).abs() < 1e-12);
        assert!((overlap(&fx(), &fy()) - 0.5).abs() < 1e-12);
        assert!((dice(&fx(), &fy()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_sets_score_one() {
        for f in [cosine, jaccard, overlap, dice] {
            assert!((f(&fx(), &fx()) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let a = features(["a"]);
        let b = features(["b"]);
        for f in [cosine, jaccard, overlap, dice] {
            assert_eq!(f(&a, &b), 0.0);
        }
    }

    #[test]
    fn empty_sets_are_safe() {
        let e = FeatureSet::new();
        for f in [cosine, jaccard, overlap, dice] {
            assert_eq!(f(&e, &e), 0.0);
            assert_eq!(f(&e, &fx()), 0.0);
        }
    }

    #[test]
    fn overlap_is_one_for_subsets() {
        let small = features(["type"]);
        let big = features(["type", "name", "age"]);
        assert_eq!(overlap(&small, &big), 1.0);
        assert!(jaccard(&small, &big) < 1.0);
    }

    #[test]
    fn interned_features_match_string_sets_bitwise() {
        let sets = [
            features::<_, &str>([]),
            features(["type"]),
            features(["type", "name"]),
            features(["type", "age"]),
            features(["a", "b", "c", "d"]),
            features(["b", "d", "e"]),
        ];
        // Intern against a shared vocabulary, deliberately in an order
        // that scrambles ids relative to the BTreeSet string order.
        let mut vocab: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        let interned: Vec<InternedFeatures> = sets
            .iter()
            .map(|s| {
                let ids = s
                    .iter()
                    .rev()
                    .map(|f| {
                        let next = vocab.len() as u32;
                        *vocab.entry(f.as_str()).or_insert(next)
                    })
                    .collect();
                InternedFeatures::new(ids)
            })
            .collect();
        for (s, i) in sets.iter().zip(&interned) {
            assert_eq!(s.len(), i.len());
        }
        for (sx, ix) in sets.iter().zip(&interned) {
            for (sy, iy) in sets.iter().zip(&interned) {
                let inter = ix.intersection_size(iy);
                assert_eq!(inter, intersection_size(sx, sy));
                let pairs = [
                    (
                        cosine(sx, sy),
                        cosine_from_counts(inter, ix.len(), iy.len()),
                    ),
                    (
                        jaccard(sx, sy),
                        jaccard_from_counts(inter, ix.len(), iy.len()),
                    ),
                    (
                        overlap(sx, sy),
                        overlap_from_counts(inter, ix.len(), iy.len()),
                    ),
                    (dice(sx, sy), dice_from_counts(inter, ix.len(), iy.len())),
                ];
                for (reference, fast) in pairs {
                    assert_eq!(reference.to_bits(), fast.to_bits());
                }
            }
        }
    }

    #[test]
    fn weighted_measures_match_binary_on_unit_weights() {
        let x: SparseVector = vec![(0, 1.0), (1, 1.0)];
        let y: SparseVector = vec![(0, 1.0), (2, 1.0)];
        assert!((cosine_weighted(&x, &y) - 0.5).abs() < 1e-12);
        assert!((jaccard_weighted(&x, &y) - 1.0 / 3.0).abs() < 1e-12);
        assert!((overlap_weighted(&x, &y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_measures_stay_in_unit_interval_with_negative_weights() {
        // Anti-parallel signed vectors: the dot product is negative, so
        // the unclamped Jaccard/overlap ratios would be negative too.
        let x: SparseVector = vec![(0, 1.0), (1, -2.0)];
        let y: SparseVector = vec![(0, -1.0), (1, 2.0)];
        for f in [cosine_weighted, jaccard_weighted, overlap_weighted] {
            let s = f(&x, &y);
            assert!(s.is_finite());
            assert!((-1.0..=1.0).contains(&s), "out of range: {s}");
        }
        assert_eq!(jaccard_weighted(&x, &y), 0.0);
        assert_eq!(overlap_weighted(&x, &y), 0.0);
    }

    #[test]
    fn weighted_overlap_clamps_above_one_for_unequal_norms() {
        // x·y = 1.0 but min(‖x‖², ‖y‖²) = 0.25: the raw ratio is 4.0.
        let x: SparseVector = vec![(0, 2.0)];
        let y: SparseVector = vec![(0, 0.5)];
        assert_eq!(overlap_weighted(&x, &y), 1.0);
        let j = jaccard_weighted(&x, &y);
        assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn weighted_cosine_scales_invariant() {
        let x: SparseVector = vec![(0, 2.0), (1, 4.0)];
        let x10: SparseVector = vec![(0, 20.0), (1, 40.0)];
        let y: SparseVector = vec![(0, 1.0), (1, 1.0)];
        assert!((cosine_weighted(&x, &y) - cosine_weighted(&x10, &y)).abs() < 1e-12);
    }
}

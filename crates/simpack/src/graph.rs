//! Distance-based similarity measures over specialization graphs
//! (paper §2.2, Eq. 5–6).
//!
//! The specialization graph of an ontology with multiple inheritance is a
//! rooted DAG, so the "ontology distance" comes in two flavours the paper
//! names: the shortest path *through a common ancestor* and the shortest
//! path *in general* (undirected, possibly through common descendants).

use std::collections::VecDeque;
use std::sync::{Arc, PoisonError, RwLock};

/// Node handle within a [`Taxonomy`].
pub type NodeId = u32;

/// Cached per-node depths plus the maximum depth (`MAX` of Eq. 5),
/// computed in one downward BFS and shared via `Arc` so batch scans can
/// hold one reference instead of re-locking the cache per lookup.
#[derive(Debug, Clone)]
pub struct DepthTable {
    depths: Vec<u32>,
    max: u32,
}

impl DepthTable {
    /// Depth of `n` (shortest edge count from the root).
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depths[n as usize]
    }

    /// The depth of the deepest node.
    pub fn max(&self) -> u32 {
        self.max
    }

    /// All depths, indexed by node id.
    pub fn as_slice(&self) -> &[u32] {
        &self.depths
    }
}

/// Per-source BFS distance tables: everything the graph and IC measures
/// need about one concept, computed once. An n-concept matrix scan builds
/// n of these instead of running 2 fresh BFS traversals per pair.
#[derive(Debug, Clone)]
pub struct SourceTables {
    /// Upward distances: `up[n] = Some(k)` iff `n` subsumes the source at
    /// `k` steps (ancestor-or-self). Mirrors [`Taxonomy::up_distances`].
    pub up: Vec<Option<u32>>,
    /// Undirected distances (the paper's "shortest path in general", which
    /// may run through common descendants). Mirrors
    /// [`Taxonomy::shortest_path`] from the source to every node.
    pub undirected: Vec<Option<u32>>,
}

/// A rooted specialization DAG. Nodes are dense ids; edges point from
/// subconcept to superconcept.
///
/// Depths are cached after first use (and invalidated by [`Taxonomy::
/// add_edge`]): the distance-based measures ask for `depth`/`max_depth`
/// per pair, and recomputing a BFS per query would dominate k-most-similar
/// scans.
#[derive(Debug)]
pub struct Taxonomy {
    parents: Vec<Vec<NodeId>>,
    children: Vec<Vec<NodeId>>,
    root: NodeId,
    depth_cache: RwLock<Option<Arc<DepthTable>>>,
}

impl Clone for Taxonomy {
    fn clone(&self) -> Self {
        Taxonomy {
            parents: self.parents.clone(),
            children: self.children.clone(),
            root: self.root,
            depth_cache: RwLock::new(
                self.depth_cache
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl Taxonomy {
    /// Creates a taxonomy with `node_count` nodes rooted at `root`.
    pub fn new(node_count: usize, root: NodeId) -> Self {
        // lint: allow(panic) construction-time invariant; taxonomies are built by UnifiedTree with a valid root
        assert!((root as usize) < node_count, "root out of range");
        Taxonomy {
            parents: vec![Vec::new(); node_count],
            children: vec![Vec::new(); node_count],
            root,
            depth_cache: RwLock::new(None),
        }
    }

    /// Declares `child` a direct subconcept of `parent` (idempotent; self
    /// loops ignored).
    pub fn add_edge(&mut self, child: NodeId, parent: NodeId) {
        if child == parent {
            return;
        }
        if !self.parents[child as usize].contains(&parent) {
            self.parents[child as usize].push(parent);
            self.children[parent as usize].push(child);
            *self
                .depth_cache
                .write()
                .unwrap_or_else(PoisonError::into_inner) = None;
        }
    }

    /// Depths of every node (shortest edge count from the root, downward
    /// BFS over child edges; unreachable nodes get depth 0), together with
    /// the maximum depth. Computed once and cached until the taxonomy
    /// changes, so `max_depth` is an O(1) lookup rather than an O(n) scan.
    pub fn depths(&self) -> Arc<DepthTable> {
        if let Some(cached) = self
            .depth_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
        {
            return cached;
        }
        let mut depths = vec![0u32; self.node_count()];
        let mut seen = vec![false; self.node_count()];
        seen[self.root as usize] = true;
        let mut queue = VecDeque::from([self.root]);
        while let Some(n) = queue.pop_front() {
            for &c in &self.children[n as usize] {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    depths[c as usize] = depths[n as usize] + 1;
                    queue.push_back(c);
                }
            }
        }
        let max = depths.iter().copied().max().unwrap_or(0);
        let table = Arc::new(DepthTable { depths, max });
        *self
            .depth_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Some(table.clone());
        table
    }

    pub fn node_count(&self) -> usize {
        self.parents.len()
    }

    pub fn root(&self) -> NodeId {
        self.root
    }

    pub fn parents(&self, n: NodeId) -> &[NodeId] {
        &self.parents[n as usize]
    }

    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.children[n as usize]
    }

    /// Upward distances from `start` to every ancestor-or-self:
    /// `dist[n] = Some(k)` if `n` subsumes `start` at k steps.
    pub fn up_distances(&self, start: NodeId) -> Vec<Option<u32>> {
        let mut queue = VecDeque::new();
        self.up_distances_with(start, &mut queue)
    }

    fn up_distances_with(&self, start: NodeId, queue: &mut VecDeque<NodeId>) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.node_count()];
        dist[start as usize] = Some(0);
        queue.clear();
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            let Some(d) = dist[n as usize] else { continue };
            for &p in &self.parents[n as usize] {
                if dist[p as usize].is_none() {
                    dist[p as usize] = Some(d + 1);
                    queue.push_back(p);
                }
            }
        }
        dist
    }

    /// Undirected BFS distances from `start` to every node (over parent and
    /// child edges alike). `undirected[b]` equals
    /// [`Taxonomy::shortest_path`]`(start, b)` for every `b`.
    pub fn undirected_distances(&self, start: NodeId) -> Vec<Option<u32>> {
        let mut queue = VecDeque::new();
        self.undirected_distances_with(start, &mut queue)
    }

    fn undirected_distances_with(
        &self,
        start: NodeId,
        queue: &mut VecDeque<NodeId>,
    ) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.node_count()];
        dist[start as usize] = Some(0);
        queue.clear();
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            let Some(d) = dist[n as usize] else { continue };
            for &m in self.parents[n as usize]
                .iter()
                .chain(&self.children[n as usize])
            {
                if dist[m as usize].is_none() {
                    dist[m as usize] = Some(d + 1);
                    queue.push_back(m);
                }
            }
        }
        dist
    }

    /// Both BFS tables for one source concept.
    pub fn source_tables(&self, start: NodeId) -> SourceTables {
        let mut queue = VecDeque::new();
        SourceTables {
            up: self.up_distances_with(start, &mut queue),
            undirected: self.undirected_distances_with(start, &mut queue),
        }
    }

    /// Batch variant of [`Taxonomy::source_tables`]: one table pair per
    /// requested source, reusing a single BFS queue as scratch across the
    /// whole batch. This is what turns an n-concept matrix scan from n²
    /// traversals into n.
    pub fn source_tables_for(&self, starts: &[NodeId]) -> Vec<SourceTables> {
        let mut queue = VecDeque::new();
        starts
            .iter()
            .map(|&s| SourceTables {
                up: self.up_distances_with(s, &mut queue),
                undirected: self.undirected_distances_with(s, &mut queue),
            })
            .collect()
    }

    /// Depth of `n`: shortest upward distance from `n` to the root.
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depths().depth(n)
    }

    /// `MAX` of Eq. 5: the depth of the deepest node (cached, O(1)).
    pub fn max_depth(&self) -> u32 {
        self.depths().max()
    }

    /// Length of the shortest undirected path between `a` and `b` —
    /// the paper's "shortest path in general", which may run through common
    /// descendants. `None` if the graph is disconnected between them.
    pub fn shortest_path(&self, a: NodeId, b: NodeId) -> Option<u32> {
        if a == b {
            return Some(0);
        }
        let mut dist = vec![None; self.node_count()];
        dist[a as usize] = Some(0);
        let mut queue = VecDeque::from([a]);
        while let Some(n) = queue.pop_front() {
            let Some(d) = dist[n as usize] else { continue };
            for &m in self.parents[n as usize]
                .iter()
                .chain(&self.children[n as usize])
            {
                if dist[m as usize].is_none() {
                    if m == b {
                        return Some(d + 1);
                    }
                    dist[m as usize] = Some(d + 1);
                    queue.push_back(m);
                }
            }
        }
        None
    }

    /// Length of the shortest path from `a` to `b` running through a common
    /// ancestor (the classical edge-counting distance on taxonomies).
    pub fn path_via_common_ancestor(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let da = self.up_distances(a);
        let db = self.up_distances(b);
        path_via_common_ancestor_from(&da, &db)
    }

    /// Most recent common ancestor: the common ancestor minimizing the
    /// summed upward distances (ties broken by greater depth, then by id for
    /// determinism). Returns the node together with N1 = dist(a → mrca) and
    /// N2 = dist(b → mrca).
    pub fn mrca(&self, a: NodeId, b: NodeId) -> Option<(NodeId, u32, u32)> {
        let da = self.up_distances(a);
        let db = self.up_distances(b);
        // One depth-table fetch for the whole candidate scan — the previous
        // `self.depth(n)` re-acquired the cache lock per candidate node.
        let depths = self.depths();
        mrca_from(&da, &db, &depths)
    }
}

/// Compact ancestor list of one source concept: `(node, upward distance)`
/// for every ancestor-or-self, sorted by node id. Ontology DAGs are
/// shallow, so a concept's ancestor set is tiny compared to the node count
/// — walking two of these lists replaces the O(node-count) full-table scans
/// of [`mrca_from`]/[`path_via_common_ancestor_from`] with a merge over a
/// handful of entries. Iteration stays in ascending id order, so every
/// tie-break selects the same node and the measures stay bit-identical.
#[derive(Debug, Clone, Default)]
pub struct AncestorList {
    entries: Vec<(NodeId, u32)>,
}

impl AncestorList {
    /// Extracts the `Some` entries of a full upward-distance table (already
    /// in ascending id order).
    pub fn from_table(up: &[Option<u32>]) -> AncestorList {
        AncestorList {
            entries: up
                .iter()
                .enumerate()
                .filter_map(|(n, d)| d.map(|d| (n as NodeId, d)))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge-walks two lists, yielding the common nodes in ascending id
    /// order with both upward distances.
    pub(crate) fn common<'a>(&'a self, other: &'a AncestorList) -> CommonAncestors<'a> {
        CommonAncestors {
            xs: &self.entries,
            ys: &other.entries,
        }
    }
}

/// Iterator over the common entries of two sorted [`AncestorList`]s.
#[derive(Debug)]
pub(crate) struct CommonAncestors<'a> {
    xs: &'a [(NodeId, u32)],
    ys: &'a [(NodeId, u32)],
}

impl Iterator for CommonAncestors<'_> {
    type Item = (NodeId, u32, u32);

    fn next(&mut self) -> Option<(NodeId, u32, u32)> {
        loop {
            let (&(xn, xd), &(yn, yd)) = (self.xs.first()?, self.ys.first()?);
            match xn.cmp(&yn) {
                std::cmp::Ordering::Less => self.xs = self.xs.get(1..).unwrap_or(&[]),
                std::cmp::Ordering::Greater => self.ys = self.ys.get(1..).unwrap_or(&[]),
                std::cmp::Ordering::Equal => {
                    self.xs = self.xs.get(1..).unwrap_or(&[]);
                    self.ys = self.ys.get(1..).unwrap_or(&[]);
                    return Some((xn, xd, yd));
                }
            }
        }
    }
}

/// [`path_via_common_ancestor_from`] over compact ancestor lists. `min`
/// over the same value set as the full-table zip, so the result is
/// identical.
pub fn path_via_common_ancestor_compact(a: &AncestorList, b: &AncestorList) -> Option<u32> {
    a.common(b).map(|(_, x, y)| x + y).min()
}

/// [`mrca_from`] over compact ancestor lists: the candidate scan visits the
/// common nodes in the same ascending id order with the same tie-breaks.
pub fn mrca_compact(
    a: &AncestorList,
    b: &AncestorList,
    depths: &DepthTable,
) -> Option<(NodeId, u32, u32)> {
    let mut best: Option<(NodeId, u32, u32, u32)> = None;
    for (n, n1, n2) in a.common(b) {
        let depth = depths.depth(n);
        let better = match &best {
            None => true,
            Some((bn, b1, b2, bd)) => {
                let (bn, b1, b2, bd) = (*bn, *b1, *b2, *bd);
                let (sum, bsum) = (n1 + n2, b1 + b2);
                sum < bsum || (sum == bsum && (depth > bd || (depth == bd && n < bn)))
            }
        };
        if better {
            best = Some((n, n1, n2, depth));
        }
    }
    best.map(|(n, n1, n2, _)| (n, n1, n2))
}

/// [`edge_similarity_from`] over compact ancestor lists.
pub fn edge_similarity_compact(
    a: &AncestorList,
    b: &AncestorList,
    same: bool,
    max_depth: u32,
) -> f64 {
    edge_length_similarity(path_via_common_ancestor_compact(a, b), same, max_depth)
}

/// [`wu_palmer_similarity_from`] over compact ancestor lists.
pub fn wu_palmer_similarity_compact(
    a: &AncestorList,
    b: &AncestorList,
    depths: &DepthTable,
    same: bool,
) -> f64 {
    wu_palmer_core(mrca_compact(a, b, depths), depths, same)
}

/// [`wu_palmer_similarity_rooted_from`] over compact ancestor lists.
pub fn wu_palmer_similarity_rooted_compact(
    a: &AncestorList,
    b: &AncestorList,
    depths: &DepthTable,
) -> f64 {
    wu_palmer_rooted_core(mrca_compact(a, b, depths), depths)
}

/// Table-based [`Taxonomy::path_via_common_ancestor`]: zip-min over two
/// precomputed upward-distance tables.
pub fn path_via_common_ancestor_from(da: &[Option<u32>], db: &[Option<u32>]) -> Option<u32> {
    da.iter()
        .zip(db)
        .filter_map(|(x, y)| Some(x.as_ref()? + y.as_ref()?))
        .min()
}

/// Table-based [`Taxonomy::mrca`]: same scan and tie-breaks (smaller summed
/// distance, then greater depth, then smaller id) over precomputed upward
/// distances and a shared depth table.
pub fn mrca_from(
    da: &[Option<u32>],
    db: &[Option<u32>],
    depths: &DepthTable,
) -> Option<(NodeId, u32, u32)> {
    let mut best: Option<(NodeId, u32, u32, u32)> = None; // (node, n1, n2, depth)
    for n in 0..da.len() as NodeId {
        let (Some(n1), Some(n2)) = (da[n as usize], db[n as usize]) else {
            continue;
        };
        let depth = depths.depth(n);
        let better = match &best {
            None => true,
            Some((bn, b1, b2, bd)) => {
                let (bn, b1, b2, bd) = (*bn, *b1, *b2, *bd);
                let (sum, bsum) = (n1 + n2, b1 + b2);
                sum < bsum || (sum == bsum && (depth > bd || (depth == bd && n < bn)))
            }
        };
        if better {
            best = Some((n, n1, n2, depth));
        }
    }
    best.map(|(n, n1, n2, _)| (n, n1, n2))
}

/// Shortest-path similarity: `1 / (1 + len)` over the undirected shortest
/// path; 0 when disconnected. Self-similarity is 1.
pub fn shortest_path_similarity(t: &Taxonomy, a: NodeId, b: NodeId) -> f64 {
    shortest_path_length_similarity(t.shortest_path(a, b))
}

/// Table-based [`shortest_path_similarity`]: the undirected BFS table of
/// `a`'s [`SourceTables`] already holds the shortest-path length to `b`.
pub fn shortest_path_similarity_from(a: &SourceTables, b: NodeId) -> f64 {
    shortest_path_length_similarity(a.undirected[b as usize])
}

fn shortest_path_length_similarity(len: Option<u32>) -> f64 {
    match len {
        Some(len) => 1.0 / (1.0 + len as f64),
        None => 0.0,
    }
}

/// The normalized edge-counting measure of Eq. 5:
/// `(2·MAX − len(a, b)) / (2·MAX)` with `len` the shortest path through a
/// common ancestor. Disconnected pairs score 0.
pub fn edge_similarity(t: &Taxonomy, a: NodeId, b: NodeId) -> f64 {
    edge_length_similarity(t.path_via_common_ancestor(a, b), a == b, t.max_depth())
}

/// Table-based [`edge_similarity`] over two precomputed upward-distance
/// tables and a cached `MAX` depth.
pub fn edge_similarity_from(
    da: &[Option<u32>],
    db: &[Option<u32>],
    same: bool,
    max_depth: u32,
) -> f64 {
    edge_length_similarity(path_via_common_ancestor_from(da, db), same, max_depth)
}

fn edge_length_similarity(len: Option<u32>, same: bool, max_depth: u32) -> f64 {
    let max = max_depth as f64;
    if max == 0.0 {
        return if same { 1.0 } else { 0.0 };
    }
    match len {
        Some(len) => ((2.0 * max - len as f64) / (2.0 * max)).clamp(0.0, 1.0),
        None => 0.0,
    }
}

/// Wu & Palmer conceptual similarity (Eq. 6):
/// `2·N3 / (N1 + N2 + 2·N3)` where N3 is the depth of the MRCA and N1, N2
/// the distances from the two concepts to it.
pub fn wu_palmer_similarity(t: &Taxonomy, a: NodeId, b: NodeId) -> f64 {
    wu_palmer_core(t.mrca(a, b), &t.depths(), a == b)
}

/// Table-based [`wu_palmer_similarity`].
pub fn wu_palmer_similarity_from(
    da: &[Option<u32>],
    db: &[Option<u32>],
    depths: &DepthTable,
    same: bool,
) -> f64 {
    wu_palmer_core(mrca_from(da, db, depths), depths, same)
}

fn wu_palmer_core(mrca: Option<(NodeId, u32, u32)>, depths: &DepthTable, same: bool) -> f64 {
    let Some((mrca, n1, n2)) = mrca else {
        return 0.0;
    };
    let n3 = depths.depth(mrca) as f64;
    let (n1, n2) = (n1 as f64, n2 as f64);
    let denom = n1 + n2 + 2.0 * n3;
    if denom == 0.0 {
        // Both concepts are the root itself.
        return if same { 1.0 } else { 0.0 };
    }
    2.0 * n3 / denom
}

/// Wu & Palmer with node-counted depth: `N3' = depth(MRCA) + 1`, i.e. the
/// root itself counts as one level. This is the convention the original
/// SimPack used inside SST — it keeps cross-ontology pairs (whose MRCA is
/// the Super-Thing root) at a small *nonzero* similarity ordered by path
/// length, matching the paper's Table 1 column. Self-similarity is 1.
pub fn wu_palmer_similarity_rooted(t: &Taxonomy, a: NodeId, b: NodeId) -> f64 {
    wu_palmer_rooted_core(t.mrca(a, b), &t.depths())
}

/// Table-based [`wu_palmer_similarity_rooted`].
pub fn wu_palmer_similarity_rooted_from(
    da: &[Option<u32>],
    db: &[Option<u32>],
    depths: &DepthTable,
) -> f64 {
    wu_palmer_rooted_core(mrca_from(da, db, depths), depths)
}

fn wu_palmer_rooted_core(mrca: Option<(NodeId, u32, u32)>, depths: &DepthTable) -> f64 {
    let Some((mrca, n1, n2)) = mrca else {
        return 0.0;
    };
    let n3 = depths.depth(mrca) as f64 + 1.0;
    let (n1, n2) = (n1 as f64, n2 as f64);
    2.0 * n3 / (n1 + n2 + 2.0 * n3)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0=root, 1=Person, 2=Student, 3=Professor, 4=FullProf, 5=Animal,
    /// 6=Bird
    fn sample() -> Taxonomy {
        let mut t = Taxonomy::new(7, 0);
        t.add_edge(1, 0);
        t.add_edge(2, 1);
        t.add_edge(3, 1);
        t.add_edge(4, 3);
        t.add_edge(5, 0);
        t.add_edge(6, 5);
        t
    }

    #[test]
    fn depth_and_max() {
        let t = sample();
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(4), 3);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn shortest_paths() {
        let t = sample();
        assert_eq!(t.shortest_path(2, 3), Some(2)); // Student-Person-Professor
        assert_eq!(t.shortest_path(2, 6), Some(4));
        assert_eq!(t.shortest_path(4, 4), Some(0));
        assert_eq!(t.path_via_common_ancestor(2, 3), Some(2));
        assert_eq!(t.path_via_common_ancestor(2, 6), Some(4));
    }

    #[test]
    fn shortest_path_through_common_descendant() {
        // Diamond: 0 root; 1, 2 children of 0; 3 child of both 1 and 2.
        let mut t = Taxonomy::new(4, 0);
        t.add_edge(1, 0);
        t.add_edge(2, 0);
        t.add_edge(3, 1);
        t.add_edge(3, 2);
        // General path 1–3–2 has length 2, same as 1–0–2; in a deeper
        // diamond the descendant route wins:
        let mut deep = Taxonomy::new(6, 0);
        deep.add_edge(1, 0);
        deep.add_edge(2, 1); // left chain: 0-1-2
        deep.add_edge(3, 0);
        deep.add_edge(4, 3); // right chain: 0-3-4
        deep.add_edge(5, 2);
        deep.add_edge(5, 4); // shared leaf
        assert_eq!(deep.shortest_path(2, 4), Some(2)); // through leaf 5
        assert_eq!(deep.path_via_common_ancestor(2, 4), Some(4)); // via root
        assert_eq!(t.shortest_path(1, 2), Some(2));
    }

    #[test]
    fn mrca_picks_nearest_ancestor() {
        let t = sample();
        let (m, n1, n2) = t.mrca(2, 3).unwrap();
        assert_eq!((m, n1, n2), (1, 1, 1)); // Person
        let (m, ..) = t.mrca(2, 6).unwrap();
        assert_eq!(m, 0); // root
        let (m, n1, n2) = t.mrca(3, 4).unwrap();
        assert_eq!((m, n1, n2), (3, 0, 1)); // Professor subsumes FullProf
    }

    #[test]
    fn shortest_path_similarity_values() {
        let t = sample();
        assert_eq!(shortest_path_similarity(&t, 2, 2), 1.0);
        assert!((shortest_path_similarity(&t, 2, 3) - 1.0 / 3.0).abs() < 1e-12);
        assert!((shortest_path_similarity(&t, 2, 6) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn edge_similarity_values() {
        let t = sample();
        // MAX = 3 → denominator 6.
        assert_eq!(edge_similarity(&t, 2, 2), 1.0);
        assert!((edge_similarity(&t, 2, 3) - 4.0 / 6.0).abs() < 1e-12);
        assert!((edge_similarity(&t, 2, 6) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn wu_palmer_values() {
        let t = sample();
        assert_eq!(wu_palmer_similarity(&t, 2, 2), 1.0);
        // Student vs Professor: N1=N2=1, N3=depth(Person)=1 → 2/(1+1+2)=0.5
        assert!((wu_palmer_similarity(&t, 2, 3) - 0.5).abs() < 1e-12);
        // Student vs Bird: MRCA is root, N3=0 → 0.
        assert_eq!(wu_palmer_similarity(&t, 2, 6), 0.0);
        // Root vs root is 1 by convention; root vs child is 0 (N3=0).
        assert_eq!(wu_palmer_similarity(&t, 0, 0), 1.0);
        assert_eq!(wu_palmer_similarity(&t, 0, 1), 0.0);
    }

    #[test]
    fn rooted_wu_palmer_nonzero_across_root() {
        let t = sample();
        // Student vs Bird: MRCA root, N3'=1, N1=N2=2 → 2/(4+2)
        assert!((wu_palmer_similarity_rooted(&t, 2, 6) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(wu_palmer_similarity_rooted(&t, 2, 2), 1.0);
        // Still orders in-domain above cross-domain.
        assert!(wu_palmer_similarity_rooted(&t, 2, 3) > wu_palmer_similarity_rooted(&t, 2, 6));
    }

    #[test]
    fn measures_are_symmetric() {
        let t = sample();
        for (a, b) in [(2, 3), (2, 6), (4, 6), (0, 4)] {
            for f in [
                shortest_path_similarity,
                edge_similarity,
                wu_palmer_similarity,
            ] {
                assert!((f(&t, a, b) - f(&t, b, a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn multiple_inheritance_uses_best_parent() {
        // 4 inherits from both 3 (deep) and 5 (shallow).
        let mut t = Taxonomy::new(6, 0);
        t.add_edge(1, 0);
        t.add_edge(2, 1);
        t.add_edge(3, 2);
        t.add_edge(5, 0);
        t.add_edge(4, 3);
        t.add_edge(4, 5);
        assert_eq!(t.depth(4), 2); // via 5
        let (m, ..) = t.mrca(4, 5).unwrap();
        assert_eq!(m, 5);
    }

    #[test]
    fn depth_cache_invalidates_on_new_edges() {
        let mut t = Taxonomy::new(4, 0);
        t.add_edge(1, 0);
        assert_eq!(t.depth(1), 1);
        assert_eq!(t.depth(2), 0); // not yet attached
        t.add_edge(2, 1); // must invalidate the cache
        assert_eq!(t.depth(2), 2);
        assert_eq!(t.max_depth(), 2);
        // Clone carries the cache but stays correct after mutation.
        let mut c = t.clone();
        c.add_edge(3, 2);
        assert_eq!(c.depth(3), 3);
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn singleton_taxonomy() {
        let t = Taxonomy::new(1, 0);
        assert_eq!(t.max_depth(), 0);
        assert_eq!(edge_similarity(&t, 0, 0), 1.0);
        assert_eq!(wu_palmer_similarity(&t, 0, 0), 1.0);
        assert_eq!(shortest_path_similarity(&t, 0, 0), 1.0);
    }

    #[test]
    fn undirected_distances_match_shortest_path() {
        let mut deep = Taxonomy::new(6, 0);
        deep.add_edge(1, 0);
        deep.add_edge(2, 1);
        deep.add_edge(3, 0);
        deep.add_edge(4, 3);
        deep.add_edge(5, 2);
        deep.add_edge(5, 4);
        for a in 0..6 {
            let table = deep.undirected_distances(a);
            for b in 0..6 {
                assert_eq!(table[b as usize], deep.shortest_path(a, b), "{a}-{b}");
            }
        }
    }

    #[test]
    fn compact_ancestor_lists_match_full_tables_bitwise() {
        for t in [sample(), {
            // Deep diamond with multiple inheritance.
            let mut t = Taxonomy::new(6, 0);
            t.add_edge(1, 0);
            t.add_edge(2, 1);
            t.add_edge(3, 2);
            t.add_edge(5, 0);
            t.add_edge(4, 3);
            t.add_edge(4, 5);
            t
        }] {
            let n = t.node_count() as NodeId;
            let depths = t.depths();
            let tables: Vec<_> = (0..n).map(|a| t.up_distances(a)).collect();
            let lists: Vec<_> = tables
                .iter()
                .map(|up| AncestorList::from_table(up))
                .collect();
            for a in 0..n {
                for b in 0..n {
                    let (ta, tb) = (&tables[a as usize], &tables[b as usize]);
                    let (la, lb) = (&lists[a as usize], &lists[b as usize]);
                    assert_eq!(
                        path_via_common_ancestor_compact(la, lb),
                        path_via_common_ancestor_from(ta, tb)
                    );
                    assert_eq!(mrca_compact(la, lb, &depths), mrca_from(ta, tb, &depths));
                    assert_eq!(
                        edge_similarity_compact(la, lb, a == b, depths.max()).to_bits(),
                        edge_similarity_from(ta, tb, a == b, depths.max()).to_bits()
                    );
                    assert_eq!(
                        wu_palmer_similarity_compact(la, lb, &depths, a == b).to_bits(),
                        wu_palmer_similarity_from(ta, tb, &depths, a == b).to_bits()
                    );
                    assert_eq!(
                        wu_palmer_similarity_rooted_compact(la, lb, &depths).to_bits(),
                        wu_palmer_similarity_rooted_from(ta, tb, &depths).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn source_tables_reproduce_pairwise_measures_bit_identically() {
        let t = sample();
        let nodes: Vec<NodeId> = (0..7).collect();
        let tables = t.source_tables_for(&nodes);
        let depths = t.depths();
        for &a in &nodes {
            assert_eq!(tables[a as usize].up, t.up_distances(a));
            for &b in &nodes {
                let (ta, tb) = (&tables[a as usize], &tables[b as usize]);
                assert_eq!(
                    shortest_path_similarity_from(ta, b).to_bits(),
                    shortest_path_similarity(&t, a, b).to_bits()
                );
                assert_eq!(
                    edge_similarity_from(&ta.up, &tb.up, a == b, depths.max()).to_bits(),
                    edge_similarity(&t, a, b).to_bits()
                );
                assert_eq!(
                    wu_palmer_similarity_from(&ta.up, &tb.up, &depths, a == b).to_bits(),
                    wu_palmer_similarity(&t, a, b).to_bits()
                );
                assert_eq!(
                    wu_palmer_similarity_rooted_from(&ta.up, &tb.up, &depths).to_bits(),
                    wu_palmer_similarity_rooted(&t, a, b).to_bits()
                );
                assert_eq!(mrca_from(&ta.up, &tb.up, &depths), t.mrca(a, b));
            }
        }
    }
}

//! Alignment-based sequence similarity: Needleman-Wunsch (global) and
//! Smith-Waterman (local), over generic token sequences with a pluggable
//! per-token scorer. The original SimPack shipped both; here they extend
//! the Eq. 4 edit-distance family with gap-penalty alignment semantics.

/// Scoring scheme for alignments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentScoring {
    /// Score for two equal tokens (> 0).
    pub matched: f64,
    /// Score for two differing tokens (typically ≤ 0).
    pub mismatch: f64,
    /// Penalty per gap position (typically < 0).
    pub gap: f64,
}

impl Default for AlignmentScoring {
    fn default() -> Self {
        AlignmentScoring {
            matched: 1.0,
            mismatch: -1.0,
            gap: -0.5,
        }
    }
}

/// Reusable DP rows for the alignment kernels: batch scans hand the same
/// scratch to every pair, hoisting the two per-call row allocations out of
/// the hot loop. The scratch carries no state between calls — only
/// capacity — so scratch and non-scratch paths are bit-identical.
#[derive(Debug, Default)]
pub struct AlignScratch {
    prev: Vec<f64>,
    curr: Vec<f64>,
}

/// Hands a thread-local [`AlignScratch`] to `f` (fresh scratch fallback on
/// reentrant use).
pub fn with_align_scratch<R>(f: impl FnOnce(&mut AlignScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<AlignScratch> =
            std::cell::RefCell::new(AlignScratch::default());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut AlignScratch::default()),
    })
}

/// Needleman-Wunsch global alignment score of two token sequences.
pub fn needleman_wunsch<T: PartialEq>(x: &[T], y: &[T], s: AlignmentScoring) -> f64 {
    needleman_wunsch_scratch(x, y, s, &mut AlignScratch::default())
}

/// [`needleman_wunsch`] over caller-provided DP rows (its core).
pub fn needleman_wunsch_scratch<T: PartialEq>(
    x: &[T],
    y: &[T],
    s: AlignmentScoring,
    scratch: &mut AlignScratch,
) -> f64 {
    // Two-row DP; `w = [prev[j], prev[j+1]]` via `windows(2)` and
    // `curr.last()` is the cell to the left, so no subscript arithmetic.
    let AlignScratch { prev, curr } = scratch;
    prev.clear();
    prev.extend((0..=y.len()).map(|j| j as f64 * s.gap));
    for (i, tx) in x.iter().enumerate() {
        curr.clear();
        curr.push((i + 1) as f64 * s.gap);
        for (ty, w) in y.iter().zip(prev.windows(2)) {
            let m = if tx == ty { s.matched } else { s.mismatch };
            let left = curr.last().copied().unwrap_or(0.0);
            curr.push((w[0] + m).max(w[1] + s.gap).max(left + s.gap));
        }
        std::mem::swap(prev, curr);
    }
    prev.last().copied().unwrap_or(0.0)
}

/// Needleman-Wunsch normalized to [0, 1]: score divided by the best
/// possible score (`matched · min(|x|, |y|)` less the unavoidable gap run),
/// clamped at 0. Identical sequences score 1; empty-vs-empty scores 1.
pub fn needleman_wunsch_similarity<T: PartialEq>(x: &[T], y: &[T], s: AlignmentScoring) -> f64 {
    needleman_wunsch_similarity_scratch(x, y, s, &mut AlignScratch::default())
}

/// [`needleman_wunsch_similarity`] over caller-provided DP rows.
pub fn needleman_wunsch_similarity_scratch<T: PartialEq>(
    x: &[T],
    y: &[T],
    s: AlignmentScoring,
    scratch: &mut AlignScratch,
) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 1.0;
    }
    let common = x.len().min(y.len()) as f64;
    let overhang = (x.len().max(y.len()) - x.len().min(y.len())) as f64;
    let best = common * s.matched + overhang * s.gap;
    if best <= 0.0 {
        return 0.0;
    }
    (needleman_wunsch_scratch(x, y, s, scratch) / best).clamp(0.0, 1.0)
}

/// Smith-Waterman local alignment score: the best-scoring *subsequence*
/// alignment (never negative).
pub fn smith_waterman<T: PartialEq>(x: &[T], y: &[T], s: AlignmentScoring) -> f64 {
    smith_waterman_scratch(x, y, s, &mut AlignScratch::default())
}

/// [`smith_waterman`] over caller-provided DP rows (its core).
pub fn smith_waterman_scratch<T: PartialEq>(
    x: &[T],
    y: &[T],
    s: AlignmentScoring,
    scratch: &mut AlignScratch,
) -> f64 {
    let mut best = 0.0_f64;
    let AlignScratch { prev, curr } = scratch;
    prev.clear();
    prev.resize(y.len() + 1, 0.0_f64);
    for tx in x {
        curr.clear();
        curr.push(0.0);
        for (ty, w) in y.iter().zip(prev.windows(2)) {
            let m = if tx == ty { s.matched } else { s.mismatch };
            let left = curr.last().copied().unwrap_or(0.0);
            let cell = (w[0] + m).max(w[1] + s.gap).max(left + s.gap).max(0.0);
            best = best.max(cell);
            curr.push(cell);
        }
        std::mem::swap(prev, curr);
    }
    best
}

/// Smith-Waterman normalized to [0, 1] by the best achievable local score
/// (`matched · min(|x|, |y|)`).
pub fn smith_waterman_similarity<T: PartialEq>(x: &[T], y: &[T], s: AlignmentScoring) -> f64 {
    smith_waterman_similarity_scratch(x, y, s, &mut AlignScratch::default())
}

/// [`smith_waterman_similarity`] over caller-provided DP rows.
pub fn smith_waterman_similarity_scratch<T: PartialEq>(
    x: &[T],
    y: &[T],
    s: AlignmentScoring,
    scratch: &mut AlignScratch,
) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 1.0;
    }
    let best = x.len().min(y.len()) as f64 * s.matched;
    if best <= 0.0 {
        return 0.0;
    }
    (smith_waterman_scratch(x, y, s, scratch) / best).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn nw_identical_sequences_score_max() {
        let x = toks("similar");
        let s = AlignmentScoring::default();
        assert_eq!(needleman_wunsch(&x, &x, s), 7.0);
        assert_eq!(needleman_wunsch_similarity(&x, &x, s), 1.0);
    }

    #[test]
    fn nw_prefers_gaps_over_mismatches_when_cheaper() {
        let s = AlignmentScoring {
            matched: 1.0,
            mismatch: -2.0,
            gap: -0.5,
        };
        // "ab" vs "axb": insert a gap (−0.5) rather than mismatch.
        let score = needleman_wunsch(&toks("ab"), &toks("axb"), s);
        assert_eq!(score, 1.0 + 1.0 - 0.5);
    }

    #[test]
    fn nw_empty_cases() {
        let s = AlignmentScoring::default();
        let empty: Vec<char> = vec![];
        assert_eq!(needleman_wunsch(&empty, &toks("abc"), s), -1.5);
        assert_eq!(needleman_wunsch_similarity(&empty, &empty, s), 1.0);
        assert_eq!(needleman_wunsch_similarity(&empty, &toks("abc"), s), 0.0);
    }

    #[test]
    fn sw_finds_local_matches_in_noise() {
        let s = AlignmentScoring::default();
        // The shared core "taxonomy" dominates unrelated flanks.
        let x = toks("xxxtaxonomyyyy");
        let y = toks("qqtaxonomyzz");
        assert_eq!(smith_waterman(&x, &y, s), 8.0); // |"taxonomy"| = 8
        let sim = smith_waterman_similarity(&x, &y, s);
        assert!(sim > 0.6 && sim <= 1.0);
    }

    #[test]
    fn sw_never_negative_and_zero_for_disjoint() {
        let s = AlignmentScoring::default();
        assert_eq!(smith_waterman(&toks("abc"), &toks("xyz"), s), 0.0);
        assert_eq!(
            smith_waterman_similarity(&toks("abc"), &toks("xyz"), s),
            0.0
        );
    }

    #[test]
    fn both_are_symmetric() {
        let s = AlignmentScoring::default();
        let x = toks("professor");
        let y = toks("professional");
        assert_eq!(needleman_wunsch(&x, &y, s), needleman_wunsch(&y, &x, s));
        assert_eq!(smith_waterman(&x, &y, s), smith_waterman(&y, &x, s));
    }

    #[test]
    fn local_beats_global_on_embedded_similarity() {
        let s = AlignmentScoring::default();
        let x = toks("aaaaacoreaaaaa");
        let y = toks("zzzzzcorezzzzz");
        assert!(smith_waterman_similarity(&x, &y, s) > needleman_wunsch_similarity(&x, &y, s));
    }

    #[test]
    fn works_on_string_tokens_too() {
        let s = AlignmentScoring::default();
        let x = ["Thing", "Person", "Professor"];
        let y = ["Thing", "Person", "Student"];
        assert_eq!(needleman_wunsch(&x, &y, s), 1.0 + 1.0 - 1.0);
        assert_eq!(smith_waterman(&x, &y, s), 2.0);
    }
}

//! # sst-simpack — the SimPack similarity-measure library in Rust
//!
//! SimPack (Bernstein et al. 2005) is the generic similarity library the
//! SOQA-SimPack Toolkit builds on. This crate reimplements its measure
//! families over abstract inputs, so it has no dependency on SOQA — the
//! toolkit's `SOQAWrapper for SimPack` equivalent lives in `sst-core` and
//! feeds ontology data into these functions:
//!
//! * [`vector`] — cosine, extended Jaccard, overlap, Dice over feature sets
//!   and weighted sparse vectors (paper Eq. 1–3).
//! * [`dense`] — fixed-dimension embedding kernels (dot, norms, shifted
//!   unit cosine) shared by the toolkit's exact and approximate top-k
//!   retrieval paths.
//! * [`string`] — character-level Levenshtein plus the announced
//!   SecondString/SimMetrics extensions (Jaro, Jaro-Winkler, q-gram,
//!   Monge-Elkan).
//! * [`sequence`] — token-sequence edit distance with a validated cost
//!   model and worst-case normalization (Eq. 4).
//! * [`graph`] — shortest-path, normalized edge counting (Eq. 5), and
//!   Wu-Palmer conceptual similarity (Eq. 6) over specialization DAGs.
//! * [`ic`] — Resnik (Eq. 7), Lin (Eq. 8), and Jiang-Conrath over
//!   instance-corpus or subclass-count probabilities.
//! * [`tree`] — Zhang-Shasha tree edit distance (the paper's future-work
//!   "measures for trees").
//! * [`measure`] — the measure catalogue with normalization metadata.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod align;
pub mod combine;
pub mod dense;
pub mod graph;
pub mod ic;
pub mod measure;
pub mod myers;
pub mod sequence;
pub mod string;
pub mod tree;
pub mod vector;

pub use align::{
    needleman_wunsch, needleman_wunsch_scratch, needleman_wunsch_similarity,
    needleman_wunsch_similarity_scratch, smith_waterman, smith_waterman_scratch,
    smith_waterman_similarity, smith_waterman_similarity_scratch, with_align_scratch, AlignScratch,
    AlignmentScoring,
};
pub use combine::{Amalgamation, Combiner};
pub use dense::{
    dense_cosine, dense_dot, dense_is_zero, dense_norm, dense_normalize, dense_unit_similarity,
};
pub use graph::{
    edge_similarity, edge_similarity_compact, edge_similarity_from, mrca_compact,
    path_via_common_ancestor_compact, shortest_path_similarity, shortest_path_similarity_from,
    wu_palmer_similarity, wu_palmer_similarity_compact, wu_palmer_similarity_from,
    wu_palmer_similarity_rooted, wu_palmer_similarity_rooted_compact,
    wu_palmer_similarity_rooted_from, AncestorList, DepthTable, NodeId, SourceTables, Taxonomy,
};
pub use ic::{
    best_subsumer_compact, jiang_conrath_similarity, jiang_conrath_similarity_compact,
    jiang_conrath_similarity_from, lin_similarity, lin_similarity_compact, lin_similarity_from,
    resnik_similarity, resnik_similarity_compact, resnik_similarity_from, InformationContent,
    ProbabilityMode,
};
pub use measure::{descriptor, MeasureDescriptor, MeasureKind, CATALOG};
pub use myers::{
    myers_distance_chars, myers_distance_ids, myers_sequence_similarity_from,
    myers_similarity_chars_from, with_myers_scratch, MyersPattern, MyersScratch,
};
pub use sequence::{sequence_similarity, xform, xform_worst_case, CostModel};
pub use string::{
    jaro, jaro_chars, jaro_chars_masked, jaro_chars_scratch, jaro_fast, jaro_winkler,
    jaro_winkler_chars, jaro_winkler_fast, levenshtein_distance, levenshtein_distance_chars,
    levenshtein_distance_chars_scratch, levenshtein_similarity, levenshtein_similarity_chars,
    monge_elkan, qgram, qgram_from, qgram_packed_from, with_jaro_scratch, JaroMask, JaroScratch,
    LevenshteinScratch, QGramPacked, QGramProfile,
};
pub use tree::{
    tree_edit_distance, tree_edit_distance_zs, tree_edit_distance_zs_scratch, tree_similarity,
    tree_similarity_zs, tree_similarity_zs_scratch, with_zs_scratch, LabeledTree, ZsScratch,
    ZsTree,
};
pub use vector::{
    cosine, cosine_from_counts, cosine_weighted, dice, dice_from_counts, features, jaccard,
    jaccard_from_counts, jaccard_weighted, overlap, overlap_from_counts, overlap_weighted,
    FeatureSet, InternedFeatures, SparseVector,
};

//! Bit-parallel Levenshtein distance (Myers 1999, multi-block per Hyyrö
//! 2003): the edit-distance column update collapses into a handful of
//! word-wide boolean operations, one u64 block per 64 pattern symbols.
//!
//! The core works over `u32` symbols so the same kernel serves both
//! character strings (chars cast to their scalar values) and interned
//! token sequences. The distance is an exact integer — identical to the
//! classic dynamic program — so the similarity wrappers reproduce the DP
//! entry points bit for bit by reusing their final float expressions.
//!
//! A pattern is preprocessed once ([`MyersPattern`]) into per-symbol
//! per-block bit masks (`Peq`), then streamed against any number of texts.
//! Batch scans build one pattern per concept name and amortize the
//! preprocessing across the whole matrix row.

/// Horizontal input delta at the bottom of the first block: the implicit
/// row 0 of the DP matrix (`D[0][j] = j`) increases by one per text column.
const HIN_TOP: i32 = 1;

/// Preprocessed pattern: sorted distinct symbols with one bit mask per
/// 64-row block (`Peq[s][b]` has bit `i % 64` set iff `pattern[i] == s`
/// and `i / 64 == b`).
#[derive(Debug, Clone, Default)]
pub struct MyersPattern {
    /// Sorted distinct symbols, for binary-search lookup per text column.
    symbols: Vec<u32>,
    /// `symbols.len() * blocks` masks, row-major per symbol.
    masks: Vec<u64>,
    /// Pattern length `m` (rows of the DP matrix).
    len: usize,
    /// `ceil(m / 64)` — 0 for the empty pattern.
    blocks: usize,
}

impl MyersPattern {
    /// Preprocesses a symbol sequence.
    pub fn new(pattern: &[u32]) -> MyersPattern {
        let len = pattern.len();
        let blocks = len.div_ceil(64);
        let mut symbols: Vec<u32> = pattern.to_vec();
        symbols.sort_unstable();
        symbols.dedup();
        let mut masks = vec![0u64; symbols.len() * blocks];
        for (i, &c) in pattern.iter().enumerate() {
            if let Ok(s) = symbols.binary_search(&c) {
                let block = i / 64;
                let bit = i % 64;
                let idx = s * blocks + block;
                if let Some(mask) = masks.get_mut(idx) {
                    *mask |= 1u64 << bit;
                }
            }
        }
        MyersPattern {
            symbols,
            masks,
            len,
            blocks,
        }
    }

    /// Preprocesses a character string (chars cast to `u32` symbols).
    pub fn from_chars(pattern: &[char]) -> MyersPattern {
        let ids: Vec<u32> = pattern.iter().map(|&c| c as u32).collect();
        MyersPattern::new(&ids)
    }

    /// Pattern length `m`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pattern is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `Peq` block row of one symbol (empty slice when the symbol does
    /// not occur in the pattern).
    fn peq(&self, c: u32) -> &[u64] {
        match self.symbols.binary_search(&c) {
            Ok(s) => {
                let start = s * self.blocks;
                let end = start + self.blocks;
                self.masks.get(start..end).unwrap_or(&[])
            }
            Err(_) => &[],
        }
    }

    /// Single-block `Peq` mask of one symbol (pattern length ≤ 64).
    fn peq1(&self, c: u32) -> u64 {
        match self.symbols.binary_search(&c) {
            Ok(s) => self.masks.get(s).copied().unwrap_or(0),
            Err(_) => 0,
        }
    }

    /// Exact Levenshtein distance to `text`, reusing `scratch` for the
    /// vertical delta vectors of the multi-block path.
    pub fn distance_ids(&self, text: &[u32], scratch: &mut MyersScratch) -> usize {
        self.distance_iter(text.iter().copied(), text.len(), scratch)
    }

    /// Exact Levenshtein distance to a character text (chars cast to
    /// symbols, matching [`MyersPattern::from_chars`]).
    pub fn distance_chars(&self, text: &[char], scratch: &mut MyersScratch) -> usize {
        self.distance_iter(text.iter().map(|&c| c as u32), text.len(), scratch)
    }

    #[inline]
    fn distance_iter(
        &self,
        text: impl Iterator<Item = u32>,
        text_len: usize,
        scratch: &mut MyersScratch,
    ) -> usize {
        if self.len == 0 {
            return text_len;
        }
        if text_len == 0 {
            return self.len;
        }
        if self.blocks == 1 {
            self.distance_single_block(text)
        } else {
            self.distance_multi_block(text, scratch)
        }
    }

    /// Myers' original single-word algorithm (m ≤ 64). The `| 1` on the
    /// shifted `Ph` encodes the +1 horizontal delta entering each column at
    /// row 0.
    #[inline]
    fn distance_single_block(&self, text: impl Iterator<Item = u32>) -> usize {
        let m = self.len;
        let shift = m - 1;
        let last_bit = 1u64 << shift;
        let mut pv = !0u64;
        let mut mv = 0u64;
        let mut score = m;
        for c in text {
            let eq = self.peq1(c);
            let xv = eq | mv;
            let xh = ((eq & pv).wrapping_add(pv) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & last_bit != 0 {
                score += 1;
            } else if mh & last_bit != 0 {
                score -= 1;
            }
            let ph = (ph << 1) | 1;
            let mh = mh << 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
        }
        score
    }

    /// Hyyrö's multi-block extension (m > 64): blocks are processed bottom
    /// to top per column, chaining each block's horizontal output delta
    /// into the next. The score is read at bit `(m − 1) % 64` of the top
    /// block's pre-shift `Ph`/`Mh`; bits above row `m − 1` stay garbage-free
    /// because `Peq` is zero there and carries only propagate upward.
    fn distance_multi_block(
        &self,
        text: impl Iterator<Item = u32>,
        scratch: &mut MyersScratch,
    ) -> usize {
        let m = self.len;
        let blocks = self.blocks;
        let top = blocks - 1;
        let shift = (m - 1) % 64;
        let last_bit = 1u64 << shift;
        scratch.vp.clear();
        scratch.vp.resize(blocks, !0u64);
        scratch.vn.clear();
        scratch.vn.resize(blocks, 0u64);
        let mut score = m;
        for c in text {
            let peq = self.peq(c);
            let mut hin = HIN_TOP;
            for b in 0..blocks {
                let eq0 = peq.get(b).copied().unwrap_or(0);
                let pv = scratch.vp.get(b).copied().unwrap_or(!0u64);
                let mv = scratch.vn.get(b).copied().unwrap_or(0);
                let hin_is_neg = u64::from(hin < 0);
                let xv = eq0 | mv;
                let eq = eq0 | hin_is_neg;
                let xh = ((eq & pv).wrapping_add(pv) ^ pv) | eq;
                let ph = mv | !(xh | pv);
                let mh = pv & xh;
                if b == top {
                    if ph & last_bit != 0 {
                        score += 1;
                    } else if mh & last_bit != 0 {
                        score -= 1;
                    }
                }
                let mut hout = 0i32;
                if ph >> 63 != 0 {
                    hout += 1;
                }
                if mh >> 63 != 0 {
                    hout -= 1;
                }
                let ph = (ph << 1) | u64::from(hin > 0);
                let mh = (mh << 1) | hin_is_neg;
                if let Some(slot) = scratch.vp.get_mut(b) {
                    *slot = mh | !(xv | ph);
                }
                if let Some(slot) = scratch.vn.get_mut(b) {
                    *slot = ph & xv;
                }
                hin = hout;
            }
        }
        score
    }
}

/// Reusable vertical-delta buffers for the multi-block path; hoisted out of
/// the per-pair loop so batch scans allocate once per thread.
#[derive(Debug, Clone, Default)]
pub struct MyersScratch {
    vp: Vec<u64>,
    vn: Vec<u64>,
}

impl MyersScratch {
    pub fn new() -> MyersScratch {
        MyersScratch::default()
    }
}

thread_local! {
    static MYERS_SCRATCH: std::cell::RefCell<MyersScratch> =
        std::cell::RefCell::new(MyersScratch::new());
}

/// Runs `f` with this thread's shared [`MyersScratch`], so batch scans on
/// worker threads reuse one allocation per thread. Falls back to a fresh
/// scratch if the thread-local is already borrowed (reentrant use).
pub fn with_myers_scratch<R>(f: impl FnOnce(&mut MyersScratch) -> R) -> R {
    MYERS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut MyersScratch::new()),
    })
}

/// One-shot distance between two character slices (builds the pattern and
/// scratch internally; batch paths preprocess [`MyersPattern`] instead).
pub fn myers_distance_chars(a: &[char], b: &[char]) -> usize {
    let mut scratch = MyersScratch::new();
    MyersPattern::from_chars(a).distance_chars(b, &mut scratch)
}

/// One-shot distance between two symbol sequences.
pub fn myers_distance_ids(a: &[u32], b: &[u32]) -> usize {
    let mut scratch = MyersScratch::new();
    MyersPattern::new(a).distance_ids(b, &mut scratch)
}

/// [`crate::levenshtein_similarity_chars`] on the bit-parallel core: the
/// distance is the same integer, and this reuses that function's exact
/// final expression (`1 − d / max(|a|, |b|)`), so the two are bit-identical.
pub fn myers_similarity_chars_from(
    pattern: &MyersPattern,
    text: &[char],
    scratch: &mut MyersScratch,
) -> f64 {
    let max_len = pattern.len().max(text.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - pattern.distance_chars(text, scratch) as f64 / max_len as f64
}

/// [`crate::sequence_similarity`] with [`crate::CostModel::UNIT`] on the
/// bit-parallel core. Under unit costs the weighted DP computes the exact
/// integer Levenshtein distance in f64 (small-integer arithmetic is exact),
/// and the worst case is `max(|x|, |y|)` — so feeding the Myers distance
/// through the same normalization expression is bit-identical.
pub fn myers_sequence_similarity_from(
    pattern: &MyersPattern,
    text: &[u32],
    scratch: &mut MyersScratch,
) -> f64 {
    if pattern.is_empty() && text.is_empty() {
        return 1.0;
    }
    let common = pattern.len().min(text.len()) as f64;
    let leftover = if pattern.len() > text.len() {
        (pattern.len() - text.len()) as f64
    } else {
        (text.len() - pattern.len()) as f64
    };
    let worst = common + leftover;
    if worst == 0.0 {
        return 1.0;
    }
    let d = pattern.distance_ids(text, scratch) as f64;
    (1.0 - d / worst).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{sequence_similarity, CostModel};
    use crate::string::{levenshtein_distance_chars, levenshtein_similarity_chars};

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn matches_classic_dp_on_classics() {
        let pairs = [
            ("kitten", "sitting"),
            ("flaw", "lawn"),
            ("", "abc"),
            ("abc", ""),
            ("same", "same"),
            ("zürich", "zurich"),
            ("a", "a"),
            ("a", "b"),
        ];
        for (a, b) in pairs {
            let (ca, cb) = (chars(a), chars(b));
            assert_eq!(
                myers_distance_chars(&ca, &cb),
                levenshtein_distance_chars(&ca, &cb),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn multi_block_boundaries() {
        // Lengths straddling the 64-symbol block boundary.
        for la in [63usize, 64, 65, 127, 128, 129, 200] {
            for lb in [1usize, 63, 64, 65, 130, 256] {
                let a: Vec<char> = (0..la)
                    .map(|i| char::from_u32('a' as u32 + (i % 7) as u32).unwrap_or('a'))
                    .collect();
                let b: Vec<char> = (0..lb)
                    .map(|i| char::from_u32('a' as u32 + (i % 5) as u32).unwrap_or('a'))
                    .collect();
                assert_eq!(
                    myers_distance_chars(&a, &b),
                    levenshtein_distance_chars(&a, &b),
                    "la={la} lb={lb}"
                );
            }
        }
    }

    #[test]
    fn similarity_wrappers_are_bit_identical() {
        let pairs = [("kitten", "sitting"), ("", ""), ("Professor", "Professors")];
        let mut scratch = MyersScratch::new();
        for (a, b) in pairs {
            let (ca, cb) = (chars(a), chars(b));
            let pat = MyersPattern::from_chars(&ca);
            assert_eq!(
                myers_similarity_chars_from(&pat, &cb, &mut scratch).to_bits(),
                levenshtein_similarity_chars(&ca, &cb).to_bits()
            );
            let xa: Vec<u32> = ca.iter().map(|&c| c as u32).collect();
            let xb: Vec<u32> = cb.iter().map(|&c| c as u32).collect();
            let pat = MyersPattern::new(&xa);
            assert_eq!(
                myers_sequence_similarity_from(&pat, &xb, &mut scratch).to_bits(),
                sequence_similarity(&xa, &xb, CostModel::UNIT).to_bits()
            );
        }
    }
}

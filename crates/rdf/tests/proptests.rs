//! Property-based tests for the RDF substrate: serializer/parser roundtrips
//! and store invariants, checked over deterministically sampled random
//! graphs (an inline SplitMix64 sampler stands in for the proptest engine
//! so the suite runs with no external dependencies).

use sst_rdf::{
    parse_ntriples, parse_rdfxml, parse_turtle, write_ntriples, write_rdfxml, write_turtle,
};
use sst_rdf::{Graph, Iri, Literal, Term, Triple};

/// Deterministic PRNG (SplitMix64) so failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn ascii_word(&mut self, min: usize, max: usize) -> String {
        let len = min + self.below(max - min + 1);
        (0..len)
            .map(|_| char::from(b'a' + self.below(26) as u8))
            .collect()
    }

    /// Printable-ASCII string including characters that exercise escaping.
    fn printable(&mut self, max: usize) -> String {
        let len = self.below(max + 1);
        (0..len)
            .map(|_| char::from(b' ' + self.below(95) as u8))
            .collect()
    }
}

fn arb_iri(rng: &mut Rng) -> Iri {
    Iri::new(format!("http://example.org/ns#{}", rng.ascii_word(1, 8)))
}

fn arb_literal(rng: &mut Rng) -> Literal {
    match rng.below(3) {
        0 => Literal::plain(rng.printable(20)),
        1 => {
            let lex = rng.printable(20);
            Literal::lang(lex, rng.ascii_word(2, 2))
        }
        _ => {
            let lex = rng.printable(20);
            let dt = arb_iri(rng);
            Literal::typed(lex, dt)
        }
    }
}

fn arb_subject(rng: &mut Rng) -> Term {
    if rng.below(2) == 0 {
        Term::Iri(arb_iri(rng))
    } else {
        Term::blank(rng.ascii_word(1, 7))
    }
}

fn arb_term(rng: &mut Rng) -> Term {
    match rng.below(3) {
        0 => Term::Iri(arb_iri(rng)),
        1 => Term::blank(rng.ascii_word(1, 7)),
        _ => Term::Literal(arb_literal(rng)),
    }
}

fn arb_triple(rng: &mut Rng) -> Triple {
    Triple::new(arb_subject(rng), arb_iri(rng), arb_term(rng))
}

fn arb_graph(rng: &mut Rng) -> Vec<Triple> {
    let n = rng.below(40);
    (0..n).map(|_| arb_triple(rng)).collect()
}

const CASES: u64 = 128;

/// N-Triples write → parse is the identity on graphs.
#[test]
fn ntriples_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let graph: Graph = arb_graph(&mut rng).into_iter().collect();
        let text = write_ntriples(&graph);
        let parsed = parse_ntriples(&text).expect("reparse our own output");
        assert_eq!(graph.len(), parsed.len(), "seed {seed}");
        for t in graph.iter() {
            assert!(parsed.contains(&t), "seed {seed}: missing triple {}", t);
        }
    }
}

/// Turtle write → parse is the identity on graphs.
#[test]
fn turtle_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x0F0F));
        let graph: Graph = arb_graph(&mut rng).into_iter().collect();
        let text = write_turtle(&graph);
        let parsed = parse_turtle(&text, "http://example.org/doc").expect("reparse our own output");
        assert_eq!(graph.len(), parsed.len(), "seed {seed}");
        for t in graph.iter() {
            assert!(parsed.contains(&t), "seed {seed}: missing triple {}", t);
        }
    }
}

/// RDF/XML write → parse is the identity on graphs.
#[test]
fn rdfxml_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0xA5A5));
        let graph: Graph = arb_graph(&mut rng).into_iter().collect();
        let text = write_rdfxml(&graph);
        let parsed = parse_rdfxml(&text, "http://example.org/doc").expect("reparse our own output");
        assert_eq!(graph.len(), parsed.len(), "seed {seed}");
        for t in graph.iter() {
            assert!(parsed.contains(&t), "seed {seed}: missing triple {}", t);
        }
    }
}

/// Insertion is idempotent and `contains` agrees with `matching`.
#[test]
fn graph_insert_contains_consistent() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0x51ED));
        let triples = arb_graph(&mut rng);
        let mut graph = Graph::new();
        for t in &triples {
            graph.insert(t.clone());
        }
        let len = graph.len();
        for t in &triples {
            assert!(!graph.insert(t.clone()), "seed {seed}");
            assert!(graph.contains(t), "seed {seed}");
            assert!(
                !graph
                    .matching(Some(&t.subject), Some(&t.predicate), Some(&t.object))
                    .is_empty(),
                "seed {seed}"
            );
        }
        assert_eq!(graph.len(), len, "seed {seed}");
    }
}

/// Every triple returned by a pattern query actually matches the pattern.
#[test]
fn matching_respects_pattern() {
    for seed in 0..CASES {
        let mut rng = Rng(seed.wrapping_mul(0xC0DE));
        let graph: Graph = arb_graph(&mut rng).into_iter().collect();
        let probe = arb_triple(&mut rng);
        for t in graph.matching(None, Some(&probe.predicate), None) {
            assert_eq!(&t.predicate, &probe.predicate, "seed {seed}");
        }
        for t in graph.matching(Some(&probe.subject), None, None) {
            assert_eq!(&t.subject, &probe.subject, "seed {seed}");
        }
        for t in graph.matching(None, None, Some(&probe.object)) {
            assert_eq!(&t.object, &probe.object, "seed {seed}");
        }
    }
}

//! Property-based tests for the RDF substrate: serializer/parser roundtrips
//! and store invariants.

use proptest::prelude::*;
use sst_rdf::{parse_ntriples, parse_rdfxml, parse_turtle, write_ntriples, write_rdfxml, write_turtle};
use sst_rdf::{Graph, Iri, Literal, Term, Triple};

fn arb_iri() -> impl Strategy<Value = Iri> {
    "[a-z]{1,8}".prop_map(|s| Iri::new(format!("http://example.org/ns#{s}")))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    // Lexical forms with characters that exercise escaping.
    fn lexical() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[ -~]{0,20}").unwrap()
    }
    prop_oneof![
        lexical().prop_map(Literal::plain),
        (lexical(), "[a-z]{2}").prop_map(|(l, t)| Literal::lang(l, t)),
        (lexical(), arb_iri()).prop_map(|(l, d)| Literal::typed(l, d)),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(Term::Iri),
        "[a-z][a-z0-9]{0,6}".prop_map(Term::blank),
        arb_literal().prop_map(Term::Literal),
    ]
}

fn arb_subject() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(Term::Iri),
        "[a-z][a-z0-9]{0,6}".prop_map(Term::blank),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_subject(), arb_iri(), arb_term())
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn arb_graph() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(arb_triple(), 0..40)
}

proptest! {
    /// N-Triples write → parse is the identity on graphs.
    #[test]
    fn ntriples_roundtrip(triples in arb_graph()) {
        let graph: Graph = triples.iter().cloned().collect();
        let text = write_ntriples(&graph);
        let parsed = parse_ntriples(&text).expect("reparse our own output");
        prop_assert_eq!(graph.len(), parsed.len());
        for t in graph.iter() {
            prop_assert!(parsed.contains(&t), "missing triple {}", t);
        }
    }

    /// Turtle write → parse is the identity on graphs.
    #[test]
    fn turtle_roundtrip(triples in arb_graph()) {
        let graph: Graph = triples.iter().cloned().collect();
        let text = write_turtle(&graph);
        let parsed = parse_turtle(&text, "http://example.org/doc")
            .expect("reparse our own output");
        prop_assert_eq!(graph.len(), parsed.len());
        for t in graph.iter() {
            prop_assert!(parsed.contains(&t), "missing triple {}", t);
        }
    }

    /// RDF/XML write → parse is the identity on graphs.
    #[test]
    fn rdfxml_roundtrip(triples in arb_graph()) {
        let graph: Graph = triples.iter().cloned().collect();
        let text = write_rdfxml(&graph);
        let parsed = parse_rdfxml(&text, "http://example.org/doc")
            .expect("reparse our own output");
        prop_assert_eq!(graph.len(), parsed.len());
        for t in graph.iter() {
            prop_assert!(parsed.contains(&t), "missing triple {}", t);
        }
    }

    /// Insertion is idempotent and `contains` agrees with `matching`.
    #[test]
    fn graph_insert_contains_consistent(triples in arb_graph()) {
        let mut graph = Graph::new();
        for t in &triples {
            graph.insert(t.clone());
        }
        let len = graph.len();
        for t in &triples {
            prop_assert!(!graph.insert(t.clone()));
            prop_assert!(graph.contains(t));
            prop_assert!(!graph
                .matching(Some(&t.subject), Some(&t.predicate), Some(&t.object))
                .is_empty());
        }
        prop_assert_eq!(graph.len(), len);
    }

    /// Every triple returned by a pattern query actually matches the pattern.
    #[test]
    fn matching_respects_pattern(triples in arb_graph(), probe in arb_triple()) {
        let graph: Graph = triples.into_iter().collect();
        for t in graph.matching(None, Some(&probe.predicate), None) {
            prop_assert_eq!(&t.predicate, &probe.predicate);
        }
        for t in graph.matching(Some(&probe.subject), None, None) {
            prop_assert_eq!(&t.subject, &probe.subject);
        }
        for t in graph.matching(None, None, Some(&probe.object)) {
            prop_assert_eq!(&t.object, &probe.object);
        }
    }
}

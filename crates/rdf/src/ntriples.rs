//! N-Triples parser and serializer (RDF 1.1 N-Triples, ASCII-escape subset).

use crate::error::{RdfError, Result};
use crate::graph::Graph;
use crate::model::{Iri, Literal, Term, Triple};

/// Parses an N-Triples document.
pub fn parse_ntriples(input: &str) -> Result<Graph> {
    let mut graph = Graph::new();
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cursor = Cursor {
            input: line,
            pos: 0,
            line: line_no,
        };
        let subject = cursor.parse_subject()?;
        cursor.skip_ws();
        let predicate = cursor.parse_iri()?;
        cursor.skip_ws();
        let object = cursor.parse_term()?;
        cursor.skip_ws();
        if !cursor.eat('.') {
            return Err(cursor.err("expected `.` at end of statement"));
        }
        cursor.skip_ws();
        if !cursor.at_end() && !cursor.rest().starts_with('#') {
            return Err(cursor.err("trailing content after `.`"));
        }
        graph.insert(Triple::new(subject, predicate, object));
    }
    Ok(graph)
}

/// Serializes a graph to N-Triples, one statement per line, in index order.
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for triple in graph.iter() {
        out.push_str(&triple.to_string());
        out.push('\n');
    }
    out
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::NTriples {
            message: message.into(),
            line: self.line,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn parse_subject(&mut self) -> Result<Term> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            Some('_') => self.parse_blank(),
            _ => Err(self.err("expected IRI or blank node subject")),
        }
    }

    fn parse_term(&mut self) -> Result<Term> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            Some('_') => self.parse_blank(),
            Some('"') => self.parse_literal(),
            _ => Err(self.err("expected IRI, blank node, or literal")),
        }
    }

    fn parse_iri(&mut self) -> Result<Iri> {
        if !self.eat('<') {
            return Err(self.err("expected `<`"));
        }
        let rest = self.rest();
        let end = rest.find('>').ok_or_else(|| self.err("unterminated IRI"))?;
        let iri = &rest[..end];
        if iri
            .chars()
            .any(|c| c.is_whitespace() || c == '<' || c == '"')
        {
            return Err(RdfError::InvalidIri {
                iri: iri.to_owned(),
            });
        }
        self.pos += end + 1;
        Ok(Iri::new(iri))
    }

    fn parse_blank(&mut self) -> Result<Term> {
        if !self.rest().starts_with("_:") {
            return Err(self.err("expected `_:`"));
        }
        self.pos += 2;
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_' || *c == '-' || *c == '.'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("empty blank node label"));
        }
        let label = &rest[..end];
        self.pos += end;
        Ok(Term::blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term> {
        if !self.eat('"') {
            return Err(self.err("expected `\"`"));
        }
        let mut lexical = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated literal"));
            };
            self.pos += c.len_utf8();
            match c {
                '"' => break,
                '\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += esc.len_utf8();
                    match esc {
                        'n' => lexical.push('\n'),
                        'r' => lexical.push('\r'),
                        't' => lexical.push('\t'),
                        '"' => lexical.push('"'),
                        '\\' => lexical.push('\\'),
                        'u' | 'U' => {
                            let n = if esc == 'u' { 4 } else { 8 };
                            let rest = self.rest();
                            if rest.len() < n {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &rest[..n];
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            lexical.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape out of range"))?,
                            );
                            self.pos += n;
                        }
                        other => return Err(self.err(format!("unknown escape `\\{other}`"))),
                    }
                }
                c => lexical.push(c),
            }
        }
        // Language tag or datatype?
        if self.eat('@') {
            let rest = self.rest();
            let end = rest
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            if end == 0 {
                return Err(self.err("empty language tag"));
            }
            let lang = rest[..end].to_owned();
            self.pos += end;
            return Ok(Term::Literal(Literal::lang(lexical, lang)));
        }
        if self.rest().starts_with("^^") {
            self.pos += 2;
            let dt = self.parse_iri()?;
            return Ok(Term::Literal(Literal::typed(lexical, dt)));
        }
        Ok(Term::Literal(Literal::plain(lexical)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_statements() {
        let g = parse_ntriples(
            "<http://s> <http://p> <http://o> .\n\
             # comment\n\
             <http://s> <http://p> \"lit\"@en .\n\
             _:b1 <http://p> \"4\"^^<http://dt> .\n",
        )
        .expect("parse");
        assert_eq!(g.len(), 3);
        assert!(g.contains(&Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Term::Literal(Literal::lang("lit", "en")),
        )));
        assert!(g.contains(&Triple::new(
            Term::blank("b1"),
            Iri::new("http://p"),
            Term::Literal(Literal::typed("4", Iri::new("http://dt"))),
        )));
    }

    #[test]
    fn decodes_escapes() {
        let g = parse_ntriples(r#"<http://s> <http://p> "a\nb\t\"c\\ A" ."#).expect("parse");
        let lit = g.iter().next().unwrap().object;
        assert_eq!(lit.as_literal().unwrap().lexical, "a\nb\t\"c\\ A");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_ntriples("<http://s> <http://p> <http://o>").is_err()); // no dot
        assert!(parse_ntriples("<http://s> <http://p> .").is_err()); // no object
        assert!(parse_ntriples("\"s\" <http://p> <http://o> .").is_err()); // literal subject
        assert!(parse_ntriples("<http://s> <http://p> \"x .").is_err()); // unterminated
    }

    #[test]
    fn roundtrip() {
        let src = "<http://s> <http://p> \"a\\nb\"@en .\n<http://s> <http://q> _:x .\n";
        let g = parse_ntriples(src).expect("parse");
        let out = write_ntriples(&g);
        let g2 = parse_ntriples(&out).expect("reparse");
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            assert!(g2.contains(&t));
        }
    }

    #[test]
    fn line_numbers_in_errors() {
        let err = parse_ntriples("<http://s> <http://p> <http://o> .\nbad").unwrap_err();
        match err {
            RdfError::NTriples { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! N-Triples parser and serializer (RDF 1.1 N-Triples, ASCII-escape subset).

use sst_limits::{Budget, Limits, Partial};

use crate::error::{RdfError, Result};
use crate::graph::Graph;
use crate::model::{Iri, Literal, Term, Triple};

/// Parses an N-Triples document under [`Limits::default`].
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_ntriples(input: &str) -> Result<Graph> {
    parse_ntriples_with_limits(input, &Limits::default())
}

/// Parses an N-Triples document under an explicit resource [`Limits`]
/// policy; violations surface as [`RdfError::Limit`].
pub fn parse_ntriples_with_limits(input: &str, limits: &Limits) -> Result<Graph> {
    let mut first_err = None;
    let graph = parse_ntriples_inner(input, limits, &mut |err| {
        if first_err.is_none() {
            first_err = Some(err);
        }
        false
    });
    match first_err {
        None => Ok(graph),
        Some(err) => Err(err),
    }
}

/// Parses as much of an N-Triples document as possible. Being
/// line-oriented, the parser resynchronizes at the next line after a bad
/// statement and records one diagnostic per bad line, up to
/// [`Partial::MAX_DIAGNOSTICS`]; a [`RdfError::Limit`] violation stops the
/// whole parse (the budget is document-global).
pub fn parse_ntriples_partial(input: &str, limits: &Limits) -> Partial<Graph, RdfError> {
    let mut errors = Vec::new();
    let graph = parse_ntriples_inner(input, limits, &mut |err| {
        let fatal = matches!(err, RdfError::Limit(_));
        errors.push(err);
        !fatal && errors.len() < Partial::<Graph, RdfError>::MAX_DIAGNOSTICS
    });
    Partial {
        value: graph,
        errors,
    }
}

/// Shared driver: `on_error` decides whether to resynchronize at the next
/// line (`true`) or stop (`false`).
fn parse_ntriples_inner(
    input: &str,
    limits: &Limits,
    on_error: &mut dyn FnMut(RdfError) -> bool,
) -> Graph {
    let mut graph = Graph::new();
    let mut budget = Budget::new(limits);
    if let Err(violation) = budget.check_input(input.len(), "ntriples document") {
        on_error(violation.into());
        return graph;
    }
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        if let Err(violation) = budget.charge_steps(raw_line.len() as u64 + 1, "ntriples bytes") {
            on_error(violation.into());
            return graph;
        }
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cursor = Cursor {
            input: line,
            pos: 0,
            line: line_no,
            budget: &budget,
        };
        match cursor.parse_statement() {
            Ok(triple) => {
                if let Err(violation) = budget.item("ntriples triples") {
                    on_error(violation.into());
                    return graph;
                }
                graph.insert(triple);
            }
            Err(err) => {
                if !on_error(err) {
                    return graph;
                }
            }
        }
    }
    graph
}

/// Serializes a graph to N-Triples, one statement per line, in index order.
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for triple in graph.iter() {
        out.push_str(&triple.to_string());
        out.push('\n');
    }
    out
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
    line: u32,
    budget: &'a Budget,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::NTriples {
            message: message.into(),
            line: self.line,
        }
    }

    fn parse_statement(&mut self) -> Result<Triple> {
        let subject = self.parse_subject()?;
        self.skip_ws();
        let predicate = self.parse_iri()?;
        self.skip_ws();
        let object = self.parse_term()?;
        self.skip_ws();
        if !self.eat('.') {
            return Err(self.err("expected `.` at end of statement"));
        }
        self.skip_ws();
        if !self.at_end() && !self.rest().starts_with('#') {
            return Err(self.err("trailing content after `.`"));
        }
        Ok(Triple::new(subject, predicate, object))
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn parse_subject(&mut self) -> Result<Term> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            Some('_') => self.parse_blank(),
            _ => Err(self.err("expected IRI or blank node subject")),
        }
    }

    fn parse_term(&mut self) -> Result<Term> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            Some('_') => self.parse_blank(),
            Some('"') => self.parse_literal(),
            _ => Err(self.err("expected IRI, blank node, or literal")),
        }
    }

    fn parse_iri(&mut self) -> Result<Iri> {
        if !self.eat('<') {
            return Err(self.err("expected `<`"));
        }
        let rest = self.rest();
        let end = rest.find('>').ok_or_else(|| self.err("unterminated IRI"))?;
        self.budget.check_literal(end, "ntriples IRI")?;
        let iri = &rest[..end];
        if iri
            .chars()
            .any(|c| c.is_whitespace() || c == '<' || c == '"')
        {
            return Err(RdfError::InvalidIri {
                iri: iri.to_owned(),
            });
        }
        self.pos += end + 1;
        Ok(Iri::new(iri))
    }

    fn parse_blank(&mut self) -> Result<Term> {
        if !self.rest().starts_with("_:") {
            return Err(self.err("expected `_:`"));
        }
        self.pos += 2;
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_' || *c == '-' || *c == '.'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("empty blank node label"));
        }
        self.budget
            .check_literal(end, "ntriples blank node label")?;
        let label = &rest[..end];
        self.pos += end;
        Ok(Term::blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term> {
        if !self.eat('"') {
            return Err(self.err("expected `\"`"));
        }
        let mut lexical = String::new();
        loop {
            self.budget
                .check_literal(lexical.len(), "ntriples literal")?;
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated literal"));
            };
            self.pos += c.len_utf8();
            match c {
                '"' => break,
                '\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += esc.len_utf8();
                    match esc {
                        'n' => lexical.push('\n'),
                        'r' => lexical.push('\r'),
                        't' => lexical.push('\t'),
                        '"' => lexical.push('"'),
                        '\\' => lexical.push('\\'),
                        'u' | 'U' => {
                            let n = if esc == 'u' { 4 } else { 8 };
                            let rest = self.rest();
                            if rest.len() < n {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &rest[..n];
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            lexical.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape out of range"))?,
                            );
                            self.pos += n;
                        }
                        other => return Err(self.err(format!("unknown escape `\\{other}`"))),
                    }
                }
                c => lexical.push(c),
            }
        }
        // Language tag or datatype?
        if self.eat('@') {
            let rest = self.rest();
            let end = rest
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            if end == 0 {
                return Err(self.err("empty language tag"));
            }
            let lang = rest[..end].to_owned();
            self.pos += end;
            return Ok(Term::Literal(Literal::lang(lexical, lang)));
        }
        if self.rest().starts_with("^^") {
            self.pos += 2;
            let dt = self.parse_iri()?;
            return Ok(Term::Literal(Literal::typed(lexical, dt)));
        }
        Ok(Term::Literal(Literal::plain(lexical)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_statements() {
        let g = parse_ntriples(
            "<http://s> <http://p> <http://o> .\n\
             # comment\n\
             <http://s> <http://p> \"lit\"@en .\n\
             _:b1 <http://p> \"4\"^^<http://dt> .\n",
        )
        .expect("parse");
        assert_eq!(g.len(), 3);
        assert!(g.contains(&Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Term::Literal(Literal::lang("lit", "en")),
        )));
        assert!(g.contains(&Triple::new(
            Term::blank("b1"),
            Iri::new("http://p"),
            Term::Literal(Literal::typed("4", Iri::new("http://dt"))),
        )));
    }

    #[test]
    fn decodes_escapes() {
        let g = parse_ntriples(r#"<http://s> <http://p> "a\nb\t\"c\\ A" ."#).expect("parse");
        let lit = g.iter().next().unwrap().object;
        assert_eq!(lit.as_literal().unwrap().lexical, "a\nb\t\"c\\ A");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_ntriples("<http://s> <http://p> <http://o>").is_err()); // no dot
        assert!(parse_ntriples("<http://s> <http://p> .").is_err()); // no object
        assert!(parse_ntriples("\"s\" <http://p> <http://o> .").is_err()); // literal subject
        assert!(parse_ntriples("<http://s> <http://p> \"x .").is_err()); // unterminated
    }

    #[test]
    fn roundtrip() {
        let src = "<http://s> <http://p> \"a\\nb\"@en .\n<http://s> <http://q> _:x .\n";
        let g = parse_ntriples(src).expect("parse");
        let out = write_ntriples(&g);
        let g2 = parse_ntriples(&out).expect("reparse");
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            assert!(g2.contains(&t));
        }
    }

    #[test]
    fn line_numbers_in_errors() {
        let err = parse_ntriples("<http://s> <http://p> <http://o> .\nbad").unwrap_err();
        match err {
            RdfError::NTriples { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! Well-known vocabulary namespaces and terms used by the ontology wrappers.

/// RDF syntax namespace.
pub const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
/// RDF Schema namespace.
pub const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
/// OWL namespace.
pub const OWL_NS: &str = "http://www.w3.org/2002/07/owl#";
/// DAML+OIL (March 2001) namespace.
pub const DAML_NS: &str = "http://www.daml.org/2001/03/daml+oil#";
/// XML Schema datatypes namespace.
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema#";

/// RDF vocabulary.
pub mod rdf {
    use crate::model::Iri;

    pub fn type_() -> Iri {
        Iri::new(format!("{}type", super::RDF_NS))
    }
    pub fn property() -> Iri {
        Iri::new(format!("{}Property", super::RDF_NS))
    }
    pub fn first() -> Iri {
        Iri::new(format!("{}first", super::RDF_NS))
    }
    pub fn rest() -> Iri {
        Iri::new(format!("{}rest", super::RDF_NS))
    }
    pub fn nil() -> Iri {
        Iri::new(format!("{}nil", super::RDF_NS))
    }
}

/// RDFS vocabulary.
pub mod rdfs {
    use crate::model::Iri;

    pub fn class() -> Iri {
        Iri::new(format!("{}Class", super::RDFS_NS))
    }
    pub fn sub_class_of() -> Iri {
        Iri::new(format!("{}subClassOf", super::RDFS_NS))
    }
    pub fn sub_property_of() -> Iri {
        Iri::new(format!("{}subPropertyOf", super::RDFS_NS))
    }
    pub fn domain() -> Iri {
        Iri::new(format!("{}domain", super::RDFS_NS))
    }
    pub fn range() -> Iri {
        Iri::new(format!("{}range", super::RDFS_NS))
    }
    pub fn label() -> Iri {
        Iri::new(format!("{}label", super::RDFS_NS))
    }
    pub fn comment() -> Iri {
        Iri::new(format!("{}comment", super::RDFS_NS))
    }
}

/// OWL vocabulary.
pub mod owl {
    use crate::model::Iri;

    pub fn class() -> Iri {
        Iri::new(format!("{}Class", super::OWL_NS))
    }
    pub fn thing() -> Iri {
        Iri::new(format!("{}Thing", super::OWL_NS))
    }
    pub fn ontology() -> Iri {
        Iri::new(format!("{}Ontology", super::OWL_NS))
    }
    pub fn object_property() -> Iri {
        Iri::new(format!("{}ObjectProperty", super::OWL_NS))
    }
    pub fn datatype_property() -> Iri {
        Iri::new(format!("{}DatatypeProperty", super::OWL_NS))
    }
    pub fn equivalent_class() -> Iri {
        Iri::new(format!("{}equivalentClass", super::OWL_NS))
    }
    pub fn disjoint_with() -> Iri {
        Iri::new(format!("{}disjointWith", super::OWL_NS))
    }
    pub fn version_info() -> Iri {
        Iri::new(format!("{}versionInfo", super::OWL_NS))
    }
    pub fn inverse_of() -> Iri {
        Iri::new(format!("{}inverseOf", super::OWL_NS))
    }
}

/// DAML+OIL vocabulary.
pub mod daml {
    use crate::model::Iri;

    pub fn class() -> Iri {
        Iri::new(format!("{}Class", super::DAML_NS))
    }
    pub fn thing() -> Iri {
        Iri::new(format!("{}Thing", super::DAML_NS))
    }
    pub fn ontology() -> Iri {
        Iri::new(format!("{}Ontology", super::DAML_NS))
    }
    pub fn object_property() -> Iri {
        Iri::new(format!("{}ObjectProperty", super::DAML_NS))
    }
    pub fn datatype_property() -> Iri {
        Iri::new(format!("{}DatatypeProperty", super::DAML_NS))
    }
    pub fn sub_class_of() -> Iri {
        Iri::new(format!("{}subClassOf", super::DAML_NS))
    }
    pub fn same_class_as() -> Iri {
        Iri::new(format!("{}sameClassAs", super::DAML_NS))
    }
    pub fn version_info() -> Iri {
        Iri::new(format!("{}versionInfo", super::DAML_NS))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn terms_are_well_formed() {
        assert_eq!(
            super::rdf::type_().as_str(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        );
        assert_eq!(super::owl::thing().local_name(), "Thing");
        assert_eq!(super::daml::class().split_local().0, super::DAML_NS);
    }
}

//! A minimal SPARQL SELECT engine over [`Graph`] — the query counterpart a
//! real RDF substrate ships with (the wrappers use the pattern API
//! directly; this engine exists for clients and tests that want to inspect
//! wrapped ontologies at the triple level).
//!
//! Supported grammar:
//!
//! ```text
//! PREFIX ex: <http://example.org/>
//! SELECT ?a ?b WHERE {
//!   ?a rdfs:subClassOf ?b .
//!   ?a rdf:type owl:Class .
//!   FILTER CONTAINS(?a, "Professor")
//! } LIMIT 10
//! ```
//!
//! i.e. basic graph patterns with variable joins, `a` for `rdf:type`,
//! literals, `FILTER CONTAINS`/`FILTER regex`-free equality filters, and
//! `LIMIT`/`DISTINCT`. Evaluation is backtracking join in pattern order
//! with most-selective-first reordering.

use std::collections::HashMap;

use crate::error::{RdfError, Result};
use crate::graph::Graph;
use crate::model::{Literal, Term};
use crate::vocab::RDF_NS;

/// A variable name (without the `?`).
pub type Variable = String;

/// One solution: variable → bound term.
pub type Binding = HashMap<Variable, Term>;

/// Position in a triple pattern: a constant term or a variable.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternTerm {
    Const(Term),
    Var(Variable),
}

impl PatternTerm {
    fn resolve(&self, binding: &Binding) -> Option<Term> {
        match self {
            PatternTerm::Const(t) => Some(t.clone()),
            PatternTerm::Var(v) => binding.get(v).cloned(),
        }
    }
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    pub subject: PatternTerm,
    pub predicate: PatternTerm,
    pub object: PatternTerm,
}

/// `FILTER` constraints.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// `FILTER CONTAINS(?v, "needle")` — case-insensitive containment over
    /// the term's lexical rendering.
    Contains(Variable, String),
    /// `FILTER (?a = ?b)` / `FILTER (?a != ?b)`.
    Compare(Variable, bool, PatternTerm),
}

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    pub variables: Vec<Variable>,
    pub distinct: bool,
    pub patterns: Vec<TriplePattern>,
    pub filters: Vec<Filter>,
    pub limit: Option<usize>,
}

/// Parses and evaluates `query` against `graph`.
pub fn select(graph: &Graph, query: &str) -> Result<Vec<Binding>> {
    let parsed = parse_select(query)?;
    Ok(evaluate(graph, &parsed))
}

// ---- Parser -----------------------------------------------------------

struct Tokens {
    items: Vec<String>,
    pos: usize,
}

impl Tokens {
    fn new(input: &str) -> Tokens {
        // Tokenize on whitespace but keep `{ } . ( ) ,` as separate tokens
        // and quoted strings intact.
        let mut items = Vec::new();
        let mut chars = input.chars().peekable();
        let mut current = String::new();
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    if !current.is_empty() {
                        items.push(std::mem::take(&mut current));
                    }
                    let mut s = String::from("\"");
                    for c in chars.by_ref() {
                        s.push(c);
                        if c == '"' {
                            break;
                        }
                    }
                    items.push(s);
                }
                '{' | '}' | '(' | ')' | ',' => {
                    if !current.is_empty() {
                        items.push(std::mem::take(&mut current));
                    }
                    items.push(c.to_string());
                }
                '.' if current.is_empty() && chars.peek().is_none_or(|n| n.is_whitespace()) => {
                    items.push(".".to_owned());
                }
                c if c.is_whitespace() => {
                    if !current.is_empty() {
                        items.push(std::mem::take(&mut current));
                    }
                }
                c => current.push(c),
            }
        }
        if !current.is_empty() {
            items.push(current);
        }
        Tokens { items, pos: 0 }
    }

    fn peek(&self) -> Option<&str> {
        self.items.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<String> {
        let t = self.items.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &str) -> bool {
        if self
            .peek()
            .is_some_and(|t| t.eq_ignore_ascii_case(expected))
        {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn err(message: impl Into<String>) -> RdfError {
    RdfError::Turtle {
        message: format!("SPARQL: {}", message.into()),
        location: crate::error::Location { line: 1, column: 1 },
    }
}

/// Parses a SELECT query with optional PREFIX declarations.
// lint: allow(limits) non-recursive token scan; allocation is linear in query length
pub fn parse_select(input: &str) -> Result<SelectQuery> {
    let mut tokens = Tokens::new(input);
    let mut prefixes: HashMap<String, String> = HashMap::new();
    // Built-in prefixes for convenience.
    prefixes.insert("rdf".into(), RDF_NS.into());
    prefixes.insert("rdfs".into(), crate::vocab::RDFS_NS.into());
    prefixes.insert("owl".into(), crate::vocab::OWL_NS.into());
    prefixes.insert("xsd".into(), crate::vocab::XSD_NS.into());

    while tokens.eat("PREFIX") {
        let name = tokens.next().ok_or_else(|| err("expected prefix name"))?;
        let prefix = name
            .strip_suffix(':')
            .ok_or_else(|| err("prefix must end with `:`"))?;
        let iri = tokens.next().ok_or_else(|| err("expected prefix IRI"))?;
        let iri = iri
            .strip_prefix('<')
            .and_then(|s| s.strip_suffix('>'))
            .ok_or_else(|| err("prefix IRI must be <...>"))?;
        prefixes.insert(prefix.to_owned(), iri.to_owned());
    }

    if !tokens.eat("SELECT") {
        return Err(err("expected SELECT"));
    }
    let distinct = tokens.eat("DISTINCT");
    let mut variables = Vec::new();
    let select_all = tokens.eat("*");
    while let Some(t) = tokens.peek() {
        if let Some(v) = t.strip_prefix('?') {
            variables.push(v.to_owned());
            tokens.next();
        } else {
            break;
        }
    }
    if variables.is_empty() && !select_all {
        return Err(err("expected at least one ?variable or `*`"));
    }
    if !tokens.eat("WHERE") {
        return Err(err("expected WHERE"));
    }
    if !tokens.eat("{") {
        return Err(err("expected `{`"));
    }

    let term = |tok: &str, prefixes: &HashMap<String, String>| -> Result<PatternTerm> {
        if let Some(v) = tok.strip_prefix('?') {
            return Ok(PatternTerm::Var(v.to_owned()));
        }
        if tok == "a" {
            return Ok(PatternTerm::Const(Term::Iri(crate::vocab::rdf::type_())));
        }
        if let Some(iri) = tok.strip_prefix('<').and_then(|s| s.strip_suffix('>')) {
            return Ok(PatternTerm::Const(Term::iri(iri)));
        }
        if let Some(lit) = tok.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
            return Ok(PatternTerm::Const(Term::Literal(Literal::plain(lit))));
        }
        if let Some((prefix, local)) = tok.split_once(':') {
            let ns = prefixes
                .get(prefix)
                .ok_or_else(|| err(format!("unknown prefix `{prefix}`")))?;
            return Ok(PatternTerm::Const(Term::iri(format!("{ns}{local}"))));
        }
        Err(err(format!("cannot parse term `{tok}`")))
    };

    let mut patterns = Vec::new();
    let mut filters = Vec::new();
    loop {
        match tokens.peek() {
            None => return Err(err("unterminated WHERE block")),
            Some("}") => {
                tokens.next();
                break;
            }
            Some(".") => {
                tokens.next();
            }
            Some(t) if t.eq_ignore_ascii_case("FILTER") => {
                tokens.next();
                filters.push(parse_filter(&mut tokens, &prefixes, &term)?);
            }
            Some(_) => {
                let s = term(
                    &tokens.next().ok_or_else(|| err("expected subject"))?,
                    &prefixes,
                )?;
                let p = term(
                    &tokens.next().ok_or_else(|| err("expected predicate"))?,
                    &prefixes,
                )?;
                let o = term(
                    &tokens.next().ok_or_else(|| err("expected object"))?,
                    &prefixes,
                )?;
                patterns.push(TriplePattern {
                    subject: s,
                    predicate: p,
                    object: o,
                });
            }
        }
    }
    let limit = if tokens.eat("LIMIT") {
        Some(
            tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("expected LIMIT count"))?,
        )
    } else {
        None
    };
    if let Some(trailing) = tokens.peek() {
        return Err(err(format!("trailing token `{trailing}`")));
    }
    if patterns.is_empty() {
        return Err(err("WHERE block has no triple patterns"));
    }

    // SELECT *: project every variable mentioned in the patterns.
    let variables = if select_all {
        let mut vars = Vec::new();
        for p in &patterns {
            for t in [&p.subject, &p.predicate, &p.object] {
                if let PatternTerm::Var(v) = t {
                    if !vars.contains(v) {
                        vars.push(v.clone());
                    }
                }
            }
        }
        vars
    } else {
        variables
    };
    Ok(SelectQuery {
        variables,
        distinct,
        patterns,
        filters,
        limit,
    })
}

fn parse_filter<F>(
    tokens: &mut Tokens,
    prefixes: &HashMap<String, String>,
    term: &F,
) -> Result<Filter>
where
    F: Fn(&str, &HashMap<String, String>) -> Result<PatternTerm>,
{
    // Either `CONTAINS ( ?v , "s" )` or `( ?v = term )` / `( ?v != term )`.
    if tokens
        .peek()
        .is_some_and(|t| t.eq_ignore_ascii_case("CONTAINS"))
    {
        tokens.next();
        if !tokens.eat("(") {
            return Err(err("expected `(` after CONTAINS"));
        }
        let var = tokens
            .next()
            .and_then(|t| t.strip_prefix('?').map(str::to_owned))
            .ok_or_else(|| err("CONTAINS needs a ?variable"))?;
        tokens.eat(",");
        let needle = tokens
            .next()
            .and_then(|t| {
                t.strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .map(str::to_owned)
            })
            .ok_or_else(|| err("CONTAINS needs a quoted string"))?;
        if !tokens.eat(")") {
            return Err(err("expected `)` after CONTAINS"));
        }
        return Ok(Filter::Contains(var, needle));
    }
    if !tokens.eat("(") {
        return Err(err("expected `(` after FILTER"));
    }
    let var = tokens
        .next()
        .and_then(|t| t.strip_prefix('?').map(str::to_owned))
        .ok_or_else(|| err("FILTER comparison needs a ?variable"))?;
    let op = tokens
        .next()
        .ok_or_else(|| err("expected comparison operator"))?;
    let equal = match op.as_str() {
        "=" => true,
        "!=" => false,
        other => return Err(err(format!("unsupported operator `{other}`"))),
    };
    let rhs = term(
        &tokens
            .next()
            .ok_or_else(|| err("expected comparison operand"))?,
        prefixes,
    )?;
    if !tokens.eat(")") {
        return Err(err("expected `)` after FILTER"));
    }
    Ok(Filter::Compare(var, equal, rhs))
}

// ---- Evaluator --------------------------------------------------------

/// Evaluates a parsed query by backtracking join, most selective pattern
/// first.
pub fn evaluate(graph: &Graph, query: &SelectQuery) -> Vec<Binding> {
    // Order patterns by the number of constants (more constants = more
    // selective first). Stable so writing order breaks ties.
    let mut patterns = query.patterns.clone();
    patterns.sort_by_key(|p| {
        let constants = [&p.subject, &p.predicate, &p.object]
            .iter()
            .filter(|t| matches!(t, PatternTerm::Const(_)))
            .count();
        std::cmp::Reverse(constants)
    });

    let mut results = Vec::new();
    let mut binding = Binding::new();
    join(graph, &patterns, 0, &mut binding, query, &mut results);
    if let Some(limit) = query.limit {
        results.truncate(limit);
    }
    results
}

fn join(
    graph: &Graph,
    patterns: &[TriplePattern],
    index: usize,
    binding: &mut Binding,
    query: &SelectQuery,
    results: &mut Vec<Binding>,
) {
    if query
        .limit
        .is_some_and(|l| results.len() >= l && !query.distinct)
    {
        return;
    }
    if index == patterns.len() {
        if !query.filters.iter().all(|f| filter_holds(f, binding)) {
            return;
        }
        let mut projected = Binding::new();
        for v in &query.variables {
            if let Some(t) = binding.get(v) {
                projected.insert(v.clone(), t.clone());
            }
        }
        if query.distinct {
            let key: Vec<Option<&Term>> =
                query.variables.iter().map(|v| projected.get(v)).collect();
            if results
                .iter()
                .any(|r| query.variables.iter().map(|v| r.get(v)).collect::<Vec<_>>() == key)
            {
                return;
            }
        }
        results.push(projected);
        return;
    }
    let p = &patterns[index];
    let s = p.subject.resolve(binding);
    let pr = p.predicate.resolve(binding);
    let o = p.object.resolve(binding);
    let pred_iri = match &pr {
        Some(Term::Iri(iri)) => Some(iri.clone()),
        Some(_) => return, // predicate bound to a non-IRI: no matches
        None => None,
    };
    let matches = graph.matching(s.as_ref(), pred_iri.as_ref(), o.as_ref());
    for triple in matches {
        let mut added: Vec<Variable> = Vec::new();
        let mut ok = true;
        for (pt, actual) in [
            (&p.subject, triple.subject.clone()),
            (&p.predicate, Term::Iri(triple.predicate.clone())),
            (&p.object, triple.object.clone()),
        ] {
            if let PatternTerm::Var(v) = pt {
                match binding.get(v) {
                    Some(bound) if *bound != actual => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        binding.insert(v.clone(), actual);
                        added.push(v.clone());
                    }
                }
            }
        }
        if ok {
            join(graph, patterns, index + 1, binding, query, results);
        }
        for v in added {
            binding.remove(&v);
        }
    }
}

fn render(term: &Term) -> String {
    match term {
        Term::Iri(iri) => iri.as_str().to_owned(),
        Term::Blank(b) => format!("_:{}", b.0),
        Term::Literal(l) => l.lexical.clone(),
    }
}

fn filter_holds(filter: &Filter, binding: &Binding) -> bool {
    match filter {
        Filter::Contains(var, needle) => binding
            .get(var)
            .is_some_and(|t| render(t).to_lowercase().contains(&needle.to_lowercase())),
        Filter::Compare(var, equal, rhs) => {
            let Some(lhs) = binding.get(var) else {
                return false;
            };
            let rhs = match rhs {
                PatternTerm::Const(t) => t.clone(),
                PatternTerm::Var(v) => match binding.get(v) {
                    Some(t) => t.clone(),
                    None => return false,
                },
            };
            (*lhs == rhs) == *equal
        }
    }
}

/// Convenience: renders solutions as a list of `var=value` strings per row
/// (for shells and debugging).
pub fn render_solutions(query: &SelectQuery, solutions: &[Binding]) -> String {
    let mut out = String::new();
    for binding in solutions {
        let row: Vec<String> = query
            .variables
            .iter()
            .map(|v| {
                format!(
                    "?{v}={}",
                    binding.get(v).map(render).unwrap_or_else(|| "∅".to_owned())
                )
            })
            .collect();
        out.push_str(&row.join("  "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle::parse_turtle;

    fn graph() -> Graph {
        parse_turtle(
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             @prefix owl: <http://www.w3.org/2002/07/owl#> .\n\
             @prefix ex: <http://e/#> .\n\
             ex:Person a owl:Class .\n\
             ex:Student a owl:Class ; rdfs:subClassOf ex:Person .\n\
             ex:Professor a owl:Class ; rdfs:subClassOf ex:Person ;\n\
                          rdfs:comment \"teaches and researches\" .\n\
             ex:alice a ex:Student ; ex:name \"Alice\" .\n",
            "http://e/",
        )
        .expect("turtle")
    }

    #[test]
    fn single_pattern_query() {
        let g = graph();
        let rows = select(&g, "SELECT ?c WHERE { ?c a owl:Class . }").expect("query");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn join_across_patterns() {
        let g = graph();
        let rows = select(
            &g,
            "PREFIX ex: <http://e/#>\n\
             SELECT ?sub ?sup WHERE { ?sub rdfs:subClassOf ?sup . ?sub a owl:Class . }",
        )
        .expect("query");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(render(&row["sup"]), "http://e/#Person");
        }
    }

    #[test]
    fn variable_join_through_instances() {
        let g = graph();
        let rows = select(
            &g,
            "PREFIX ex: <http://e/#>\n\
             SELECT ?who ?class WHERE { ?who a ?class . ?class rdfs:subClassOf ex:Person . }",
        )
        .expect("query");
        assert_eq!(rows.len(), 1);
        assert_eq!(render(&rows[0]["who"]), "http://e/#alice");
    }

    #[test]
    fn filter_contains_and_compare() {
        let g = graph();
        let rows = select(
            &g,
            "SELECT ?c WHERE { ?c a owl:Class . FILTER CONTAINS(?c, \"prof\") }",
        )
        .expect("query");
        assert_eq!(rows.len(), 1);
        assert_eq!(render(&rows[0]["c"]), "http://e/#Professor");

        let rows = select(
            &g,
            "PREFIX ex: <http://e/#>\n\
             SELECT ?c WHERE { ?c a owl:Class . FILTER (?c != ex:Person) }",
        )
        .expect("query");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn literals_and_select_star() {
        let g = graph();
        let rows = select(
            &g,
            "PREFIX ex: <http://e/#>\nSELECT * WHERE { ?s ex:name \"Alice\" . }",
        )
        .expect("query");
        assert_eq!(rows.len(), 1);
        assert_eq!(render(&rows[0]["s"]), "http://e/#alice");
    }

    #[test]
    fn distinct_and_limit() {
        let g = graph();
        let rows = select(
            &g,
            "SELECT DISTINCT ?sup WHERE { ?sub rdfs:subClassOf ?sup . }",
        )
        .expect("query");
        assert_eq!(rows.len(), 1);
        let rows = select(&g, "SELECT ?c WHERE { ?c a owl:Class . } LIMIT 2").expect("query");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn unbound_patterns_match_nothing() {
        let g = graph();
        let rows = select(
            &g,
            "PREFIX ex: <http://e/#>\nSELECT ?x WHERE { ?x rdfs:subClassOf ex:Ghost . }",
        )
        .expect("query");
        assert!(rows.is_empty());
    }

    #[test]
    fn parse_errors() {
        let g = graph();
        assert!(select(&g, "SELECT WHERE { ?a ?b ?c }").is_err());
        assert!(select(&g, "SELECT ?a { ?a ?b ?c }").is_err()); // no WHERE
        assert!(select(&g, "SELECT ?a WHERE { ?a ?b }").is_err()); // short pattern
        assert!(select(&g, "SELECT ?a WHERE { ?a nope:x ?c }").is_err()); // bad prefix
        assert!(select(&g, "SELECT ?a WHERE { }").is_err()); // empty
    }

    #[test]
    fn render_solutions_shape() {
        let g = graph();
        let q = parse_select("SELECT ?c WHERE { ?c a owl:Class . } LIMIT 1").unwrap();
        let rows = evaluate(&g, &q);
        let text = render_solutions(&q, &rows);
        assert!(text.starts_with("?c=http://e/#"));
    }
}

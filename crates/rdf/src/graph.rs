//! An indexed, in-memory triple store.
//!
//! Terms are interned to `u32` ids; triples are kept in three sorted indexes
//! (SPO, POS, OSP) so that every single- or double-bound pattern query is a
//! range scan. This mirrors how embedded RDF stores lay out their data and
//! keeps k-most-similar workloads (which hammer `objects_for`) cheap.

use std::collections::{BTreeSet, HashMap};

use crate::model::{Iri, Term, Triple};

/// Interned term id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

/// Interner mapping [`Term`]s to dense ids and back.
#[derive(Debug, Default)]
struct TermInterner {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl TermInterner {
    fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        // lint: allow(panic) interner capacity (2^32 distinct terms) exceeds any real ontology
        let id = TermId(u32::try_from(self.terms.len()).expect("more than 2^32 terms"));
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }
}

/// A queryable set of triples with prefix bookkeeping for serialization.
#[derive(Debug, Default)]
pub struct Graph {
    interner: TermInterner,
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
    /// prefix → namespace IRI, remembered from parsed documents.
    prefixes: Vec<(String, String)>,
    /// Base IRI of the source document, when known.
    base: Option<String>,
}

impl Graph {
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of triples in the graph.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Inserts a triple; returns `false` if it was already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.interner.intern(&triple.subject);
        let p = self.interner.intern(&Term::Iri(triple.predicate));
        let o = self.interner.intern(&triple.object);
        let inserted = self.spo.insert((s, p, o));
        if inserted {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        inserted
    }

    /// True if the exact triple is present.
    pub fn contains(&self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&triple.subject),
            self.interner.get(&Term::Iri(triple.predicate.clone())),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        self.spo.contains(&(s, p, o))
    }

    /// Registers a prefix binding (kept for serializers and debugging).
    pub fn add_prefix(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        let prefix = prefix.into();
        let namespace = namespace.into();
        if !self
            .prefixes
            .iter()
            .any(|(p, n)| *p == prefix && *n == namespace)
        {
            self.prefixes.push((prefix, namespace));
        }
    }

    /// Known prefix bindings.
    pub fn prefixes(&self) -> &[(String, String)] {
        &self.prefixes
    }

    /// Sets the document base IRI.
    pub fn set_base(&mut self, base: impl Into<String>) {
        self.base = Some(base.into());
    }

    /// Document base IRI, when one was declared.
    pub fn base(&self) -> Option<&str> {
        self.base.as_deref()
    }

    fn decode(&self, (s, p, o): (TermId, TermId, TermId)) -> Triple {
        let predicate = match self.interner.resolve(p) {
            Term::Iri(iri) => iri.clone(),
            // `insert` only interns IRI predicates, so this arm is an
            // internal-invariant breach, not a user-input condition.
            // lint: allow(panic) Triple::predicate is typed Iri; no Result channel exists here
            other => unreachable!("predicate interned as non-IRI: {other:?}"),
        };
        Triple {
            subject: self.interner.resolve(s).clone(),
            predicate,
            object: self.interner.resolve(o).clone(),
        }
    }

    /// Iterates over all triples (in SPO index order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&t| self.decode(t))
    }

    /// Pattern query; `None` positions are wildcards.
    pub fn matching(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let s = subject.map(|t| self.interner.get(t));
        let p = predicate.map(|i| self.interner.get(&Term::Iri(i.clone())));
        let o = object.map(|t| self.interner.get(t));
        // Any bound term that is unknown to the interner cannot match.
        if matches!(s, Some(None)) || matches!(p, Some(None)) || matches!(o, Some(None)) {
            return Vec::new();
        }
        let s = s.flatten();
        let p = p.flatten();
        let o = o.flatten();
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![self.decode((s, p, o))]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .range((s, p, TermId(0))..=(s, p, TermId(u32::MAX)))
                .map(|&t| self.decode(t))
                .collect(),
            (Some(s), None, _) => self
                .spo
                .range((s, TermId(0), TermId(0))..=(s, TermId(u32::MAX), TermId(u32::MAX)))
                .filter(|&&(_, _, ot)| o.is_none_or(|want| want == ot))
                .map(|&t| self.decode(t))
                .collect(),
            (None, Some(p), Some(o)) => self
                .pos
                .range((p, o, TermId(0))..=(p, o, TermId(u32::MAX)))
                .map(|&(pp, oo, ss)| self.decode((ss, pp, oo)))
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range((p, TermId(0), TermId(0))..=(p, TermId(u32::MAX), TermId(u32::MAX)))
                .map(|&(pp, oo, ss)| self.decode((ss, pp, oo)))
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range((o, TermId(0), TermId(0))..=(o, TermId(u32::MAX), TermId(u32::MAX)))
                .map(|&(oo, ss, pp)| self.decode((ss, pp, oo)))
                .collect(),
            (None, None, None) => self.iter().collect(),
        }
    }

    /// Objects of all `(subject, predicate, ?)` triples.
    pub fn objects_for(&self, subject: &Term, predicate: &Iri) -> Vec<Term> {
        self.matching(Some(subject), Some(predicate), None)
            .into_iter()
            .map(|t| t.object)
            .collect()
    }

    /// The first object for `(subject, predicate, ?)`, if any.
    pub fn object_for(&self, subject: &Term, predicate: &Iri) -> Option<Term> {
        self.objects_for(subject, predicate).into_iter().next()
    }

    /// Subjects of all `(?, predicate, object)` triples.
    pub fn subjects_for(&self, predicate: &Iri, object: &Term) -> Vec<Term> {
        self.matching(None, Some(predicate), Some(object))
            .into_iter()
            .map(|t| t.subject)
            .collect()
    }

    /// All subjects with `rdf:type == class_iri`.
    pub fn instances_of(&self, class_iri: &Iri) -> Vec<Term> {
        self.subjects_for(&crate::vocab::rdf::type_(), &Term::Iri(class_iri.clone()))
    }

    /// Distinct subjects appearing in the graph, in index order.
    pub fn subjects(&self) -> Vec<Term> {
        let mut last: Option<TermId> = None;
        let mut out = Vec::new();
        for &(s, _, _) in &self.spo {
            if last != Some(s) {
                out.push(self.interner.resolve(s).clone());
                last = Some(s);
            }
        }
        out
    }
}

impl Extend<Triple> for Graph {
    fn extend<T: IntoIterator<Item = Triple>>(&mut self, iter: T) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Literal;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Iri::new(p), Term::iri(o))
    }

    #[test]
    fn insert_is_idempotent() {
        let mut g = Graph::new();
        assert!(g.insert(t("s", "p", "o")));
        assert!(!g.insert(t("s", "p", "o")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn pattern_queries_cover_all_shapes() {
        let mut g = Graph::new();
        g.insert(t("s1", "p1", "o1"));
        g.insert(t("s1", "p1", "o2"));
        g.insert(t("s1", "p2", "o1"));
        g.insert(t("s2", "p1", "o1"));

        assert_eq!(g.matching(None, None, None).len(), 4);
        assert_eq!(g.matching(Some(&Term::iri("s1")), None, None).len(), 3);
        assert_eq!(
            g.matching(Some(&Term::iri("s1")), Some(&Iri::new("p1")), None)
                .len(),
            2
        );
        assert_eq!(
            g.matching(None, Some(&Iri::new("p1")), Some(&Term::iri("o1")))
                .len(),
            2
        );
        assert_eq!(g.matching(None, None, Some(&Term::iri("o1"))).len(), 3);
        assert_eq!(g.matching(None, Some(&Iri::new("p2")), None).len(), 1);
        assert_eq!(
            g.matching(
                Some(&Term::iri("s2")),
                Some(&Iri::new("p1")),
                Some(&Term::iri("o1"))
            )
            .len(),
            1
        );
        assert_eq!(
            g.matching(Some(&Term::iri("s1")), None, Some(&Term::iri("o1")))
                .len(),
            2
        );
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let mut g = Graph::new();
        g.insert(t("s", "p", "o"));
        assert!(g.matching(Some(&Term::iri("nope")), None, None).is_empty());
        assert!(!g.contains(&t("s", "p", "nope")));
    }

    #[test]
    fn literals_are_distinct_terms() {
        let mut g = Graph::new();
        let p = Iri::new("p");
        g.insert(Triple::new(
            Term::iri("s"),
            p.clone(),
            Term::Literal(Literal::plain("x")),
        ));
        g.insert(Triple::new(
            Term::iri("s"),
            p.clone(),
            Term::Literal(Literal::lang("x", "en")),
        ));
        assert_eq!(g.len(), 2);
        assert_eq!(g.objects_for(&Term::iri("s"), &p).len(), 2);
    }

    #[test]
    fn subjects_deduplicates() {
        let mut g = Graph::new();
        g.insert(t("s1", "p1", "o1"));
        g.insert(t("s1", "p2", "o2"));
        g.insert(t("s2", "p1", "o1"));
        assert_eq!(g.subjects().len(), 2);
    }

    #[test]
    fn instances_of_uses_rdf_type() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("alice"),
            crate::vocab::rdf::type_(),
            Term::iri("Person"),
        ));
        assert_eq!(
            g.instances_of(&Iri::new("Person")),
            vec![Term::iri("alice")]
        );
    }
}

//! Lightweight RDFS entailment — the "reasoner" role the paper's wrappers
//! delegate to. Computes the materialization of the RDFS rules ontology
//! tooling actually relies on:
//!
//! * rdfs5/rdfs11 — transitivity of `rdfs:subPropertyOf` / `rdfs:subClassOf`
//! * rdfs9 — type inheritance through `rdfs:subClassOf`
//! * rdfs7 — statement inheritance through `rdfs:subPropertyOf`
//! * rdfs2/rdfs3 — typing from `rdfs:domain` / `rdfs:range`
//!
//! The closure is computed by iterating the rules to a fixpoint, which is
//! exact for these Horn rules.

use crate::graph::Graph;
use crate::model::Triple;
use crate::vocab::{rdf, rdfs};

/// Options controlling which rule groups run.
#[derive(Debug, Clone, Copy)]
pub struct InferenceOptions {
    /// rdfs11 + rdfs9: subclass transitivity and type inheritance.
    pub subclass: bool,
    /// rdfs5 + rdfs7: subproperty transitivity and statement inheritance.
    pub subproperty: bool,
    /// rdfs2 + rdfs3: domain/range typing.
    pub domain_range: bool,
}

impl Default for InferenceOptions {
    fn default() -> Self {
        InferenceOptions {
            subclass: true,
            subproperty: true,
            domain_range: true,
        }
    }
}

/// Returns a new graph containing `graph` plus its RDFS closure under the
/// selected rules.
pub fn rdfs_closure(graph: &Graph, options: InferenceOptions) -> Graph {
    let mut out: Graph = graph.iter().collect();
    for (prefix, ns) in graph.prefixes() {
        out.add_prefix(prefix.clone(), ns.clone());
    }
    if let Some(base) = graph.base() {
        out.set_base(base);
    }

    let sub_class = rdfs::sub_class_of();
    let sub_prop = rdfs::sub_property_of();
    let domain = rdfs::domain();
    let range = rdfs::range();
    let type_ = rdf::type_();

    loop {
        let mut additions: Vec<Triple> = Vec::new();

        if options.subclass {
            // rdfs11: (a ⊑ b), (b ⊑ c) ⇒ (a ⊑ c)
            for t1 in out.matching(None, Some(&sub_class), None) {
                for t2 in out.matching(Some(&t1.object), Some(&sub_class), None) {
                    additions.push(Triple::new(
                        t1.subject.clone(),
                        sub_class.clone(),
                        t2.object,
                    ));
                }
            }
            // rdfs9: (x : a), (a ⊑ b) ⇒ (x : b)
            for t1 in out.matching(None, Some(&type_), None) {
                for t2 in out.matching(Some(&t1.object), Some(&sub_class), None) {
                    additions.push(Triple::new(t1.subject.clone(), type_.clone(), t2.object));
                }
            }
        }
        if options.subproperty {
            // rdfs5: (p ⊑ q), (q ⊑ r) ⇒ (p ⊑ r)
            for t1 in out.matching(None, Some(&sub_prop), None) {
                for t2 in out.matching(Some(&t1.object), Some(&sub_prop), None) {
                    additions.push(Triple::new(t1.subject.clone(), sub_prop.clone(), t2.object));
                }
            }
            // rdfs7: (s p o), (p ⊑ q) ⇒ (s q o)
            for t1 in out.matching(None, Some(&sub_prop), None) {
                let (Some(p), Some(q)) = (t1.subject.as_iri(), t1.object.as_iri()) else {
                    continue;
                };
                for stmt in out.matching(None, Some(p), None) {
                    additions.push(Triple::new(stmt.subject, q.clone(), stmt.object));
                }
            }
        }
        if options.domain_range {
            // rdfs2: (p domain c), (s p o) ⇒ (s : c)
            for t1 in out.matching(None, Some(&domain), None) {
                let Some(p) = t1.subject.as_iri() else {
                    continue;
                };
                for stmt in out.matching(None, Some(p), None) {
                    additions.push(Triple::new(stmt.subject, type_.clone(), t1.object.clone()));
                }
            }
            // rdfs3: (p range c), (s p o), o is a resource ⇒ (o : c)
            for t1 in out.matching(None, Some(&range), None) {
                let Some(p) = t1.subject.as_iri() else {
                    continue;
                };
                for stmt in out.matching(None, Some(p), None) {
                    if stmt.object.is_resource() {
                        additions.push(Triple::new(stmt.object, type_.clone(), t1.object.clone()));
                    }
                }
            }
        }

        let before = out.len();
        for t in additions {
            if t.subject != t.object || t.predicate != sub_class {
                out.insert(t);
            }
        }
        if out.len() == before {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Iri, Term};

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://e/#{s}"))
    }

    fn p(s: &str) -> Iri {
        Iri::new(format!("http://e/#{s}"))
    }

    #[test]
    fn subclass_transitivity_and_type_inheritance() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("Student"),
            rdfs::sub_class_of(),
            iri("Person"),
        ));
        g.insert(Triple::new(
            iri("Person"),
            rdfs::sub_class_of(),
            iri("Agent"),
        ));
        g.insert(Triple::new(iri("alice"), rdf::type_(), iri("Student")));
        let closed = rdfs_closure(&g, InferenceOptions::default());
        assert!(closed.contains(&Triple::new(
            iri("Student"),
            rdfs::sub_class_of(),
            iri("Agent")
        )));
        assert!(closed.contains(&Triple::new(iri("alice"), rdf::type_(), iri("Person"))));
        assert!(closed.contains(&Triple::new(iri("alice"), rdf::type_(), iri("Agent"))));
    }

    #[test]
    fn subproperty_statement_inheritance() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("advises"),
            rdfs::sub_property_of(),
            iri("knows"),
        ));
        g.insert(Triple::new(iri("bob"), p("advises"), iri("alice")));
        let closed = rdfs_closure(&g, InferenceOptions::default());
        assert!(closed.contains(&Triple::new(iri("bob"), p("knows"), iri("alice"))));
    }

    #[test]
    fn domain_and_range_typing() {
        let mut g = Graph::new();
        g.insert(Triple::new(iri("teaches"), rdfs::domain(), iri("Teacher")));
        g.insert(Triple::new(iri("teaches"), rdfs::range(), iri("Course")));
        g.insert(Triple::new(iri("eve"), p("teaches"), iri("db1")));
        g.insert(Triple::new(
            iri("eve"),
            p("teaches"),
            Term::literal("not-a-resource"),
        ));
        let closed = rdfs_closure(&g, InferenceOptions::default());
        assert!(closed.contains(&Triple::new(iri("eve"), rdf::type_(), iri("Teacher"))));
        assert!(closed.contains(&Triple::new(iri("db1"), rdf::type_(), iri("Course"))));
        // Literals never get typed.
        assert!(closed
            .matching(Some(&Term::literal("not-a-resource")), None, None)
            .is_empty());
    }

    #[test]
    fn closure_is_idempotent() {
        let mut g = Graph::new();
        g.insert(Triple::new(iri("A"), rdfs::sub_class_of(), iri("B")));
        g.insert(Triple::new(iri("B"), rdfs::sub_class_of(), iri("C")));
        g.insert(Triple::new(iri("x"), rdf::type_(), iri("A")));
        let once = rdfs_closure(&g, InferenceOptions::default());
        let twice = rdfs_closure(&once, InferenceOptions::default());
        assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn cycles_terminate() {
        let mut g = Graph::new();
        g.insert(Triple::new(iri("A"), rdfs::sub_class_of(), iri("B")));
        g.insert(Triple::new(iri("B"), rdfs::sub_class_of(), iri("A")));
        g.insert(Triple::new(iri("x"), rdf::type_(), iri("A")));
        let closed = rdfs_closure(&g, InferenceOptions::default());
        assert!(closed.contains(&Triple::new(iri("x"), rdf::type_(), iri("B"))));
    }

    #[test]
    fn rule_groups_can_be_disabled() {
        let mut g = Graph::new();
        g.insert(Triple::new(iri("teaches"), rdfs::domain(), iri("Teacher")));
        g.insert(Triple::new(iri("eve"), p("teaches"), iri("db1")));
        let closed = rdfs_closure(
            &g,
            InferenceOptions {
                domain_range: false,
                ..InferenceOptions::default()
            },
        );
        assert!(!closed.contains(&Triple::new(iri("eve"), rdf::type_(), iri("Teacher"))));
    }
}

//! RDF/XML serializer: the counterpart of [`crate::rdfxml::parse_rdfxml`],
//! so graphs can be written back in the format the OWL/DAML wrappers read.
//!
//! Output shape: subjects grouped into node elements (typed node elements
//! when a single `rdf:type` is known and abbreviable), literal properties as
//! text property elements, resource properties via `rdf:resource`.

use std::collections::HashMap;

use crate::graph::Graph;
use crate::model::{Iri, Term, Triple};
use crate::vocab::{rdf, RDF_NS};

fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

/// Splits an IRI into (namespace, local) where the local part is a valid
/// XML name; returns `None` if no usable split exists.
fn qname_split(iri: &Iri) -> Option<(&str, &str)> {
    let (ns, local) = iri.split_local();
    if ns.is_empty() || local.is_empty() {
        return None;
    }
    let mut chars = local.chars();
    let first = chars.next()?;
    if !(first.is_alphabetic() || first == '_') {
        return None;
    }
    if chars.all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.') {
        Some((ns, local))
    } else {
        None
    }
}

/// Serializes `graph` to RDF/XML. Prefixes remembered on the graph are
/// reused; additional namespaces get generated `ns0`, `ns1`, … prefixes.
pub fn write_rdfxml(graph: &Graph) -> String {
    // Collect every namespace we need a prefix for.
    let mut prefixes: HashMap<String, String> = HashMap::new(); // ns → prefix
    prefixes.insert(RDF_NS.to_owned(), "rdf".to_owned());
    for (prefix, ns) in graph.prefixes() {
        if !prefix.is_empty() && !prefixes.contains_key(ns) && prefix != "xml" {
            prefixes.insert(ns.clone(), prefix.clone());
        }
    }
    let mut fresh = 0usize;
    let mut iris: Vec<Iri> = Vec::new();
    for t in graph.iter() {
        iris.push(t.predicate.clone());
        if let Term::Iri(iri) = &t.object {
            iris.push(iri.clone());
        }
        if let Term::Iri(iri) = &t.subject {
            iris.push(iri.clone());
        }
    }
    for iri in &iris {
        if let Some((ns, _)) = qname_split(iri) {
            if !prefixes.contains_key(ns) {
                let taken: Vec<&str> = prefixes.values().map(String::as_str).collect();
                let mut candidate = format!("ns{fresh}");
                while taken.contains(&candidate.as_str()) {
                    fresh += 1;
                    candidate = format!("ns{fresh}");
                }
                fresh += 1;
                prefixes.insert(ns.to_owned(), candidate);
            }
        }
    }

    let qname = |iri: &Iri| -> Option<String> {
        let (ns, local) = qname_split(iri)?;
        Some(format!("{}:{local}", prefixes.get(ns)?))
    };

    // Group triples by subject; pull out a single rdf:type for typed node
    // elements.
    let type_iri = rdf::type_();
    let mut by_subject: Vec<(Term, Vec<Triple>)> = Vec::new();
    for t in graph.iter() {
        match by_subject.last_mut() {
            Some((s, triples)) if *s == t.subject => triples.push(t),
            _ => by_subject.push((t.subject.clone(), vec![t])),
        }
    }

    let mut out = String::from("<?xml version=\"1.0\"?>\n<rdf:RDF");
    let mut ns_sorted: Vec<(&String, &String)> = prefixes.iter().collect();
    ns_sorted.sort_by_key(|(_, p)| (*p).clone());
    for (ns, prefix) in ns_sorted {
        out.push_str(&format!(
            "\n         xmlns:{prefix}=\"{}\"",
            escape_attr(ns)
        ));
    }
    if let Some(base) = graph.base() {
        out.push_str(&format!("\n         xml:base=\"{}\"", escape_attr(base)));
    }
    out.push_str(">\n");

    for (subject, mut triples) in by_subject {
        // A literal subject is not writable RDF/XML; skip the group
        // rather than abort the whole serialisation.
        if matches!(subject, Term::Literal(_)) {
            continue;
        }
        // Pick a type triple usable as the element name.
        let type_pos = triples.iter().position(|t| {
            t.predicate == type_iri && matches!(&t.object, Term::Iri(i) if qname(i).is_some())
        });
        let element = match type_pos {
            Some(pos) => {
                let t = triples.remove(pos);
                match t.object {
                    // `type_pos` only matches IRI objects with a usable
                    // qname; fall back rather than trust that at a distance.
                    Term::Iri(i) => qname(&i).unwrap_or_else(|| "rdf:Description".to_owned()),
                    _ => "rdf:Description".to_owned(),
                }
            }
            None => "rdf:Description".to_owned(),
        };
        out.push_str(&format!("  <{element}"));
        match &subject {
            Term::Iri(iri) => {
                out.push_str(&format!(" rdf:about=\"{}\"", escape_attr(iri.as_str())))
            }
            Term::Blank(b) => out.push_str(&format!(" rdf:nodeID=\"{}\"", escape_attr(&b.0))),
            Term::Literal(_) => {}
        }
        if triples.is_empty() {
            out.push_str("/>\n");
            continue;
        }
        out.push_str(">\n");
        for t in triples {
            let pred = match qname(&t.predicate) {
                Some(q) => q,
                // Predicates that cannot be abbreviated cannot be written in
                // RDF/XML; fall back to a generated namespace split.
                None => {
                    let (ns, local) = t.predicate.split_local();
                    let _ = (ns, local);
                    continue;
                }
            };
            match &t.object {
                Term::Iri(iri) => out.push_str(&format!(
                    "    <{pred} rdf:resource=\"{}\"/>\n",
                    escape_attr(iri.as_str())
                )),
                Term::Blank(b) => out.push_str(&format!(
                    "    <{pred} rdf:nodeID=\"{}\"/>\n",
                    escape_attr(&b.0)
                )),
                Term::Literal(lit) => {
                    let mut attrs = String::new();
                    if let Some(lang) = &lit.language {
                        attrs.push_str(&format!(" xml:lang=\"{}\"", escape_attr(lang)));
                    } else if let Some(dt) = &lit.datatype {
                        attrs.push_str(&format!(" rdf:datatype=\"{}\"", escape_attr(dt.as_str())));
                    }
                    out.push_str(&format!(
                        "    <{pred}{attrs}>{}</{pred}>\n",
                        escape_text(&lit.lexical)
                    ));
                }
            }
        }
        out.push_str(&format!("  </{element}>\n"));
    }
    out.push_str("</rdf:RDF>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Literal;
    use crate::rdfxml::parse_rdfxml;

    fn roundtrip(graph: &Graph) -> Graph {
        let xml = write_rdfxml(graph);
        parse_rdfxml(&xml, graph.base().unwrap_or("http://example.org/"))
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"))
    }

    fn assert_same(a: &Graph, b: &Graph) {
        assert_eq!(a.len(), b.len(), "triple counts differ");
        for t in a.iter() {
            assert!(b.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn roundtrips_typed_nodes_and_literals() {
        let mut g = Graph::new();
        g.add_prefix("ex", "http://example.org/v#");
        g.set_base("http://example.org/doc");
        let s = Term::iri("http://example.org/v#Person");
        g.insert(Triple::new(
            s.clone(),
            rdf::type_(),
            Term::iri("http://www.w3.org/2002/07/owl#Class"),
        ));
        g.insert(Triple::new(
            s.clone(),
            Iri::new("http://example.org/v#label"),
            Term::Literal(Literal::lang("Person & <friends>", "en")),
        ));
        g.insert(Triple::new(
            s,
            Iri::new("http://example.org/v#age"),
            Term::Literal(Literal::typed(
                "4",
                Iri::new("http://www.w3.org/2001/XMLSchema#int"),
            )),
        ));
        assert_same(&g, &roundtrip(&g));
    }

    #[test]
    fn roundtrips_blank_nodes() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://e/#a"),
            Iri::new("http://e/#knows"),
            Term::blank("b7"),
        ));
        g.insert(Triple::new(
            Term::blank("b7"),
            Iri::new("http://e/#name"),
            Term::literal("anon"),
        ));
        assert_same(&g, &roundtrip(&g));
    }

    #[test]
    fn generates_prefixes_for_unknown_namespaces() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://a/#x"),
            Iri::new("http://b/unseen#p"),
            Term::iri("http://c/more#y"),
        ));
        let xml = write_rdfxml(&g);
        assert!(xml.contains("xmlns:ns"));
        assert_same(&g, &roundtrip(&g));
    }

    #[test]
    fn untyped_subjects_use_rdf_description() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://e/#a"),
            Iri::new("http://e/#p"),
            Term::literal("v"),
        ));
        let xml = write_rdfxml(&g);
        assert!(xml.contains("<rdf:Description rdf:about=\"http://e/#a\">"));
    }

    #[test]
    fn escapes_markup_in_values() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://e/#a"),
            Iri::new("http://e/#doc"),
            Term::literal("a < b & \"c\" > d"),
        ));
        assert_same(&g, &roundtrip(&g));
    }
}

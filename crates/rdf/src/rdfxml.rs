//! RDF/XML parser.
//!
//! Covers the constructs ontology documents actually use: `rdf:RDF` roots,
//! `rdf:Description` and typed node elements, `rdf:about`/`rdf:ID`/
//! `rdf:nodeID`, property attributes, property elements with
//! `rdf:resource`, nested node elements, literal content (with `xml:lang`
//! and `rdf:datatype`), and `rdf:parseType="Resource" | "Collection" |
//! "Literal"`. `xml:base` and `xml:lang` are scoped per element.

use sst_limits::{Budget, Limits, Partial};

use crate::error::{RdfError, Result};
use crate::graph::Graph;
use crate::model::{Iri, Literal, Term, Triple};
use crate::vocab::{rdf, RDF_NS};
use crate::xml::{ExpandedName, NsAttribute, NsEvent, NsReader};

const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// Parses an RDF/XML document into a [`Graph`] under [`Limits::default`].
///
/// `base` is the document base IRI used to resolve relative references;
/// an in-document `xml:base` overrides it.
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_rdfxml(input: &str, base: &str) -> Result<Graph> {
    parse_rdfxml_with_limits(input, base, &Limits::default(), None)
}

/// Like [`parse_rdfxml`], but records throughput into `metrics` when given:
/// `rdf.rdfxml.documents` / `rdf.rdfxml.triples` / `rdf.rdfxml.bytes`
/// counters and the `rdf.rdfxml.parse.latency` histogram.
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_rdfxml_with_metrics(
    input: &str,
    base: &str,
    metrics: Option<&sst_obs::Metrics>,
) -> Result<Graph> {
    parse_rdfxml_with_limits(input, base, &Limits::default(), metrics)
}

/// Parses an RDF/XML document under an explicit resource [`Limits`] policy.
/// The XML layer enforces the input-size, element-nesting, and token-length
/// bounds (bounding this parser's recursion); this layer charges each
/// produced triple. A violation surfaces as [`RdfError::Limit`] and bumps
/// the `rdf.rdfxml.limit.<kind>` counter when `metrics` is given.
pub fn parse_rdfxml_with_limits(
    input: &str,
    base: &str,
    limits: &Limits,
    metrics: Option<&sst_obs::Metrics>,
) -> Result<Graph> {
    match parse_rdfxml_inner(input, base, limits, metrics) {
        (graph, None) => Ok(graph),
        (_, Some(err)) => Err(err),
    }
}

/// Parses as much of an RDF/XML document as possible. The returned
/// [`Partial`] holds every triple inserted before the first error plus that
/// error; a clean parse has an empty `errors` vector.
pub fn parse_rdfxml_partial(
    input: &str,
    base: &str,
    limits: &Limits,
    metrics: Option<&sst_obs::Metrics>,
) -> Partial<Graph, RdfError> {
    match parse_rdfxml_inner(input, base, limits, metrics) {
        (graph, None) => Partial::complete(graph),
        (graph, Some(err)) => Partial::broken(graph, err),
    }
}

fn parse_rdfxml_inner(
    input: &str,
    base: &str,
    limits: &Limits,
    metrics: Option<&sst_obs::Metrics>,
) -> (Graph, Option<RdfError>) {
    let _span = metrics.map(|m| m.span("rdf.rdfxml.parse.latency"));
    let budget = Budget::new(limits);
    if let Err(violation) = budget.check_input(input.len(), "rdfxml document") {
        crate::record_limit_violation(metrics, "rdf.rdfxml", &violation);
        return (Graph::new(), Some(violation.into()));
    }
    let mut parser = RdfXmlParser {
        reader: NsReader::with_limits(input, limits),
        graph: Graph::new(),
        blank_counter: 0,
        budget,
    };
    match parser.parse_document(base) {
        Ok(()) => {
            // Remember prefixes declared on the root element (best effort:
            // scan the first tag textually so serializers can reuse them).
            for (prefix, ns) in scan_root_prefixes(input) {
                parser.graph.add_prefix(prefix, ns);
            }
            parser.graph.set_base(base);
            if let Some(m) = metrics {
                m.inc("rdf.rdfxml.documents");
                m.add("rdf.rdfxml.triples", parser.graph.len() as u64);
                m.add("rdf.rdfxml.bytes", input.len() as u64);
            }
            (parser.graph, None)
        }
        Err(err) => {
            if let RdfError::Limit(violation) = &err {
                crate::record_limit_violation(metrics, "rdf.rdfxml", violation);
            }
            (parser.graph, Some(err))
        }
    }
}

/// Extracts `xmlns` declarations from the document's root element.
fn scan_root_prefixes(input: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Some(start) = input.find("<rdf:RDF").or_else(|| input.find("<RDF")) else {
        return out;
    };
    let Some(end) = input[start..].find('>') else {
        return out;
    };
    let tag = input.get(start..start + end).unwrap_or("");
    let mut rest = tag;
    while let Some(i) = rest.find("xmlns") {
        rest = rest.get(i + 5..).unwrap_or("");
        let prefix = if let Some(stripped) = rest.strip_prefix(':') {
            let eq = match stripped.find('=') {
                Some(e) => e,
                None => break,
            };
            let p = stripped[..eq].trim().to_owned();
            rest = stripped.get(eq + 1..).unwrap_or("");
            p
        } else if rest.starts_with('=') {
            rest = &rest[1..];
            String::new()
        } else {
            continue;
        };
        let rest2 = rest.trim_start();
        let Some(quote) = rest2.chars().next().filter(|c| *c == '"' || *c == '\'') else {
            break;
        };
        let body = &rest2[1..];
        let Some(close) = body.find(quote) else { break };
        out.push((prefix, body[..close].to_owned()));
        rest = body.get(close + 1..).unwrap_or("");
    }
    out
}

/// Resolves `reference` against `base` (RFC 3986, simplified to the cases
/// that occur in ontology documents).
pub fn resolve_iri(base: &str, reference: &str) -> String {
    if reference.is_empty() {
        return base.to_owned();
    }
    // Absolute IRI: has a scheme.
    if let Some(colon) = reference.find(':') {
        let scheme = &reference[..colon];
        if !scheme.is_empty()
            && scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "+-.".contains(c))
            && scheme
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic())
        {
            return reference.to_owned();
        }
    }
    if let Some(frag) = reference.strip_prefix('#') {
        let stem = base.split('#').next().unwrap_or(base);
        return format!("{stem}#{frag}");
    }
    if reference.starts_with("//") {
        let scheme_end = base.find(':').map(|i| i + 1).unwrap_or(0);
        return format!("{}{}", &base[..scheme_end], reference);
    }
    if reference.starts_with('/') {
        // Resolve against the authority.
        if let Some(scheme_end) = base.find("://") {
            let after = base.get(scheme_end + 3..).unwrap_or("");
            let auth_end = after
                .find('/')
                .map(|i| scheme_end + 3 + i)
                .unwrap_or(base.len());
            return format!("{}{}", &base[..auth_end], reference);
        }
        return reference.to_owned();
    }
    // Relative path: replace everything after the last '/'.
    let stem = base.split('#').next().unwrap_or(base);
    match stem.rfind('/') {
        Some(i) => format!("{}{}", &stem[..=i], reference),
        None => reference.to_owned(),
    }
}

struct RdfXmlParser<'a> {
    reader: NsReader<'a>,
    graph: Graph,
    blank_counter: u64,
    budget: Budget,
}

/// Scoped state inherited down the element tree.
#[derive(Clone)]
struct Scope {
    base: String,
    lang: Option<String>,
}

impl<'a> RdfXmlParser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(RdfError::RdfXml {
            message: message.into(),
            location: self.reader.location(),
        })
    }

    fn fresh_blank(&mut self) -> Term {
        self.blank_counter += 1;
        Term::blank(format!("b{}", self.blank_counter))
    }

    fn insert(&mut self, triple: Triple) -> Result<()> {
        self.budget.item("rdfxml triples")?;
        self.graph.insert(triple);
        Ok(())
    }

    fn scoped(&self, parent: &Scope, attributes: &[NsAttribute]) -> Scope {
        let mut scope = parent.clone();
        for attr in attributes {
            if attr.name.namespace.as_deref() == Some(XML_NS) {
                match attr.name.local.as_str() {
                    "base" => scope.base = attr.value.clone(),
                    "lang" => {
                        scope.lang = if attr.value.is_empty() {
                            None
                        } else {
                            Some(attr.value.clone())
                        }
                    }
                    _ => {}
                }
            }
        }
        scope
    }

    fn parse_document(&mut self, base: &str) -> Result<()> {
        let scope = Scope {
            base: base.to_owned(),
            lang: None,
        };
        loop {
            match self.reader.next_event()? {
                NsEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    let scope = self.scoped(&scope, &attributes);
                    if name.is(RDF_NS, "RDF") {
                        if self_closing {
                            return Ok(());
                        }
                        self.parse_node_elements(&scope)?;
                    } else {
                        // A document whose root is a single node element.
                        self.parse_node_element(name, attributes, self_closing, &scope)?;
                    }
                    return self.expect_eof();
                }
                NsEvent::Text(t) if t.trim().is_empty() => continue,
                NsEvent::Text(_) => return self.err("unexpected text before root element"),
                NsEvent::EndElement { .. } => return self.err("unexpected end element"),
                NsEvent::Eof => return self.err("empty document"),
            }
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        loop {
            match self.reader.next_event()? {
                NsEvent::Eof => return Ok(()),
                NsEvent::Text(t) if t.trim().is_empty() => continue,
                _ => return self.err("content after document element"),
            }
        }
    }

    /// Parses children of `rdf:RDF` until its end tag.
    fn parse_node_elements(&mut self, scope: &Scope) -> Result<()> {
        loop {
            match self.reader.next_event()? {
                NsEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    let inner = self.scoped(scope, &attributes);
                    self.parse_node_element(name, attributes, self_closing, &inner)?;
                }
                NsEvent::Text(t) if t.trim().is_empty() => continue,
                NsEvent::Text(_) => return self.err("unexpected text inside rdf:RDF"),
                NsEvent::EndElement { .. } => return Ok(()),
                NsEvent::Eof => return self.err("unexpected end of file inside rdf:RDF"),
            }
        }
    }

    /// Parses one node element whose start tag has been consumed; returns the
    /// subject term it denotes.
    fn parse_node_element(
        &mut self,
        name: ExpandedName,
        attributes: Vec<NsAttribute>,
        self_closing: bool,
        scope: &Scope,
    ) -> Result<Term> {
        let scope = self.scoped(scope, &attributes);
        // Determine the subject.
        let mut subject: Option<Term> = None;
        for attr in &attributes {
            if attr.name.namespace.as_deref() == Some(RDF_NS) {
                match attr.name.local.as_str() {
                    "about" => {
                        subject = Some(Term::iri(resolve_iri(&scope.base, &attr.value)));
                    }
                    "ID" => {
                        subject = Some(Term::iri(resolve_iri(
                            &scope.base,
                            &format!("#{}", attr.value),
                        )));
                    }
                    "nodeID" => subject = Some(Term::blank(attr.value.clone())),
                    _ => {}
                }
            }
        }
        let subject = subject.unwrap_or_else(|| self.fresh_blank());

        // Typed node element ⇒ rdf:type triple.
        if !name.is(RDF_NS, "Description") {
            self.insert(Triple::new(
                subject.clone(),
                rdf::type_(),
                Term::iri(name.as_iri()),
            ))?;
        }

        // Property attributes.
        for attr in &attributes {
            let ns = attr.name.namespace.as_deref();
            if ns == Some(RDF_NS) || ns == Some(XML_NS) || ns.is_none() {
                continue;
            }
            let object = match &scope.lang {
                Some(lang) => Term::Literal(Literal::lang(attr.value.clone(), lang.clone())),
                None => Term::Literal(Literal::plain(attr.value.clone())),
            };
            self.insert(Triple::new(
                subject.clone(),
                Iri::new(attr.name.as_iri()),
                object,
            ))?;
        }

        if self_closing {
            // NsReader emits a synthetic EndElement; consume it.
            match self.reader.next_event()? {
                NsEvent::EndElement { .. } => return Ok(subject),
                _ => return self.err("expected synthetic end element"),
            }
        }
        self.parse_property_elements(&subject, &scope)?;
        Ok(subject)
    }

    /// Parses the property elements of a node until its end tag.
    fn parse_property_elements(&mut self, subject: &Term, scope: &Scope) -> Result<()> {
        loop {
            match self.reader.next_event()? {
                NsEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    self.parse_property_element(subject, name, attributes, self_closing, scope)?;
                }
                NsEvent::Text(t) if t.trim().is_empty() => continue,
                NsEvent::Text(_) => return self.err("unexpected text between property elements"),
                NsEvent::EndElement { .. } => return Ok(()),
                NsEvent::Eof => return self.err("unexpected end of file inside node element"),
            }
        }
    }

    fn parse_property_element(
        &mut self,
        subject: &Term,
        name: ExpandedName,
        attributes: Vec<NsAttribute>,
        self_closing: bool,
        scope: &Scope,
    ) -> Result<()> {
        let scope = self.scoped(&scope.clone(), &attributes);
        let predicate = if name.is(RDF_NS, "li") {
            // We do not track per-subject li counters; collections in the
            // ontologies we parse use parseType="Collection" instead.
            return self.err("rdf:li is not supported; use parseType=\"Collection\"");
        } else {
            Iri::new(name.as_iri())
        };

        let mut resource: Option<Term> = None;
        let mut datatype: Option<Iri> = None;
        let mut parse_type: Option<String> = None;
        let mut prop_attrs: Vec<(Iri, String)> = Vec::new();
        for attr in &attributes {
            match attr.name.namespace.as_deref() {
                Some(RDF_NS) => match attr.name.local.as_str() {
                    "resource" => {
                        resource = Some(Term::iri(resolve_iri(&scope.base, &attr.value)));
                    }
                    "nodeID" => resource = Some(Term::blank(attr.value.clone())),
                    "datatype" => datatype = Some(Iri::new(resolve_iri(&scope.base, &attr.value))),
                    "parseType" => parse_type = Some(attr.value.clone()),
                    // rdf:ID on a property element reifies the statement; the
                    // triple itself is still asserted, which is all we need.
                    "ID" => {}
                    other => {
                        return self.err(format!("unsupported rdf:{other} on property element"))
                    }
                },
                Some(XML_NS) => {}
                Some(_) => prop_attrs.push((Iri::new(attr.name.as_iri()), attr.value.clone())),
                None => {}
            }
        }

        match parse_type.as_deref() {
            Some("Resource") => {
                let node = self.fresh_blank();
                self.insert(Triple::new(subject.clone(), predicate, node.clone()))?;
                if self_closing {
                    self.consume_end()?;
                } else {
                    self.parse_property_elements(&node, &scope)?;
                }
                return Ok(());
            }
            Some("Collection") => {
                let items = if self_closing {
                    self.consume_end()?;
                    Vec::new()
                } else {
                    self.parse_collection_items(&scope)?
                };
                let list = self.build_list(items)?;
                self.insert(Triple::new(subject.clone(), predicate, list))?;
                return Ok(());
            }
            Some("Literal") => {
                let text = if self_closing {
                    self.consume_end()?;
                    String::new()
                } else {
                    self.collect_xml_literal()?
                };
                self.insert(Triple::new(
                    subject.clone(),
                    predicate,
                    Term::Literal(Literal::typed(
                        text,
                        Iri::new(format!("{RDF_NS}XMLLiteral")),
                    )),
                ))?;
                return Ok(());
            }
            Some(other) => return self.err(format!("unsupported parseType `{other}`")),
            None => {}
        }

        if let Some(object) = resource {
            self.insert(Triple::new(subject.clone(), predicate, object.clone()))?;
            // Property attributes on a reference property element describe
            // the object.
            for (p, v) in prop_attrs {
                self.insert(Triple::new(object.clone(), p, Term::literal(v)))?;
            }
            if self_closing {
                self.consume_end()?;
            } else {
                // Must be an empty element.
                match self.reader.next_event()? {
                    NsEvent::EndElement { .. } => {}
                    NsEvent::Text(t) if t.trim().is_empty() => self.consume_end()?,
                    _ => return self.err("rdf:resource property element must be empty"),
                }
            }
            return Ok(());
        }

        if !prop_attrs.is_empty() {
            // Empty property element with property attributes ⇒ blank node.
            let node = self.fresh_blank();
            self.insert(Triple::new(subject.clone(), predicate, node.clone()))?;
            for (p, v) in prop_attrs {
                self.insert(Triple::new(node.clone(), p, Term::literal(v)))?;
            }
            if self_closing {
                self.consume_end()?;
            } else {
                match self.reader.next_event()? {
                    NsEvent::EndElement { .. } => {}
                    _ => return self.err("property element with attributes must be empty"),
                }
            }
            return Ok(());
        }

        if self_closing {
            // Empty property element: empty literal.
            self.consume_end()?;
            self.insert(Triple::new(
                subject.clone(),
                predicate,
                self.make_literal(String::new(), datatype, &scope),
            ))?;
            return Ok(());
        }

        // Literal content or a nested node element.
        let mut text = String::new();
        let mut nested: Option<Term> = None;
        loop {
            match self.reader.next_event()? {
                NsEvent::Text(t) => text.push_str(&t),
                NsEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    if nested.is_some() {
                        return self.err("multiple node elements inside one property element");
                    }
                    nested =
                        Some(self.parse_node_element(name, attributes, self_closing, &scope)?);
                }
                NsEvent::EndElement { .. } => break,
                NsEvent::Eof => return self.err("unexpected end of file in property element"),
            }
        }
        match nested {
            Some(object) => {
                if !text.trim().is_empty() {
                    return self.err("mixed text and node content in property element");
                }
                self.insert(Triple::new(subject.clone(), predicate, object))?;
            }
            None => {
                self.insert(Triple::new(
                    subject.clone(),
                    predicate,
                    self.make_literal(text, datatype, &scope),
                ))?;
            }
        }
        Ok(())
    }

    fn make_literal(&self, lexical: String, datatype: Option<Iri>, scope: &Scope) -> Term {
        Term::Literal(match datatype {
            Some(dt) => Literal::typed(lexical, dt),
            None => match &scope.lang {
                Some(lang) => Literal::lang(lexical, lang.clone()),
                None => Literal::plain(lexical),
            },
        })
    }

    fn consume_end(&mut self) -> Result<()> {
        match self.reader.next_event()? {
            NsEvent::EndElement { .. } => Ok(()),
            _ => self.err("expected end element"),
        }
    }

    /// Parses node elements inside `parseType="Collection"`.
    fn parse_collection_items(&mut self, scope: &Scope) -> Result<Vec<Term>> {
        let mut items = Vec::new();
        loop {
            match self.reader.next_event()? {
                NsEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    items.push(self.parse_node_element(name, attributes, self_closing, scope)?);
                }
                NsEvent::Text(t) if t.trim().is_empty() => continue,
                NsEvent::Text(_) => return self.err("unexpected text in collection"),
                NsEvent::EndElement { .. } => return Ok(items),
                NsEvent::Eof => return self.err("unexpected end of file in collection"),
            }
        }
    }

    /// Builds an rdf:List from `items`, returning its head.
    fn build_list(&mut self, items: Vec<Term>) -> Result<Term> {
        let mut head = Term::Iri(rdf::nil());
        for item in items.into_iter().rev() {
            let cell = self.fresh_blank();
            self.insert(Triple::new(cell.clone(), rdf::first(), item))?;
            self.insert(Triple::new(cell.clone(), rdf::rest(), head))?;
            head = cell;
        }
        Ok(head)
    }

    /// Collects the textual content of a `parseType="Literal"` body. Nested
    /// markup is flattened to its character data (sufficient for the
    /// documentation strings ontologies embed).
    fn collect_xml_literal(&mut self) -> Result<String> {
        let mut depth = 0usize;
        let mut text = String::new();
        loop {
            match self.reader.next_event()? {
                NsEvent::Text(t) => text.push_str(&t),
                NsEvent::StartElement { self_closing, .. } => {
                    if !self_closing {
                        depth += 1;
                    }
                }
                NsEvent::EndElement { .. } => {
                    if depth == 0 {
                        return Ok(text);
                    }
                    depth -= 1;
                }
                NsEvent::Eof => return self.err("unexpected end of file in XML literal"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{rdfs, RDFS_NS};

    const BASE: &str = "http://example.org/onto";

    fn parse(body: &str) -> Graph {
        let doc = format!(
            r##"<rdf:RDF xmlns:rdf="{RDF_NS}" xmlns:rdfs="{RDFS_NS}"
                        xmlns:owl="http://www.w3.org/2002/07/owl#"
                        xmlns:ex="http://example.org/onto#">{body}</rdf:RDF>"##
        );
        parse_rdfxml(&doc, BASE).expect("parse")
    }

    #[test]
    fn resolve_iri_cases() {
        assert_eq!(resolve_iri(BASE, "http://a/b"), "http://a/b");
        assert_eq!(resolve_iri(BASE, "#Frag"), "http://example.org/onto#Frag");
        assert_eq!(resolve_iri(BASE, ""), BASE);
        assert_eq!(resolve_iri("http://a/b/c", "d"), "http://a/b/d");
        assert_eq!(resolve_iri("http://a/b/c", "/d"), "http://a/d");
        assert_eq!(resolve_iri("http://a/b", "//h/x"), "http://h/x");
        assert_eq!(resolve_iri("http://a/b#x", "#y"), "http://a/b#y");
    }

    #[test]
    fn typed_node_and_about() {
        let g = parse(r##"<owl:Class rdf:about="#Person"/>"##);
        assert!(g.contains(&Triple::new(
            Term::iri("http://example.org/onto#Person"),
            rdf::type_(),
            Term::iri("http://www.w3.org/2002/07/owl#Class"),
        )));
    }

    #[test]
    fn rdf_id_resolves_against_base() {
        let g = parse(r##"<owl:Class rdf:ID="Person"/>"##);
        assert_eq!(g.instances_of(&crate::vocab::owl::class()).len(), 1);
        assert!(!g
            .matching(
                Some(&Term::iri("http://example.org/onto#Person")),
                None,
                None
            )
            .is_empty());
    }

    #[test]
    fn property_element_with_resource() {
        let g = parse(
            r##"<owl:Class rdf:about="#Student">
                 <rdfs:subClassOf rdf:resource="#Person"/>
               </owl:Class>"##,
        );
        assert!(g.contains(&Triple::new(
            Term::iri("http://example.org/onto#Student"),
            rdfs::sub_class_of(),
            Term::iri("http://example.org/onto#Person"),
        )));
    }

    #[test]
    fn literal_property_with_lang_and_datatype() {
        let g = parse(
            r##"<owl:Class rdf:about="#P">
                 <rdfs:label xml:lang="en">Person</rdfs:label>
                 <ex:age rdf:datatype="http://www.w3.org/2001/XMLSchema#int">4</ex:age>
               </owl:Class>"##,
        );
        let subject = Term::iri("http://example.org/onto#P");
        assert!(g.contains(&Triple::new(
            subject.clone(),
            rdfs::label(),
            Term::Literal(Literal::lang("Person", "en")),
        )));
        assert!(g.contains(&Triple::new(
            subject,
            Iri::new("http://example.org/onto#age"),
            Term::Literal(Literal::typed(
                "4",
                Iri::new("http://www.w3.org/2001/XMLSchema#int")
            )),
        )));
    }

    #[test]
    fn nested_node_element() {
        let g = parse(
            r##"<owl:Class rdf:about="#A">
                 <rdfs:subClassOf>
                   <owl:Class rdf:about="#B"/>
                 </rdfs:subClassOf>
               </owl:Class>"##,
        );
        assert!(g.contains(&Triple::new(
            Term::iri("http://example.org/onto#A"),
            rdfs::sub_class_of(),
            Term::iri("http://example.org/onto#B"),
        )));
    }

    #[test]
    fn parse_type_resource() {
        let g = parse(
            r##"<owl:Class rdf:about="#A">
                 <rdfs:subClassOf rdf:parseType="Resource">
                   <rdfs:comment>anon</rdfs:comment>
                 </rdfs:subClassOf>
               </owl:Class>"##,
        );
        let objs = g.objects_for(
            &Term::iri("http://example.org/onto#A"),
            &rdfs::sub_class_of(),
        );
        assert_eq!(objs.len(), 1);
        assert!(matches!(objs[0], Term::Blank(_)));
        assert_eq!(g.objects_for(&objs[0], &rdfs::comment()).len(), 1);
    }

    #[test]
    fn parse_type_collection_builds_list() {
        let g = parse(
            r##"<owl:Class rdf:about="#A">
                 <owl:unionOf rdf:parseType="Collection">
                   <owl:Class rdf:about="#B"/>
                   <owl:Class rdf:about="#C"/>
                 </owl:unionOf>
               </owl:Class>"##,
        );
        let head = g
            .object_for(
                &Term::iri("http://example.org/onto#A"),
                &Iri::new("http://www.w3.org/2002/07/owl#unionOf"),
            )
            .expect("list head");
        let first = g.object_for(&head, &rdf::first()).expect("first");
        assert_eq!(first, Term::iri("http://example.org/onto#B"));
        let rest = g.object_for(&head, &rdf::rest()).expect("rest");
        let second = g.object_for(&rest, &rdf::first()).expect("second");
        assert_eq!(second, Term::iri("http://example.org/onto#C"));
        let tail = g.object_for(&rest, &rdf::rest()).expect("tail");
        assert_eq!(tail, Term::Iri(rdf::nil()));
    }

    #[test]
    fn property_attributes_on_node() {
        let g = parse(r##"<rdf:Description rdf:about="#A" ex:name="Anna"/>"##);
        assert!(g.contains(&Triple::new(
            Term::iri("http://example.org/onto#A"),
            Iri::new("http://example.org/onto#name"),
            Term::literal("Anna"),
        )));
    }

    #[test]
    fn blank_nodes_are_unique() {
        let g = parse(
            r##"<owl:Class rdf:about="#A"><rdfs:subClassOf rdf:parseType="Resource"/></owl:Class>
               <owl:Class rdf:about="#B"><rdfs:subClassOf rdf:parseType="Resource"/></owl:Class>"##,
        );
        let a = g.objects_for(
            &Term::iri("http://example.org/onto#A"),
            &rdfs::sub_class_of(),
        );
        let b = g.objects_for(
            &Term::iri("http://example.org/onto#B"),
            &rdfs::sub_class_of(),
        );
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn node_id_links() {
        let g = parse(
            r##"<owl:Class rdf:about="#A"><rdfs:subClassOf rdf:nodeID="n1"/></owl:Class>
               <rdf:Description rdf:nodeID="n1"><rdfs:comment>x</rdfs:comment></rdf:Description>"##,
        );
        let obj = g
            .object_for(
                &Term::iri("http://example.org/onto#A"),
                &rdfs::sub_class_of(),
            )
            .expect("object");
        assert_eq!(obj, Term::blank("n1"));
        assert_eq!(g.objects_for(&obj, &rdfs::comment()).len(), 1);
    }

    #[test]
    fn xml_base_override() {
        let doc = format!(
            r##"<rdf:RDF xmlns:rdf="{RDF_NS}"
                        xmlns:owl="http://www.w3.org/2002/07/owl#"
                        xml:base="http://other.org/o">
                 <owl:Class rdf:about="#X"/>
               </rdf:RDF>"##
        );
        let g = parse_rdfxml(&doc, BASE).expect("parse");
        assert!(!g
            .matching(Some(&Term::iri("http://other.org/o#X")), None, None)
            .is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_rdfxml("<rdf:RDF", BASE).is_err());
        assert!(parse_rdfxml("", BASE).is_err());
    }

    #[test]
    fn root_prefix_scan() {
        let doc = format!(r##"<rdf:RDF xmlns:rdf="{RDF_NS}" xmlns:ex='http://e/'></rdf:RDF>"##);
        let g = parse_rdfxml(&doc, BASE).expect("parse");
        assert!(g
            .prefixes()
            .iter()
            .any(|(p, n)| p == "ex" && n == "http://e/"));
    }
}

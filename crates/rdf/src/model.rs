//! The RDF data model: IRIs, blank nodes, literals, terms, and triples.

use std::fmt;

/// An IRI (absolute or relative; the store does not resolve relative IRIs —
/// parsers do that against the document base).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(pub String);

impl Iri {
    pub fn new(iri: impl Into<String>) -> Self {
        Iri(iri.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Splits the IRI into (namespace, local name) at the last `#` or `/`.
    /// Returns the whole IRI as local name when no separator exists.
    pub fn split_local(&self) -> (&str, &str) {
        match self.0.rfind(['#', '/']) {
            Some(i) => self.0.split_at(i + 1),
            None => ("", self.0.as_str()),
        }
    }

    /// The local (fragment) name of the IRI.
    pub fn local_name(&self) -> &str {
        self.split_local().1
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Self {
        Iri(s.to_owned())
    }
}

impl From<String> for Iri {
    fn from(s: String) -> Self {
        Iri(s)
    }
}

/// A blank node label (without the `_:` prefix).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(pub String);

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// An RDF literal: lexical form plus optional language tag or datatype IRI.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    pub lexical: String,
    pub language: Option<String>,
    pub datatype: Option<Iri>,
}

impl Literal {
    /// A plain string literal.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            language: None,
            datatype: None,
        }
    }

    /// A language-tagged literal.
    pub fn lang(lexical: impl Into<String>, language: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            language: Some(language.into()),
            datatype: None,
        }
    }

    /// A typed literal.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<Iri>) -> Self {
        Literal {
            lexical: lexical.into(),
            language: None,
            datatype: Some(datatype.into()),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^{dt}")?;
        }
        Ok(())
    }
}

/// A node in subject or object position.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Iri(Iri),
    Blank(BlankNode),
    Literal(Literal),
}

impl Term {
    pub fn iri(iri: impl Into<String>) -> Self {
        Term::Iri(Iri::new(iri))
    }

    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(BlankNode(label.into()))
    }

    pub fn literal(lit: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(lit))
    }

    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    pub fn is_resource(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => i.fmt(f),
            Term::Blank(b) => b.fmt(f),
            Term::Literal(l) => l.fmt(f),
        }
    }
}

/// One RDF statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Iri,
    pub object: Term,
}

impl Triple {
    pub fn new(subject: Term, predicate: impl Into<Iri>, object: Term) -> Self {
        Triple {
            subject,
            predicate: predicate.into(),
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

// ---- Display helpers -------------------------------------------------------
//
// N-Triples style escaping shared by the Display impls and the serializers.

/// Escapes a string for use in an N-Triples/Turtle quoted literal.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_local_name() {
        assert_eq!(Iri::new("http://x.org/onto#Person").local_name(), "Person");
        assert_eq!(Iri::new("http://x.org/onto/Person").local_name(), "Person");
        assert_eq!(Iri::new("Person").local_name(), "Person");
    }

    #[test]
    fn iri_split_namespace() {
        let iri = Iri::new("http://x.org/onto#Person");
        assert_eq!(iri.split_local(), ("http://x.org/onto#", "Person"));
    }

    #[test]
    fn display_forms() {
        let t = Triple::new(
            Term::iri("http://s"),
            Iri::new("http://p"),
            Term::Literal(Literal::lang("hi \"x\"", "en")),
        );
        assert_eq!(t.to_string(), "<http://s> <http://p> \"hi \\\"x\\\"\"@en .");
        let typed = Literal::typed("4", Iri::new("http://www.w3.org/2001/XMLSchema#int"));
        assert_eq!(
            typed.to_string(),
            "\"4\"^^<http://www.w3.org/2001/XMLSchema#int>"
        );
        assert_eq!(Term::blank("b1").to_string(), "_:b1");
    }

    #[test]
    fn literal_escaping_roundtrip_chars() {
        assert_eq!(escape_literal("a\\b\"c\nd\te"), "a\\\\b\\\"c\\nd\\te");
    }
}

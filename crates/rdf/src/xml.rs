//! A small, non-validating XML 1.0 pull parser.
//!
//! This is the substrate underneath the RDF/XML reader (and therefore
//! underneath the OWL and DAML ontology wrappers). It supports the subset of
//! XML that real-world ontology documents use: elements, attributes,
//! character data, CDATA sections, comments, processing instructions, the
//! XML declaration, DOCTYPE declarations (skipped, including internal
//! subsets), numeric and predefined entity references, and both `\n` and
//! `\r\n` line endings.
//!
//! The parser is *pull based*: [`XmlParser::next_event`] returns one
//! [`XmlEvent`] at a time, which keeps memory proportional to the largest
//! single token rather than the document.

use sst_limits::{LimitKind, LimitViolation, Limits};

use crate::error::{Location, RdfError, Result};

/// A single XML attribute as written in the document (prefix not resolved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Qualified name, e.g. `rdf:about`.
    pub name: String,
    /// Decoded attribute value.
    pub value: String,
}

/// One event pulled from the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v">` or `<name attr="v"/>`.
    StartElement {
        name: String,
        attributes: Vec<Attribute>,
        /// True for `<name/>`; no matching [`XmlEvent::EndElement`] follows.
        self_closing: bool,
    },
    /// `</name>`.
    EndElement { name: String },
    /// Character data between tags, with entities decoded. Consecutive text
    /// and CDATA runs are *not* merged; callers accumulate as needed.
    Text(String),
    /// `<![CDATA[...]]>` content, verbatim.
    CData(String),
    /// `<!-- ... -->` content.
    Comment(String),
    /// `<?target data?>` (the XML declaration is reported this way too).
    ProcessingInstruction { target: String, data: String },
    /// End of input.
    Eof,
}

/// Pull parser over an in-memory document.
#[derive(Debug)]
pub struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
    /// Stack of open element names, used to validate nesting.
    open: Vec<String>,
    finished: bool,
    limits: Limits,
}

impl<'a> XmlParser<'a> {
    /// Creates a parser over `input` under [`Limits::default`]. The input
    /// must be UTF-8 (enforced by the `&str` type).
    // lint: allow(limits) convenience constructor applying Limits::default()
    pub fn new(input: &'a str) -> Self {
        Self::with_limits(input, &Limits::default())
    }

    /// Creates a parser over `input` under an explicit resource [`Limits`]
    /// policy. The element-nesting bound here is what keeps the recursive
    /// RDF/XML reader above from overflowing the stack.
    pub fn with_limits(input: &'a str, limits: &Limits) -> Self {
        // Skip a UTF-8 byte-order mark if present (editors emit them).
        let input = input.strip_prefix('\u{feff}').unwrap_or(input);
        XmlParser {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
            open: Vec::new(),
            finished: false,
            limits: *limits,
        }
    }

    fn limit_error(
        &self,
        kind: LimitKind,
        limit: u64,
        observed: u64,
        what: &'static str,
    ) -> RdfError {
        RdfError::Limit(LimitViolation {
            kind,
            limit,
            observed,
            what,
        })
    }

    /// Current location, for error reporting.
    pub fn location(&self) -> Location {
        Location {
            line: self.line,
            column: self.column,
        }
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    fn error(&self, message: impl Into<String>) -> RdfError {
        RdfError::Xml {
            message: message.into(),
            location: self.location(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(self.error(message))
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not UTF-8 continuation bytes.
            self.column += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Reads until (excluding) `delim`, returning the raw slice. Errors on EOF.
    fn read_until(&mut self, delim: &[u8], what: &str) -> Result<String> {
        let start = self.pos;
        while self.pos < self.input.len() {
            if self.pos - start > self.limits.max_literal_bytes {
                return Err(self.limit_error(
                    LimitKind::LiteralBytes,
                    self.limits.max_literal_bytes as u64,
                    (self.pos - start) as u64,
                    "xml token",
                ));
            }
            if self.starts_with(delim) {
                let raw = &self.input[start..self.pos];
                self.advance(delim.len());
                return Ok(String::from_utf8_lossy(raw).into_owned());
            }
            self.bump();
        }
        self.err(format!("unterminated {what}"))
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn read_name(&mut self) -> Result<String> {
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {}
            _ => return self.err("expected a name"),
        }
        let start = self.pos;
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// Decodes character and predefined entity references in `raw`.
    fn decode_entities(&self, raw: &str) -> Result<String> {
        if !raw.contains('&') {
            return Ok(raw.to_owned());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            rest = rest.get(amp + 1..).unwrap_or("");
            let semi = match rest.find(';') {
                Some(i) if i <= 10 => i,
                _ => return self.err("unterminated entity reference"),
            };
            let entity = &rest[..semi];
            rest = rest.get(semi + 1..).unwrap_or("");
            match entity {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    let code = u32::from_str_radix(&entity[2..], 16)
                        .map_err(|_| self.error("bad hex character reference"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.error("character reference out of range"))?,
                    );
                }
                _ if entity.starts_with('#') => {
                    let code = entity[1..]
                        .parse::<u32>()
                        .map_err(|_| self.error("bad decimal character reference"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.error("character reference out of range"))?,
                    );
                }
                _ => {
                    // Unknown general entity: ontologies occasionally declare
                    // entities in the DTD internal subset (e.g. `&owl;`). We
                    // do not expand DTD entities; report clearly.
                    return self.err(format!("unsupported entity reference `&{entity};`"));
                }
            }
        }
        out.push_str(rest);
        Ok(out)
    }

    fn read_attribute(&mut self) -> Result<Attribute> {
        let name = self.read_name()?;
        self.skip_whitespace();
        if self.peek() != Some(b'=') {
            return self.err(format!("expected `=` after attribute `{name}`"));
        }
        self.bump();
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected quoted attribute value"),
        };
        self.bump();
        let raw = self.read_until(&[quote], "attribute value")?;
        // Attribute-value normalization: newlines and tabs become spaces.
        let normalized: String = raw
            .chars()
            .map(|c| {
                if c == '\n' || c == '\r' || c == '\t' {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        let value = self.decode_entities(&normalized)?;
        Ok(Attribute { name, value })
    }

    fn read_start_element(&mut self) -> Result<XmlEvent> {
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    if self.open.len() >= self.limits.max_depth {
                        return Err(self.limit_error(
                            LimitKind::Depth,
                            self.limits.max_depth as u64,
                            self.open.len() as u64 + 1,
                            "xml element nesting",
                        ));
                    }
                    self.open.push(name.clone());
                    return Ok(XmlEvent::StartElement {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.bump();
                    if self.peek() != Some(b'>') {
                        return self.err("expected `>` after `/`");
                    }
                    self.bump();
                    return Ok(XmlEvent::StartElement {
                        name,
                        attributes,
                        self_closing: true,
                    });
                }
                Some(b) if Self::is_name_start(b) => {
                    let attr = self.read_attribute()?;
                    if attributes.iter().any(|a: &Attribute| a.name == attr.name) {
                        return self.err(format!("duplicate attribute `{}`", attr.name));
                    }
                    attributes.push(attr);
                }
                Some(_) => return self.err("unexpected character in tag"),
                None => return self.err("unexpected end of input inside tag"),
            }
        }
    }

    fn read_end_element(&mut self) -> Result<XmlEvent> {
        let name = self.read_name()?;
        self.skip_whitespace();
        if self.peek() != Some(b'>') {
            return self.err("expected `>` in end tag");
        }
        self.bump();
        match self.open.pop() {
            Some(open) if open == name => Ok(XmlEvent::EndElement { name }),
            Some(open) => self.err(format!(
                "mismatched end tag: expected `</{open}>`, found `</{name}>`"
            )),
            None => self.err(format!("unexpected end tag `</{name}>`")),
        }
    }

    /// Skips a `<!DOCTYPE ...>` declaration, including a bracketed internal
    /// subset.
    fn skip_doctype(&mut self) -> Result<()> {
        let mut depth = 0usize;
        while let Some(b) = self.bump() {
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        self.err("unterminated DOCTYPE declaration")
    }

    /// Pulls the next event. After [`XmlEvent::Eof`] has been returned the
    /// parser keeps returning `Eof`.
    pub fn next_event(&mut self) -> Result<XmlEvent> {
        if self.finished {
            return Ok(XmlEvent::Eof);
        }
        if self.input.len() > self.limits.max_input_bytes {
            return Err(self.limit_error(
                LimitKind::InputBytes,
                self.limits.max_input_bytes as u64,
                self.input.len() as u64,
                "xml document",
            ));
        }
        if self.pos >= self.input.len() {
            if let Some(open) = self.open.last() {
                return self.err(format!("unexpected end of input: `<{open}>` not closed"));
            }
            self.finished = true;
            return Ok(XmlEvent::Eof);
        }
        if self.peek() == Some(b'<') {
            self.bump();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    self.read_end_element()
                }
                Some(b'?') => {
                    self.bump();
                    let target = self.read_name()?;
                    self.skip_whitespace();
                    let data = self.read_until(b"?>", "processing instruction")?;
                    Ok(XmlEvent::ProcessingInstruction { target, data })
                }
                Some(b'!') => {
                    self.bump();
                    if self.starts_with(b"--") {
                        self.advance(2);
                        let text = self.read_until(b"-->", "comment")?;
                        Ok(XmlEvent::Comment(text))
                    } else if self.starts_with(b"[CDATA[") {
                        self.advance(7);
                        let text = self.read_until(b"]]>", "CDATA section")?;
                        Ok(XmlEvent::CData(text))
                    } else if self.starts_with(b"DOCTYPE") {
                        self.skip_doctype()?;
                        self.next_event()
                    } else {
                        self.err("unsupported `<!` construct")
                    }
                }
                _ => self.read_start_element(),
            }
        } else {
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != Some(b'<') {
                if self.pos - start > self.limits.max_literal_bytes {
                    return Err(self.limit_error(
                        LimitKind::LiteralBytes,
                        self.limits.max_literal_bytes as u64,
                        (self.pos - start) as u64,
                        "xml character data",
                    ));
                }
                self.bump();
            }
            // The in-loop check runs before each bump, so a run that stops
            // exactly one byte past the cap (on `<` or EOF) slips through it.
            if self.pos - start > self.limits.max_literal_bytes {
                return Err(self.limit_error(
                    LimitKind::LiteralBytes,
                    self.limits.max_literal_bytes as u64,
                    (self.pos - start) as u64,
                    "xml character data",
                ));
            }
            let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            // Normalize CRLF to LF in character data.
            let raw = raw.replace("\r\n", "\n").replace('\r', "\n");
            let text = self.decode_entities(&raw)?;
            if self.open.is_empty() && text.trim().is_empty() {
                // Whitespace outside the document element.
                return self.next_event();
            }
            Ok(XmlEvent::Text(text))
        }
    }
}

/// Expanded (namespace-resolved) XML name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExpandedName {
    /// Namespace IRI, if the name is in a namespace.
    pub namespace: Option<String>,
    /// Local part of the name.
    pub local: String,
}

impl ExpandedName {
    /// Builds an expanded name from a namespace IRI and local part.
    pub fn new(namespace: impl Into<String>, local: impl Into<String>) -> Self {
        ExpandedName {
            namespace: Some(namespace.into()),
            local: local.into(),
        }
    }

    /// True when the name is `{namespace}local`.
    pub fn is(&self, namespace: &str, local: &str) -> bool {
        self.local == local && self.namespace.as_deref() == Some(namespace)
    }

    /// Namespace IRI concatenated with the local part — the IRI the name
    /// denotes under RDF/XML rules.
    pub fn as_iri(&self) -> String {
        match &self.namespace {
            Some(ns) => format!("{ns}{}", self.local),
            None => self.local.clone(),
        }
    }
}

/// A namespace-resolved attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsAttribute {
    pub name: ExpandedName,
    pub value: String,
}

/// Namespace-resolved events produced by [`NsReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsEvent {
    StartElement {
        name: ExpandedName,
        attributes: Vec<NsAttribute>,
        self_closing: bool,
    },
    EndElement {
        name: ExpandedName,
    },
    Text(String),
    Eof,
}

const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// Layer over [`XmlParser`] that resolves namespace prefixes, merges CDATA
/// into text, and drops comments and processing instructions.
#[derive(Debug)]
pub struct NsReader<'a> {
    parser: XmlParser<'a>,
    /// Stack of (depth, prefix, namespace) bindings. `prefix == ""` is the
    /// default namespace.
    scopes: Vec<(usize, String, String)>,
    depth: usize,
    /// Names of open elements, kept so `EndElement` can be resolved with the
    /// bindings that were in effect at its start tag.
    open_names: Vec<ExpandedName>,
    pending_end: Option<ExpandedName>,
}

impl<'a> NsReader<'a> {
    /// Creates a reader under [`Limits::default`].
    // lint: allow(limits) convenience constructor applying Limits::default()
    pub fn new(input: &'a str) -> Self {
        Self::with_limits(input, &Limits::default())
    }

    /// Creates a reader under an explicit resource [`Limits`] policy.
    pub fn with_limits(input: &'a str, limits: &Limits) -> Self {
        NsReader {
            parser: XmlParser::with_limits(input, limits),
            scopes: vec![(0, "xml".to_owned(), XML_NS.to_owned())],
            depth: 0,
            open_names: Vec::new(),
            pending_end: None,
        }
    }

    pub fn location(&self) -> Location {
        self.parser.location()
    }

    fn lookup(&self, prefix: &str) -> Option<&str> {
        self.scopes
            .iter()
            .rev()
            .find(|(_, p, _)| p == prefix)
            .map(|(_, _, ns)| ns.as_str())
    }

    fn resolve(&self, qname: &str, is_attribute: bool) -> Result<ExpandedName> {
        match qname.split_once(':') {
            Some((prefix, local)) => {
                let ns = self.lookup(prefix).ok_or_else(|| RdfError::UnknownPrefix {
                    prefix: prefix.to_owned(),
                    location: self.parser.location(),
                })?;
                Ok(ExpandedName {
                    namespace: Some(ns.to_owned()),
                    local: local.to_owned(),
                })
            }
            None => {
                // Unprefixed attributes are in no namespace; unprefixed
                // elements take the default namespace.
                if is_attribute {
                    Ok(ExpandedName {
                        namespace: None,
                        local: qname.to_owned(),
                    })
                } else {
                    let ns = self.lookup("").map(str::to_owned);
                    let ns = ns.filter(|n| !n.is_empty());
                    Ok(ExpandedName {
                        namespace: ns,
                        local: qname.to_owned(),
                    })
                }
            }
        }
    }

    /// Pulls the next namespace-resolved event.
    pub fn next_event(&mut self) -> Result<NsEvent> {
        if let Some(name) = self.pending_end.take() {
            return Ok(NsEvent::EndElement { name });
        }
        loop {
            match self.parser.next_event()? {
                XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    self.depth += 1;
                    // First pass: collect namespace declarations in scope.
                    for attr in &attributes {
                        if attr.name == "xmlns" {
                            self.scopes
                                .push((self.depth, String::new(), attr.value.clone()));
                        } else if let Some(prefix) = attr.name.strip_prefix("xmlns:") {
                            self.scopes
                                .push((self.depth, prefix.to_owned(), attr.value.clone()));
                        }
                    }
                    let resolved_name = self.resolve(&name, false)?;
                    let mut resolved_attrs = Vec::with_capacity(attributes.len());
                    for attr in &attributes {
                        if attr.name == "xmlns" || attr.name.starts_with("xmlns:") {
                            continue;
                        }
                        resolved_attrs.push(NsAttribute {
                            name: self.resolve(&attr.name, true)?,
                            value: attr.value.clone(),
                        });
                    }
                    if self_closing {
                        // Emit start now, end on the next call.
                        self.scopes.retain(|(d, _, _)| *d < self.depth);
                        self.depth -= 1;
                        self.pending_end = Some(resolved_name.clone());
                        return Ok(NsEvent::StartElement {
                            name: resolved_name,
                            attributes: resolved_attrs,
                            self_closing: true,
                        });
                    }
                    self.open_names.push(resolved_name.clone());
                    return Ok(NsEvent::StartElement {
                        name: resolved_name,
                        attributes: resolved_attrs,
                        self_closing: false,
                    });
                }
                XmlEvent::EndElement { .. } => {
                    let name = self.open_names.pop().ok_or_else(|| RdfError::Xml {
                        message: "end tag without matching start".into(),
                        location: self.location(),
                    })?;
                    self.scopes.retain(|(d, _, _)| *d < self.depth);
                    self.depth -= 1;
                    return Ok(NsEvent::EndElement { name });
                }
                XmlEvent::Text(t) | XmlEvent::CData(t) => return Ok(NsEvent::Text(t)),
                XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction { .. } => continue,
                XmlEvent::Eof => return Ok(NsEvent::Eof),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(input: &str) -> Vec<XmlEvent> {
        let mut p = XmlParser::new(input);
        let mut out = Vec::new();
        loop {
            let ev = p.next_event().expect("parse");
            let eof = ev == XmlEvent::Eof;
            out.push(ev);
            if eof {
                break;
            }
        }
        out
    }

    #[test]
    fn parses_simple_element() {
        let evs = collect("<a>hi</a>");
        assert_eq!(
            evs,
            vec![
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![],
                    self_closing: false
                },
                XmlEvent::Text("hi".into()),
                XmlEvent::EndElement { name: "a".into() },
                XmlEvent::Eof,
            ]
        );
    }

    #[test]
    fn parses_attributes_and_self_closing() {
        let evs = collect(r#"<a x="1" y='two'/>"#);
        assert_eq!(
            evs[0],
            XmlEvent::StartElement {
                name: "a".into(),
                attributes: vec![
                    Attribute {
                        name: "x".into(),
                        value: "1".into()
                    },
                    Attribute {
                        name: "y".into(),
                        value: "two".into()
                    },
                ],
                self_closing: true,
            }
        );
    }

    #[test]
    fn decodes_entities() {
        let evs = collect("<a>&lt;x&gt; &amp; &#65;&#x42;</a>");
        assert_eq!(evs[1], XmlEvent::Text("<x> & AB".into()));
    }

    #[test]
    fn decodes_entities_in_attributes() {
        let evs = collect(r#"<a v="a&amp;b&quot;c"/>"#);
        match &evs[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "a&b\"c");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_mismatched_tags() {
        let mut p = XmlParser::new("<a><b></a></b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn rejects_unclosed_document() {
        let mut p = XmlParser::new("<a><b></b>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        p.next_event().unwrap();
        assert!(p.next_event().is_err());
    }

    #[test]
    fn rejects_duplicate_attributes() {
        let mut p = XmlParser::new(r#"<a x="1" x="2"/>"#);
        assert!(p.next_event().is_err());
    }

    #[test]
    fn skips_doctype_with_internal_subset() {
        let evs = collect("<!DOCTYPE rdf [ <!ENTITY owl \"x\"> ]><a/>");
        assert!(matches!(evs[0], XmlEvent::StartElement { .. }));
    }

    #[test]
    fn handles_comments_cdata_and_pi() {
        let evs = collect("<?xml version=\"1.0\"?><a><!-- c --><![CDATA[<raw>]]></a>");
        assert_eq!(
            evs,
            vec![
                XmlEvent::ProcessingInstruction {
                    target: "xml".into(),
                    data: "version=\"1.0\"".into()
                },
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![],
                    self_closing: false
                },
                XmlEvent::Comment(" c ".into()),
                XmlEvent::CData("<raw>".into()),
                XmlEvent::EndElement { name: "a".into() },
                XmlEvent::Eof,
            ]
        );
    }

    #[test]
    fn skips_utf8_bom() {
        let evs = collect("\u{feff}<a/>");
        assert!(matches!(evs[0], XmlEvent::StartElement { .. }));
    }

    #[test]
    fn tracks_locations() {
        let mut p = XmlParser::new("<a>\n  <b></c>");
        p.next_event().unwrap();
        p.next_event().unwrap();
        p.next_event().unwrap();
        let err = p.next_event().unwrap_err();
        match err {
            RdfError::Xml { location, .. } => assert_eq!(location.line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn namespace_resolution() {
        let mut r = NsReader::new(
            r#"<rdf:RDF xmlns:rdf="http://r/" xmlns="http://d/">
                 <Class rdf:about="x"/>
               </rdf:RDF>"#,
        );
        match r.next_event().unwrap() {
            NsEvent::StartElement { name, .. } => {
                assert!(name.is("http://r/", "RDF"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // whitespace text
        assert!(matches!(r.next_event().unwrap(), NsEvent::Text(_)));
        match r.next_event().unwrap() {
            NsEvent::StartElement {
                name, attributes, ..
            } => {
                assert!(name.is("http://d/", "Class"));
                assert!(attributes[0].name.is("http://r/", "about"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // synthetic end for the self-closing element
        assert!(matches!(
            r.next_event().unwrap(),
            NsEvent::EndElement { .. }
        ));
    }

    #[test]
    fn namespace_scoping_unwinds() {
        let mut r = NsReader::new(r#"<a xmlns="http://o/"><b xmlns="http://i/"/><c/></a>"#);
        r.next_event().unwrap(); // a
        match r.next_event().unwrap() {
            NsEvent::StartElement { name, .. } => assert!(name.is("http://i/", "b")),
            other => panic!("unexpected {other:?}"),
        }
        r.next_event().unwrap(); // end b
        match r.next_event().unwrap() {
            NsEvent::StartElement { name, .. } => assert!(name.is("http://o/", "c")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let mut r = NsReader::new("<x:a/>");
        assert!(matches!(
            r.next_event(),
            Err(RdfError::UnknownPrefix { .. })
        ));
    }

    #[test]
    fn unprefixed_attribute_has_no_namespace() {
        let mut r = NsReader::new(r#"<a xmlns="http://d/" k="v"/>"#);
        match r.next_event().unwrap() {
            NsEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].name.namespace, None);
                assert_eq!(attributes[0].name.local, "k");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! Turtle parser and serializer.
//!
//! Supports the subset ontology tooling emits: `@prefix`/`@base` (and the
//! SPARQL-style `PREFIX`/`BASE`), prefixed names, the `a` keyword, object
//! lists (`,`), predicate-object lists (`;`), anonymous blank nodes
//! (`[ ... ]`), labelled blank nodes, collections `( ... )`, quoted literals
//! with language tags and datatypes, long strings (`"""..."""`), and bare
//! integer / decimal / boolean abbreviations.

use std::collections::HashMap;

use sst_limits::{Budget, Limits, Partial};

use crate::error::{Location, RdfError, Result};
use crate::graph::Graph;
use crate::model::{escape_literal, Iri, Literal, Term, Triple};
use crate::rdfxml::resolve_iri;
use crate::vocab::{rdf, XSD_NS};

/// Parses a Turtle document under [`Limits::default`]. `base` seeds
/// relative-IRI resolution and can be overridden by an in-document `@base`.
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_turtle(input: &str, base: &str) -> Result<Graph> {
    parse_turtle_with_limits(input, base, &Limits::default(), None)
}

/// Like [`parse_turtle`], but records throughput into `metrics` when given:
/// `rdf.turtle.documents` / `rdf.turtle.triples` / `rdf.turtle.bytes`
/// counters and the `rdf.turtle.parse.latency` histogram.
// lint: allow(limits) convenience wrapper applying Limits::default()
pub fn parse_turtle_with_metrics(
    input: &str,
    base: &str,
    metrics: Option<&sst_obs::Metrics>,
) -> Result<Graph> {
    parse_turtle_with_limits(input, base, &Limits::default(), metrics)
}

/// Parses a Turtle document under an explicit resource [`Limits`] policy.
/// A violation surfaces as [`RdfError::Limit`] and bumps the
/// `rdf.turtle.limit.<kind>` counter when `metrics` is given.
pub fn parse_turtle_with_limits(
    input: &str,
    base: &str,
    limits: &Limits,
    metrics: Option<&sst_obs::Metrics>,
) -> Result<Graph> {
    match parse_turtle_inner(input, base, limits, metrics) {
        (graph, None) => Ok(graph),
        (_, Some(err)) => Err(err),
    }
}

/// Parses as much of a Turtle document as possible. The returned
/// [`Partial`] holds every triple inserted before the first error plus that
/// error; a clean parse has an empty `errors` vector.
pub fn parse_turtle_partial(
    input: &str,
    base: &str,
    limits: &Limits,
    metrics: Option<&sst_obs::Metrics>,
) -> Partial<Graph, RdfError> {
    match parse_turtle_inner(input, base, limits, metrics) {
        (graph, None) => Partial::complete(graph),
        (graph, Some(err)) => Partial::broken(graph, err),
    }
}

fn parse_turtle_inner(
    input: &str,
    base: &str,
    limits: &Limits,
    metrics: Option<&sst_obs::Metrics>,
) -> (Graph, Option<RdfError>) {
    let _span = metrics.map(|m| m.span("rdf.turtle.parse.latency"));
    let budget = Budget::new(limits);
    if let Err(violation) = budget.check_input(input.len(), "turtle document") {
        crate::record_limit_violation(metrics, "rdf.turtle", &violation);
        return (Graph::new(), Some(violation.into()));
    }
    let mut p = TurtleParser {
        input,
        pos: 0,
        line: 1,
        column: 1,
        base: base.to_owned(),
        prefixes: HashMap::new(),
        graph: Graph::new(),
        blank_counter: 0,
        budget,
    };
    match p.parse_document() {
        Ok(()) => {
            if let Some(m) = metrics {
                m.inc("rdf.turtle.documents");
                m.add("rdf.turtle.triples", p.graph.len() as u64);
                m.add("rdf.turtle.bytes", input.len() as u64);
            }
            (p.graph, None)
        }
        Err(err) => {
            if let RdfError::Limit(violation) = &err {
                crate::record_limit_violation(metrics, "rdf.turtle", violation);
            }
            (p.graph, Some(err))
        }
    }
}

struct TurtleParser<'a> {
    input: &'a str,
    /// Byte offset into `input`; always on a `char` boundary.
    pos: usize,
    line: u32,
    column: u32,
    base: String,
    prefixes: HashMap<String, String>,
    graph: Graph,
    blank_counter: u64,
    budget: Budget,
}

impl TurtleParser<'_> {
    fn location(&self) -> Location {
        Location {
            line: self.line,
            column: self.column,
        }
    }

    fn error(&self, message: impl Into<String>) -> RdfError {
        RdfError::Turtle {
            message: message.into(),
            location: self.location(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(self.error(message))
    }

    fn rest(&self) -> &str {
        self.input.get(self.pos..).unwrap_or("")
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while !matches!(self.peek(), Some('\n') | None) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: char) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected `{c}`"))
        }
    }

    fn starts_with_keyword(&self, kw: &str) -> bool {
        let mut i = 0;
        for kc in kw.chars() {
            match self.peek_at(i) {
                Some(c) if c.eq_ignore_ascii_case(&kc) => i += 1,
                _ => return false,
            }
        }
        // Must be followed by whitespace or '<'.
        matches!(self.peek_at(i), Some(c) if c.is_whitespace() || c == '<')
    }

    fn fresh_blank(&mut self) -> Term {
        self.blank_counter += 1;
        Term::blank(format!("tb{}", self.blank_counter))
    }

    fn parse_document(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Ok(());
            }
            if self.peek() == Some('@') {
                self.parse_at_directive()?;
                continue;
            }
            if self.starts_with_keyword("PREFIX") {
                for _ in 0.."PREFIX".len() {
                    self.bump();
                }
                self.parse_prefix_binding()?;
                continue;
            }
            if self.starts_with_keyword("BASE") {
                for _ in 0.."BASE".len() {
                    self.bump();
                }
                self.skip_ws();
                let iri = self.parse_iriref()?;
                self.base = iri;
                continue;
            }
            self.parse_statement()?;
        }
    }

    fn parse_at_directive(&mut self) -> Result<()> {
        self.expect_char('@')?;
        let word = self.parse_bare_word();
        match word.as_str() {
            "prefix" => {
                self.parse_prefix_binding()?;
                self.skip_ws();
                self.expect_char('.')
            }
            "base" => {
                self.skip_ws();
                let iri = self.parse_iriref()?;
                self.base = iri;
                self.skip_ws();
                self.expect_char('.')
            }
            other => self.err(format!("unknown directive `@{other}`")),
        }
    }

    fn parse_prefix_binding(&mut self) -> Result<()> {
        self.skip_ws();
        // prefix name up to ':'
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return self.err("whitespace in prefix name");
            }
            prefix.push(c);
            self.bump();
        }
        self.expect_char(':')?;
        self.skip_ws();
        let ns = self.parse_iriref()?;
        self.prefixes.insert(prefix.clone(), ns.clone());
        self.graph.add_prefix(prefix, ns);
        Ok(())
    }

    fn parse_bare_word(&mut self) -> String {
        let mut w = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphabetic() {
                w.push(c);
                self.bump();
            } else {
                break;
            }
        }
        w
    }

    fn insert_triple(&mut self, triple: Triple) -> Result<()> {
        self.budget.item("turtle triples")?;
        self.graph.insert(triple);
        Ok(())
    }

    fn parse_statement(&mut self) -> Result<()> {
        self.budget.step("turtle statement")?;
        let subject = self.parse_subject()?;
        self.parse_predicate_object_list(&subject)?;
        self.skip_ws();
        self.expect_char('.')
    }

    fn parse_subject(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(Iri::new(self.parse_resolved_iri()?))),
            Some('_') => self.parse_blank_label(),
            Some('[') => self.parse_blank_node_property_list(),
            Some('(') => self.parse_collection(),
            Some(_) => Ok(Term::Iri(self.parse_prefixed_name()?)),
            None => self.err("expected subject"),
        }
    }

    fn parse_predicate_object_list(&mut self, subject: &Term) -> Result<()> {
        loop {
            self.skip_ws();
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_object()?;
                self.insert_triple(Triple::new(subject.clone(), predicate.clone(), object))?;
                self.skip_ws();
                if !self.eat(',') {
                    break;
                }
            }
            self.skip_ws();
            if self.eat(';') {
                self.skip_ws();
                // Allow trailing `;` before `.` or `]`.
                if matches!(self.peek(), Some('.') | Some(']') | None) {
                    return Ok(());
                }
                continue;
            }
            return Ok(());
        }
    }

    fn parse_predicate(&mut self) -> Result<Iri> {
        self.skip_ws();
        if self.peek() == Some('a')
            && matches!(self.peek_at(1), Some(c) if c.is_whitespace() || c == '<' || c == '[')
        {
            self.bump();
            return Ok(rdf::type_());
        }
        match self.peek() {
            Some('<') => Ok(Iri::new(self.parse_resolved_iri()?)),
            Some(_) => self.parse_prefixed_name(),
            None => self.err("expected predicate"),
        }
    }

    fn parse_object(&mut self) -> Result<Term> {
        self.budget.step("turtle term")?;
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(Iri::new(self.parse_resolved_iri()?))),
            Some('_') => self.parse_blank_label(),
            Some('[') => self.parse_blank_node_property_list(),
            Some('(') => self.parse_collection(),
            Some('"') | Some('\'') => self.parse_quoted_literal(),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => self.parse_numeric_literal(),
            Some('t') | Some('f') if self.matches_boolean() => self.parse_boolean_literal(),
            Some(_) => Ok(Term::Iri(self.parse_prefixed_name()?)),
            None => self.err("expected object"),
        }
    }

    fn matches_boolean(&self) -> bool {
        for word in ["true", "false"] {
            let mut ok = true;
            for (i, kc) in word.chars().enumerate() {
                if self.peek_at(i) != Some(kc) {
                    ok = false;
                    break;
                }
            }
            if ok {
                let after = self.peek_at(word.len());
                if !matches!(after, Some(c) if c.is_alphanumeric() || c == '_' || c == ':') {
                    return true;
                }
            }
        }
        false
    }

    fn parse_boolean_literal(&mut self) -> Result<Term> {
        let word = self.parse_bare_word();
        Ok(Term::Literal(Literal::typed(
            word,
            Iri::new(format!("{XSD_NS}boolean")),
        )))
    }

    fn parse_numeric_literal(&mut self) -> Result<Term> {
        let mut lexical = String::new();
        if matches!(self.peek(), Some('+') | Some('-')) {
            if let Some(sign) = self.bump() {
                lexical.push(sign);
            }
        }
        let mut is_decimal = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                lexical.push(c);
                self.bump();
            } else if c == '.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                is_decimal = true;
                lexical.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if lexical.is_empty() || lexical == "+" || lexical == "-" {
            return self.err("malformed number");
        }
        let dt = if is_decimal { "decimal" } else { "integer" };
        Ok(Term::Literal(Literal::typed(
            lexical,
            Iri::new(format!("{XSD_NS}{dt}")),
        )))
    }

    fn parse_iriref(&mut self) -> Result<String> {
        self.expect_char('<')?;
        let mut iri = String::new();
        loop {
            self.budget.check_literal(iri.len(), "turtle IRI")?;
            match self.bump() {
                Some('>') => break,
                Some(c) if c.is_whitespace() => return self.err("whitespace in IRI"),
                // Only \uXXXX and \UXXXXXXXX are legal escapes inside an IRI.
                Some('\\') => match self.bump() {
                    Some(e @ ('u' | 'U')) => iri.push(self.unicode_escape(e)?),
                    _ => return self.err("only \\u and \\U escapes are allowed in IRIs"),
                },
                Some(c) => iri.push(c),
                None => return self.err("unterminated IRI"),
            }
        }
        Ok(resolve_iri(&self.base, &iri))
    }

    fn parse_resolved_iri(&mut self) -> Result<String> {
        self.parse_iriref()
    }

    fn parse_prefixed_name(&mut self) -> Result<Iri> {
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                prefix.push(c);
                self.bump();
            } else {
                return self.err(format!("unexpected character `{c}` in prefixed name"));
            }
        }
        if !self.eat(':') {
            return self.err("expected `:` in prefixed name");
        }
        let ns = self
            .prefixes
            .get(&prefix)
            .cloned()
            .ok_or_else(|| RdfError::UnknownPrefix {
                prefix: prefix.clone(),
                location: self.location(),
            })?;
        let mut local = String::new();
        while let Some(c) = self.peek() {
            self.budget
                .check_literal(local.len(), "turtle local name")?;
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                // A trailing '.' terminates the statement, not the name.
                if c == '.'
                    && !matches!(self.peek_at(1), Some(d) if d.is_alphanumeric() || d == '_')
                {
                    break;
                }
                local.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Ok(Iri::new(format!("{ns}{local}")))
    }

    fn parse_blank_label(&mut self) -> Result<Term> {
        if !(self.peek() == Some('_') && self.peek_at(1) == Some(':')) {
            return self.err("expected `_:`");
        }
        self.bump();
        self.bump();
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                label.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return self.err("empty blank node label");
        }
        Ok(Term::blank(label))
    }

    fn parse_blank_node_property_list(&mut self) -> Result<Term> {
        // The recursion through parse_object bottoms out at max_depth
        // instead of overflowing the stack on `[ :p [ :p [ ... ] ] ]`.
        self.budget
            .enter("turtle blank node property list nesting")?;
        self.expect_char('[')?;
        let node = self.fresh_blank();
        self.skip_ws();
        if self.eat(']') {
            self.budget.exit();
            return Ok(node);
        }
        self.parse_predicate_object_list(&node)?;
        self.skip_ws();
        self.expect_char(']')?;
        self.budget.exit();
        Ok(node)
    }

    fn parse_collection(&mut self) -> Result<Term> {
        self.budget.enter("turtle collection nesting")?;
        self.expect_char('(')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(')') {
                break;
            }
            if self.peek().is_none() {
                return self.err("unterminated collection");
            }
            items.push(self.parse_object()?);
        }
        let mut head = Term::Iri(rdf::nil());
        for item in items.into_iter().rev() {
            let cell = self.fresh_blank();
            self.insert_triple(Triple::new(cell.clone(), rdf::first(), item))?;
            self.insert_triple(Triple::new(cell.clone(), rdf::rest(), head))?;
            head = cell;
        }
        self.budget.exit();
        Ok(head)
    }

    fn parse_quoted_literal(&mut self) -> Result<Term> {
        let Some(quote) = self.peek() else {
            return self.err("expected quoted literal");
        };
        let long = self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote);
        let lexical = if long {
            self.bump();
            self.bump();
            self.bump();
            let mut s = String::new();
            loop {
                self.budget.check_literal(s.len(), "turtle long string")?;
                if self.peek() == Some(quote)
                    && self.peek_at(1) == Some(quote)
                    && self.peek_at(2) == Some(quote)
                {
                    self.bump();
                    self.bump();
                    self.bump();
                    break;
                }
                match self.bump() {
                    Some('\\') => s.push(self.unescape()?),
                    Some(c) => s.push(c),
                    None => return self.err("unterminated long string"),
                }
            }
            s
        } else {
            self.bump();
            let mut s = String::new();
            loop {
                self.budget.check_literal(s.len(), "turtle string")?;
                match self.bump() {
                    Some(c) if c == quote => break,
                    Some('\\') => s.push(self.unescape()?),
                    Some('\n') => return self.err("newline in short string"),
                    Some(c) => s.push(c),
                    None => return self.err("unterminated string"),
                }
            }
            s
        };
        if self.eat('@') {
            let mut lang = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '-' {
                    lang.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            if lang.is_empty() {
                return self.err("empty language tag");
            }
            return Ok(Term::Literal(Literal::lang(lexical, lang)));
        }
        if self.peek() == Some('^') && self.peek_at(1) == Some('^') {
            self.bump();
            self.bump();
            self.skip_ws();
            let dt = match self.peek() {
                Some('<') => Iri::new(self.parse_resolved_iri()?),
                _ => self.parse_prefixed_name()?,
            };
            return Ok(Term::Literal(Literal::typed(lexical, dt)));
        }
        Ok(Term::Literal(Literal::plain(lexical)))
    }

    fn unescape(&mut self) -> Result<char> {
        match self.bump() {
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('t') => Ok('\t'),
            Some('"') => Ok('"'),
            Some('\'') => Ok('\''),
            Some('\\') => Ok('\\'),
            Some(e @ ('u' | 'U')) => self.unicode_escape(e),
            Some(other) => self.err(format!("unknown escape `\\{other}`")),
            None => self.err("dangling escape"),
        }
    }

    /// Decodes the hex digits of a `\u` (4-digit) or `\U` (8-digit) escape,
    /// the marker character having already been consumed.
    fn unicode_escape(&mut self, marker: char) -> Result<char> {
        let n = if marker == 'u' { 4 } else { 8 };
        let mut hex = String::new();
        for _ in 0..n {
            hex.push(
                self.bump()
                    .ok_or_else(|| self.error("truncated \\u escape"))?,
            );
        }
        let code = u32::from_str_radix(&hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        char::from_u32(code).ok_or_else(|| self.error("\\u out of range"))
    }
}

/// Serializes a graph to Turtle, grouping statements by subject and using the
/// graph's remembered prefixes.
pub fn write_turtle(graph: &Graph) -> String {
    let mut out = String::new();
    let prefixes: Vec<(String, String)> = graph
        .prefixes()
        .iter()
        .filter(|(p, _)| !p.is_empty())
        .cloned()
        .collect();
    for (prefix, ns) in &prefixes {
        out.push_str(&format!("@prefix {prefix}: <{ns}> .\n"));
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }
    let shorten = |iri: &Iri| -> String {
        for (prefix, ns) in &prefixes {
            if let Some(local) = iri.as_str().strip_prefix(ns.as_str()) {
                if !local.is_empty()
                    && local
                        .chars()
                        .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
                {
                    return format!("{prefix}:{local}");
                }
            }
        }
        format!("<{}>", iri.as_str())
    };
    let term_str = |t: &Term| -> String {
        match t {
            Term::Iri(i) => shorten(i),
            Term::Blank(b) => format!("_:{}", b.0),
            Term::Literal(l) => {
                let mut s = format!("\"{}\"", escape_literal(&l.lexical));
                if let Some(lang) = &l.language {
                    s.push('@');
                    s.push_str(lang);
                } else if let Some(dt) = &l.datatype {
                    s.push_str("^^");
                    s.push_str(&shorten(dt));
                }
                s
            }
        }
    };

    let mut current_subject: Option<Term> = None;
    let type_iri = rdf::type_();
    for triple in graph.iter() {
        let pred = if triple.predicate == type_iri {
            "a".to_owned()
        } else {
            shorten(&triple.predicate)
        };
        if current_subject.as_ref() == Some(&triple.subject) {
            out.push_str(&format!(" ;\n    {} {}", pred, term_str(&triple.object)));
        } else {
            if current_subject.is_some() {
                out.push_str(" .\n");
            }
            out.push_str(&format!(
                "{} {} {}",
                term_str(&triple.subject),
                pred,
                term_str(&triple.object)
            ));
            current_subject = Some(triple.subject.clone());
        }
    }
    if current_subject.is_some() {
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "http://example.org/doc";

    #[test]
    fn parses_prefixes_and_statements() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:s ex:p ex:o .\n",
            BASE,
        )
        .expect("parse");
        assert!(g.contains(&Triple::new(
            Term::iri("http://e/s"),
            Iri::new("http://e/p"),
            Term::iri("http://e/o"),
        )));
    }

    #[test]
    fn sparql_style_prefix() {
        let g = parse_turtle("PREFIX ex: <http://e/>\nex:s ex:p ex:o .", BASE).expect("parse");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn a_keyword_and_lists() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             ex:s a ex:T ; ex:p ex:o1 , ex:o2 .\n",
            BASE,
        )
        .expect("parse");
        assert_eq!(g.len(), 3);
        assert!(g.contains(&Triple::new(
            Term::iri("http://e/s"),
            rdf::type_(),
            Term::iri("http://e/T"),
        )));
    }

    #[test]
    fn literals_with_tags_types_and_numbers() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\n\
             @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             ex:s ex:name \"Anna\"@de ; ex:age 42 ; ex:score 3.5 ;\n\
                  ex:ok true ; ex:id \"7\"^^xsd:long .\n",
            BASE,
        )
        .expect("parse");
        assert_eq!(g.len(), 5);
        let s = Term::iri("http://e/s");
        assert_eq!(
            g.object_for(&s, &Iri::new("http://e/age")).unwrap(),
            Term::Literal(Literal::typed("42", Iri::new(format!("{XSD_NS}integer"))))
        );
        assert_eq!(
            g.object_for(&s, &Iri::new("http://e/ok")).unwrap(),
            Term::Literal(Literal::typed("true", Iri::new(format!("{XSD_NS}boolean"))))
        );
    }

    #[test]
    fn long_strings() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\nex:s ex:doc \"\"\"line1\nline2 \"quoted\" end\"\"\" .\n",
            BASE,
        )
        .expect("parse");
        let lit = g.iter().next().unwrap().object;
        assert_eq!(
            lit.as_literal().unwrap().lexical,
            "line1\nline2 \"quoted\" end"
        );
    }

    #[test]
    fn blank_node_property_lists() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\nex:s ex:p [ ex:q ex:o ; ex:r \"x\" ] .\n",
            BASE,
        )
        .expect("parse");
        assert_eq!(g.len(), 3);
        let inner = g
            .object_for(&Term::iri("http://e/s"), &Iri::new("http://e/p"))
            .unwrap();
        assert!(matches!(inner, Term::Blank(_)));
        assert_eq!(g.objects_for(&inner, &Iri::new("http://e/q")).len(), 1);
    }

    #[test]
    fn collections() {
        let g = parse_turtle(
            "@prefix ex: <http://e/> .\nex:s ex:p ( ex:a ex:b ) .\n",
            BASE,
        )
        .expect("parse");
        let head = g
            .object_for(&Term::iri("http://e/s"), &Iri::new("http://e/p"))
            .unwrap();
        assert_eq!(
            g.object_for(&head, &rdf::first()).unwrap(),
            Term::iri("http://e/a")
        );
    }

    #[test]
    fn relative_iris_resolve_against_base() {
        let g = parse_turtle("<#s> <#p> <#o> .", "http://h/doc").expect("parse");
        assert!(g.contains(&Triple::new(
            Term::iri("http://h/doc#s"),
            Iri::new("http://h/doc#p"),
            Term::iri("http://h/doc#o"),
        )));
    }

    #[test]
    fn at_base_directive() {
        let g = parse_turtle("@base <http://nb/x> .\n<#s> <#p> <#o> .", BASE).expect("parse");
        assert!(g.contains(&Triple::new(
            Term::iri("http://nb/x#s"),
            Iri::new("http://nb/x#p"),
            Term::iri("http://nb/x#o"),
        )));
    }

    #[test]
    fn unknown_prefix_errors() {
        assert!(matches!(
            parse_turtle("nope:s nope:p nope:o .", BASE),
            Err(RdfError::UnknownPrefix { .. })
        ));
    }

    #[test]
    fn roundtrip_through_serializer() {
        let src = "@prefix ex: <http://e/> .\n\
                   ex:s a ex:T ; ex:p ex:o1 , ex:o2 ; ex:n \"x\"@en .\n\
                   ex:t ex:q 5 .\n";
        let g = parse_turtle(src, BASE).expect("parse");
        let out = write_turtle(&g);
        let g2 = parse_turtle(&out, BASE).expect("reparse");
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            assert!(g2.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn trailing_semicolon_is_tolerated() {
        let g =
            parse_turtle("@prefix ex: <http://e/> .\nex:s ex:p ex:o ; .\n", BASE).expect("parse");
        assert_eq!(g.len(), 1);
    }
}

//! # sst-rdf — RDF substrate for the SOQA-SimPack Toolkit
//!
//! The original toolkit (Ziegler et al., EDBT 2006) wrapped OWL and DAML
//! ontologies through Java RDF stacks. This crate is the from-scratch Rust
//! equivalent: a namespace-aware XML pull parser, parsers and serializers for
//! RDF/XML, N-Triples, and Turtle, and an indexed in-memory triple store that
//! the ontology wrappers in `sst-wrappers` query.
//!
//! ```
//! use sst_rdf::{parse_turtle, Term, Iri};
//!
//! let graph = parse_turtle(
//!     "@prefix ex: <http://e/> . ex:Student ex:subClassOf ex:Person .",
//!     "http://e/doc",
//! ).unwrap();
//! assert_eq!(
//!     graph.object_for(&Term::iri("http://e/Student"), &Iri::new("http://e/subClassOf")),
//!     Some(Term::iri("http://e/Person")),
//! );
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod error;
pub mod graph;
pub mod inference;
pub mod model;
pub mod ntriples;
pub mod rdfxml;
pub mod rdfxml_writer;
pub mod sparql;
pub mod turtle;
pub mod vocab;
pub mod xml;

pub use error::{Location, RdfError, Result};
pub use graph::Graph;
pub use inference::{rdfs_closure, InferenceOptions};
pub use model::{BlankNode, Iri, Literal, Term, Triple};
pub use ntriples::{
    parse_ntriples, parse_ntriples_partial, parse_ntriples_with_limits, write_ntriples,
};
pub use rdfxml::{
    parse_rdfxml, parse_rdfxml_partial, parse_rdfxml_with_limits, parse_rdfxml_with_metrics,
    resolve_iri,
};
pub use rdfxml_writer::write_rdfxml;
pub use sparql::{parse_select, select, Binding, SelectQuery};
pub use sst_limits::{Budget, LimitKind, LimitViolation, Limits, Partial};
pub use turtle::{
    parse_turtle, parse_turtle_partial, parse_turtle_with_limits, parse_turtle_with_metrics,
    write_turtle,
};

/// Bumps the `<prefix>.limit.<kind>` counter for a violation when metrics
/// are wired in.
pub(crate) fn record_limit_violation(
    metrics: Option<&sst_obs::Metrics>,
    prefix: &str,
    violation: &sst_limits::LimitViolation,
) {
    if let Some(m) = metrics {
        m.inc(&format!("{prefix}.limit.{}", violation.kind.name()));
    }
}

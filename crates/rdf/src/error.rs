//! Error types for the RDF substrate.

use std::fmt;

/// Position of an error inside a parsed document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub column: u32,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Errors produced while parsing XML, RDF/XML, N-Triples, or Turtle input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// Low-level XML well-formedness violation.
    Xml { message: String, location: Location },
    /// The XML was well-formed but is not valid RDF/XML.
    RdfXml { message: String, location: Location },
    /// Syntax error in an N-Triples document.
    NTriples { message: String, line: u32 },
    /// Syntax error in a Turtle document.
    Turtle { message: String, location: Location },
    /// An undeclared namespace prefix was used.
    UnknownPrefix { prefix: String, location: Location },
    /// An IRI failed basic validation.
    InvalidIri { iri: String },
    /// A resource-governance limit was exceeded while parsing.
    Limit(sst_limits::LimitViolation),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Xml { message, location } => {
                write!(f, "XML error at {location}: {message}")
            }
            RdfError::RdfXml { message, location } => {
                write!(f, "RDF/XML error at {location}: {message}")
            }
            RdfError::NTriples { message, line } => {
                write!(f, "N-Triples error at line {line}: {message}")
            }
            RdfError::Turtle { message, location } => {
                write!(f, "Turtle error at {location}: {message}")
            }
            RdfError::UnknownPrefix { prefix, location } => {
                write!(f, "unknown namespace prefix `{prefix}` at {location}")
            }
            RdfError::InvalidIri { iri } => write!(f, "invalid IRI: `{iri}`"),
            RdfError::Limit(violation) => write!(f, "{violation}"),
        }
    }
}

impl std::error::Error for RdfError {}

impl From<sst_limits::LimitViolation> for RdfError {
    fn from(violation: sst_limits::LimitViolation) -> Self {
        RdfError::Limit(violation)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RdfError>;

//! Multi-ontology tenancy: a named-corpus registry with zero-downtime
//! hot swap.
//!
//! A [`Tenant`] is one servable corpus — an owned `Arc<SstToolkit>` plus
//! its own sharded similarity LRU ([`sst_core::CachedSimilarity`]), so
//! tenants never contend on one memo and a swapped-out corpus takes its
//! stale cache entries with it. [`Corpora`] maps corpus names to tenants
//! behind a `RwLock`; requests resolve their tenant with a brief read
//! lock and then hold only the `Arc`.
//!
//! ## Hot-swap protocol
//!
//! [`Corpora::insert`] under a *new* name registers a corpus;
//! under an *existing* name it atomically replaces the `Arc<Tenant>` in
//! the map. In-flight requests keep the clone they resolved and finish
//! on the old corpus; the old toolkit is dropped when the last of those
//! requests completes. No request ever observes a half-swapped corpus,
//! and nothing blocks: the write lock is held only for the map update.
//!
//! ## Metrics
//!
//! The registry reports on the **default tenant's** metrics registry
//! (the server's report): `server.tenant.corpora` (gauge, registered
//! corpora) and `server.tenant.swaps` (counter, hot swaps of a live
//! name). Per-corpus cache traffic stays on each tenant toolkit's own
//! registry (`core.cache.*`).

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use sst_core::{CachedSimilarity, Metrics, SstToolkit};
use sst_obs::{Counter, Gauge};

/// One servable corpus: a toolkit and its private similarity cache.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    toolkit: Arc<SstToolkit>,
    cache: CachedSimilarity<Arc<SstToolkit>>,
}

impl Tenant {
    fn new(name: &str, toolkit: Arc<SstToolkit>, cache_capacity: usize) -> Tenant {
        Tenant {
            name: name.to_owned(),
            cache: CachedSimilarity::with_capacity(Arc::clone(&toolkit), cache_capacity),
            toolkit,
        }
    }

    /// The corpus name the tenant is registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn toolkit(&self) -> &SstToolkit {
        &self.toolkit
    }

    /// The tenant's similarity LRU (shared by `/similarity` and `/rank`).
    pub fn cache(&self) -> &CachedSimilarity<Arc<SstToolkit>> {
        &self.cache
    }
}

/// The named-corpus registry (see module docs).
#[derive(Debug)]
pub struct Corpora {
    default_name: String,
    cache_capacity: usize,
    /// Every tenant, keyed by corpus name; always contains the default.
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// The default tenant, denormalized so resolution without a corpus
    /// selector never needs a fallible map lookup. Updated in lockstep
    /// with `tenants` when the default name is hot-swapped.
    default: RwLock<Arc<Tenant>>,
    /// The default tenant's registry at construction time — the server's
    /// report; endpoint and tenancy metrics live here.
    metrics: Metrics,
    corpora_gauge: Arc<Gauge>,
    swaps: Arc<Counter>,
}

impl Corpora {
    /// A registry holding `toolkit` as the default corpus under
    /// `default_name`, with per-tenant caches bounded at
    /// [`CachedSimilarity::DEFAULT_CAPACITY`] pairs.
    pub fn new(default_name: &str, toolkit: Arc<SstToolkit>) -> Corpora {
        Self::with_cache_capacity(
            default_name,
            toolkit,
            CachedSimilarity::<Arc<SstToolkit>>::DEFAULT_CAPACITY,
        )
    }

    /// As [`Corpora::new`], with an explicit per-tenant cache bound.
    pub fn with_cache_capacity(
        default_name: &str,
        toolkit: Arc<SstToolkit>,
        cache_capacity: usize,
    ) -> Corpora {
        let metrics = toolkit.metrics().clone();
        let corpora_gauge = metrics.gauge("server.tenant.corpora");
        let swaps = metrics.counter("server.tenant.swaps");
        let tenant = Arc::new(Tenant::new(default_name, toolkit, cache_capacity));
        let mut tenants = HashMap::new();
        tenants.insert(default_name.to_owned(), Arc::clone(&tenant));
        corpora_gauge.set(1);
        Corpora {
            default_name: default_name.to_owned(),
            cache_capacity,
            tenants: RwLock::new(tenants),
            default: RwLock::new(tenant),
            metrics,
            corpora_gauge,
            swaps,
        }
    }

    /// The server-wide metrics registry (the default tenant's).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The name the default corpus is registered under.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// The default corpus — what requests without an `?ontology=`
    /// selector serve from.
    pub fn default_tenant(&self) -> Arc<Tenant> {
        Arc::clone(&self.default.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The corpus registered under `name`, if any. The returned `Arc`
    /// stays valid across hot swaps: a request keeps serving from the
    /// corpus it resolved even while a replacement goes live.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(Arc::clone)
    }

    /// Registers `toolkit` under `name`, or hot-swaps it in if the name
    /// is live. Returns `true` on a swap. The write lock is held only
    /// for the map update; in-flight requests finish on the corpus they
    /// already resolved.
    pub fn insert(&self, name: &str, toolkit: Arc<SstToolkit>) -> bool {
        let tenant = Arc::new(Tenant::new(name, toolkit, self.cache_capacity));
        let replaced = {
            let mut tenants = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
            let replaced = tenants
                .insert(name.to_owned(), Arc::clone(&tenant))
                .is_some();
            if name == self.default_name {
                *self.default.write().unwrap_or_else(PoisonError::into_inner) = tenant;
            }
            self.corpora_gauge.set(tenants.len() as i64);
            replaced
        };
        if replaced {
            self.swaps.inc();
        }
        replaced
    }

    /// Unregisters a named corpus. The default corpus cannot be removed
    /// (requests without a selector must always have somewhere to go);
    /// returns `true` if a corpus was removed.
    pub fn remove(&self, name: &str) -> bool {
        if name == self.default_name {
            return false;
        }
        let mut tenants = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
        let removed = tenants.remove(name).is_some();
        self.corpora_gauge.set(tenants.len() as i64);
        removed
    }

    /// All registered corpus names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered corpora (at least one: the default).
    pub fn len(&self) -> usize {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_core::SstBuilder;
    use sst_soqa::{OntologyBuilder, OntologyMetadata};

    fn toolkit(ontology: &str, concepts: &[&str]) -> Arc<SstToolkit> {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: ontology.into(),
            ..OntologyMetadata::default()
        });
        let root = b.concept(concepts[0]);
        for name in &concepts[1..] {
            let c = b.concept(name);
            b.add_subclass(c, root);
        }
        Arc::new(
            SstBuilder::new()
                .register_ontology(b.build())
                .unwrap()
                .build(),
        )
    }

    #[test]
    fn default_is_always_resolvable_and_unremovable() {
        let corpora = Corpora::new("default", toolkit("uni", &["Thing", "Person"]));
        assert_eq!(corpora.default_name(), "default");
        assert_eq!(corpora.default_tenant().name(), "default");
        assert_eq!(corpora.get("default").unwrap().name(), "default");
        assert!(!corpora.remove("default"));
        assert_eq!(corpora.len(), 1);
        assert!(!corpora.is_empty());
    }

    #[test]
    fn named_registration_and_removal() {
        let corpora = Corpora::new("default", toolkit("uni", &["Thing", "Person"]));
        assert!(corpora.get("zoo").is_none());
        assert!(!corpora.insert("zoo", toolkit("zoo", &["Animal", "Cat"])));
        assert_eq!(corpora.len(), 2);
        assert_eq!(corpora.names(), vec!["default", "zoo"]);
        assert!(corpora
            .get("zoo")
            .unwrap()
            .toolkit()
            .soqa()
            .ontology("zoo")
            .is_ok());
        assert!(corpora.remove("zoo"));
        assert!(corpora.get("zoo").is_none());
        assert_eq!(corpora.len(), 1);
    }

    #[test]
    fn hot_swap_keeps_old_arc_alive_for_holders() {
        let corpora = Corpora::new("default", toolkit("uni", &["Thing", "Person"]));
        corpora.insert("zoo", toolkit("zoo", &["Animal", "Cat"]));
        let old = corpora.get("zoo").unwrap();
        // Swap in a corpus with a different concept inventory.
        assert!(corpora.insert("zoo", toolkit("zoo", &["Animal", "Dog"])));
        // The holder still serves the corpus it resolved…
        assert!(old.toolkit().soqa().resolve("zoo", "Cat").is_ok());
        // …while new resolutions see the replacement.
        let new = corpora.get("zoo").unwrap();
        assert!(new.toolkit().soqa().resolve("zoo", "Dog").is_ok());
        assert!(new.toolkit().soqa().resolve("zoo", "Cat").is_err());
    }

    #[test]
    fn swapping_the_default_updates_both_paths() {
        let first = toolkit("uni", &["Thing", "Person"]);
        let corpora = Corpora::new("default", Arc::clone(&first));
        assert!(corpora.insert("default", toolkit("uni", &["Thing", "Robot"])));
        assert!(corpora
            .default_tenant()
            .toolkit()
            .soqa()
            .resolve("uni", "Robot")
            .is_ok());
        assert!(corpora
            .get("default")
            .unwrap()
            .toolkit()
            .soqa()
            .resolve("uni", "Robot")
            .is_ok());
        // Metrics land on the *construction-time* default registry even
        // after the default corpus is swapped.
        let snap = corpora.metrics().snapshot();
        assert_eq!(snap.gauge("server.tenant.corpora"), Some(1));
        assert_eq!(snap.counter("server.tenant.swaps"), Some(1));
        assert!(Arc::ptr_eq(
            &first.metrics().counter("server.tenant.swaps"),
            &corpora.metrics().counter("server.tenant.swaps"),
        ));
    }
}

//! A bounded MPMC work queue for accepted connections.
//!
//! The accept loop pushes, worker threads pop. The queue is *strictly
//! bounded*: [`BoundedQueue::try_push`] hands the item back instead of
//! blocking or growing when the queue is full — the caller sheds the
//! request (HTTP 429) rather than queuing unboundedly. This is the
//! load-shedding half of the server's overload policy; the repo lint
//! forbids unbounded channels in this crate for exactly that reason.
//!
//! Closing the queue ([`BoundedQueue::close`]) lets workers drain every
//! item already accepted before they observe the shutdown — the graceful
//! half of the shutdown path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A mutex/condvar bounded queue (see module docs).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    /// Signals "an item arrived or the queue closed".
    nonempty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            nonempty: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // Queued connections carry no invariants a panicking holder could
        // break; recover poisoning instead of propagating it.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (for gauges; racy by nature).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or returns it when the queue is full or closed —
    /// the caller decides how to shed it. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        {
            let mut inner = self.lock();
            if inner.closed || inner.items.len() >= self.capacity {
                return Err(item);
            }
            inner.items.push_back(item);
        }
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` only once the queue is closed *and* drained,
    /// so no accepted request is dropped by shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .nonempty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: further pushes fail, pops drain the remaining
    /// items and then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_returns_the_item() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "bounded: overflow is shed");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert_eq!(q.try_push(3), Err(3), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(1), "accepted items drain after close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| q.pop());
            let b = scope.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.try_push(7).ok();
            q.close();
            let (ra, rb) = (a.join().expect("a"), b.join().expect("b"));
            // One popper got the item, the other saw the close.
            assert!(
                (ra == Some(7) && rb.is_none()) || (rb == Some(7) && ra.is_none()),
                "{ra:?} {rb:?}"
            );
        });
    }
}

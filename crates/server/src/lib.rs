//! `sst-server` — a concurrent, dependency-free `std::net` HTTP/1.1
//! service exposing the SOQA-SimPack Toolkit over the wire.
//!
//! Overload and failure policy, in one place:
//!
//! - **Fixed worker pool.** `workers` threads handle requests; the accept
//!   loop never does toolkit work. All threads live inside one
//!   [`std::thread::scope`], so nothing outlives [`Server::run`] and every
//!   panic surfaces as an error instead of a silent dead worker.
//! - **Bounded queue, shed on overflow.** Accepted connections go through
//!   a [`queue::BoundedQueue`] of fixed capacity. When it is full the
//!   accept loop answers `429 Too Many Requests` with a `Retry-After`
//!   hint immediately — the server never queues unboundedly and never
//!   makes a client wait to be told "later".
//! - **Per-request deadline.** Each connection gets OS read/write
//!   timeouts (`request_deadline`); a slow or stalled client gets `408`
//!   and the worker moves on. CPU-bound work is governed separately: the
//!   SOQA-QL endpoint evaluates under an [`sst_limits::Limits`] step/item
//!   budget, so a pathological query fails with `422` instead of pinning
//!   a worker past the deadline.
//! - **Graceful shutdown.** [`ShutdownHandle::shutdown`] stops the accept
//!   loop and closes the queue; workers drain every already-accepted
//!   request before exiting, so an accepted request is always answered.
//!
//! Similarity endpoints run through the sharded, capacity-bounded LRU of
//! [`sst_core::CachedSimilarity`]; each corpus in the [`Corpora`]
//! registry owns its own cache (capacity set on the registry).
//!
//! The server serves a [`Corpora`] registry of named corpora; the
//! `ontology` query parameter routes a request to a corpus (see
//! [`router`] module docs), and [`Corpora::insert`] hot-swaps a live
//! corpus with zero downtime.

#![forbid(unsafe_code)]

pub mod http;
pub mod json;
pub mod queue;
pub mod router;
pub mod tenancy;

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sst_limits::Limits;

pub use tenancy::{Corpora, Tenant};

use http::{
    read_request, write_response, ReadOutcome, BAD_REQUEST, PAYLOAD_TOO_LARGE, REQUEST_TIMEOUT,
    TOO_MANY_REQUESTS,
};
use queue::BoundedQueue;
use router::Router;

/// Tuning knobs for a [`Server`]. `Default` is sized for tests and small
/// deployments; production callers should set every field deliberately.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests (clamped to at least one).
    pub workers: usize,
    /// Accepted connections waiting for a worker; overflow is shed
    /// with `429` (clamped to at least one).
    pub queue_capacity: usize,
    /// Per-request read/write timeout; a stalled peer gets `408`.
    pub request_deadline: Duration,
    /// Value of the `Retry-After` header on shed (`429`) responses.
    pub retry_after_secs: u32,
    /// Cap on a request body (`413` beyond it).
    pub max_request_bytes: usize,
    /// Evaluation budget for `POST /ql` queries (`422` when blown).
    pub ql_limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            request_deadline: Duration::from_secs(2),
            retry_after_secs: 1,
            max_request_bytes: 64 * 1024,
            ql_limits: Limits::default(),
        }
    }
}

/// Failures starting or running a [`Server`].
#[derive(Debug)]
pub enum ServerError {
    /// Binding or accepting failed at the socket layer.
    Io(io::Error),
    /// A worker thread panicked; the server shut down.
    Worker(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
            ServerError::Worker(m) => write!(f, "server worker failed: {m}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Worker(_) => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

/// Stops a running [`Server`] from another thread.
///
/// Cloneable and cheap; calling [`ShutdownHandle::shutdown`] more than
/// once is harmless.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: the accept loop stops taking new connections,
    /// the queue closes, and workers drain in-flight requests.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking `accept` by dialing it; the loop re-checks the
        // flag before serving. A failed dial means the listener is already
        // gone, which is exactly what we wanted.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
    }
}

/// The query service (see module docs for the overload policy).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener. The server does not serve until [`Server::run`].
    pub fn bind(config: ServerConfig) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// Serves the given corpus registry until [`ShutdownHandle::shutdown`]
    /// is called, blocking the calling thread. Worker threads are scoped
    /// to this call: when it returns, every accepted request has been
    /// answered and every thread joined.
    ///
    /// The registry stays shared with the caller, who may
    /// [`Corpora::insert`] replacement corpora while the server runs —
    /// in-flight requests finish on the corpus they resolved.
    pub fn run(&self, corpora: &Corpora) -> Result<(), ServerError> {
        let config = &self.config;
        let router = Router::new(corpora, config.ql_limits, Arc::clone(&self.stop));
        let work: BoundedQueue<TcpStream> = BoundedQueue::new(config.queue_capacity);
        let metrics = corpora.metrics();
        let accepted = metrics.counter("server.accepted");
        let shed = metrics.counter("server.shed");
        let deadline_hits = metrics.counter("server.deadline_hits");
        let write_failures = metrics.counter("server.http.write_failures");
        let workers = config.workers.max(1);
        let retry_after = format!("{}", config.retry_after_secs);

        let mut worker_failure: Option<String> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let work = &work;
                let router = &router;
                let deadline_hits = &deadline_hits;
                let write_failures = &write_failures;
                handles.push(scope.spawn(move || {
                    while let Some(mut stream) = work.pop() {
                        serve_connection(
                            &mut stream,
                            router,
                            config.max_request_bytes,
                            deadline_hits,
                            write_failures,
                        );
                    }
                }));
            }

            loop {
                let (stream, _) = match self.listener.accept() {
                    Ok(pair) => pair,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        if self.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept failure (EMFILE, aborted
                        // handshake); yield briefly instead of spinning.
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                };
                if self.stop.load(Ordering::SeqCst) {
                    // The shutdown wake-up connection (or a straggler that
                    // raced it); drop without a response.
                    break;
                }
                accepted.inc();
                // The OS timeouts are the request deadline; a connection we
                // cannot configure cannot be governed, so drop it.
                if stream
                    .set_read_timeout(Some(config.request_deadline))
                    .is_err()
                    || stream
                        .set_write_timeout(Some(config.request_deadline))
                        .is_err()
                {
                    continue;
                }
                if let Err(mut rejected) = work.try_push(stream) {
                    shed.inc();
                    let shed_reply = write_response(
                        &mut rejected,
                        TOO_MANY_REQUESTS,
                        "application/json",
                        b"{\"error\":\"server overloaded, retry later\"}",
                        &[("retry-after", retry_after.clone())],
                    );
                    if shed_reply.is_err() {
                        write_failures.inc();
                    }
                }
            }

            // Drain: workers finish everything already accepted, then stop.
            work.close();
            for handle in handles {
                if handle.join().is_err() && worker_failure.is_none() {
                    worker_failure = Some("worker thread panicked".to_owned());
                }
            }
        });

        match worker_failure {
            Some(m) => Err(ServerError::Worker(m)),
            None => Ok(()),
        }
    }
}

/// Reads, dispatches, and answers one connection's single request. A
/// response the peer never received (it hung up, or the write deadline
/// fired) is not silent: it counts in `server.http.write_failures`.
fn serve_connection(
    stream: &mut TcpStream,
    router: &Router<'_>,
    max_body_bytes: usize,
    deadline_hits: &sst_obs::Counter,
    write_failures: &sst_obs::Counter,
) {
    let wrote = match read_request(stream, max_body_bytes) {
        ReadOutcome::Ok(request) => {
            let answer = router.handle_timed(&request);
            write_response(
                stream,
                answer.status,
                answer.content_type,
                &answer.body,
                &[],
            )
        }
        ReadOutcome::Closed => Ok(()),
        ReadOutcome::Deadline => {
            deadline_hits.inc();
            write_response(
                stream,
                REQUEST_TIMEOUT,
                "application/json",
                b"{\"error\":\"request deadline exceeded\"}",
                &[],
            )
        }
        ReadOutcome::TooLarge => write_response(
            stream,
            PAYLOAD_TOO_LARGE,
            "application/json",
            b"{\"error\":\"request too large\"}",
            &[],
        ),
        ReadOutcome::Malformed => write_response(
            stream,
            BAD_REQUEST,
            "application/json",
            b"{\"error\":\"malformed HTTP request\"}",
            &[],
        ),
        ReadOutcome::DuplicateParam(key) => write_response(
            stream,
            BAD_REQUEST,
            "application/json",
            format!(
                "{{\"error\":\"duplicate query parameter `{}`\"}}",
                http::json_escape(&key)
            )
            .as_bytes(),
            &[],
        ),
    };
    if wrote.is_err() {
        write_failures.inc();
    }
}

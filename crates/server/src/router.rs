//! Request dispatch: maps parsed HTTP requests onto toolkit services.
//!
//! Handlers are pure with respect to the connection: they take a
//! [`Request`] and return status + body; all socket I/O stays in the
//! worker loop. Each endpoint records a request counter and a latency
//! histogram in the server's metrics registry
//! (`server.requests.<endpoint>` / `server.latency.<endpoint>`), so
//! `GET /metrics` exposes the server's own traffic next to the measure
//! and cache metrics.
//!
//! ## Corpus routing
//!
//! The router serves from a [`Corpora`] registry. The `ontology` query
//! parameter selects the corpus:
//!
//! - `/similarity`, `/align`, `/ql`: `?ontology=<corpus>` routes to that
//!   corpus (404 for an unknown name); absent, the default corpus
//!   serves — existing single-corpus clients are unaffected.
//! - `/rank`: `ontology` has always named the query concept's ontology,
//!   so it does double duty — a value naming a registered corpus routes
//!   there (corpora are conventionally named after the ontology they
//!   serve, and the value is resolved as an ontology name *inside* that
//!   corpus); any other value falls back to the default corpus with the
//!   value as an in-corpus ontology name, preserving compatibility.
//!   A corpus name therefore shadows a same-named default-corpus
//!   ontology on `/rank`.
//!
//! Handlers clone the resolved tenant's `Arc` before doing work, so a
//! concurrent hot swap ([`Corpora::insert`]) never disturbs an in-flight
//! request — it finishes on the corpus it resolved.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sst_core::{
    align_with_limits, measure_ids, AlignmentConfig, Amalgamation, CandidateGen,
    ConceptAndSimilarity, ConceptSet, MatchMode, SstError, SstToolkit,
};
use sst_limits::Limits;
use sst_obs::{Counter, Histogram, Metrics};
use sst_soqa::ql::Cell;
use sst_soqa::SoqaError;

use crate::http::{
    json_escape, json_f64, Request, Status, BAD_REQUEST, INTERNAL_ERROR, METHOD_NOT_ALLOWED,
    NOT_FOUND, OK, SERVICE_UNAVAILABLE, UNPROCESSABLE,
};
use crate::json::{self, Json};
use crate::tenancy::{Corpora, Tenant};

/// One endpoint's pre-resolved metric handles.
#[derive(Debug)]
struct EndpointMetrics {
    requests: Arc<Counter>,
    latency: Arc<Histogram>,
}

impl EndpointMetrics {
    fn register(metrics: &Metrics, endpoint: &str) -> Self {
        EndpointMetrics {
            requests: metrics.counter(&format!("server.requests.{endpoint}")),
            latency: metrics.histogram(&format!("server.latency.{endpoint}")),
        }
    }
}

/// Shared per-server state: the corpus registry, the SOQA-QL evaluation
/// budget, the drain flag, and metric handles.
#[derive(Debug)]
pub struct Router<'a> {
    corpora: &'a Corpora,
    ql_limits: Limits,
    /// Set once shutdown is requested; `/healthz` turns 503 so a load
    /// balancer stops routing to a draining replica.
    draining: Arc<AtomicBool>,
    ql: EndpointMetrics,
    similarity: EndpointMetrics,
    rank: EndpointMetrics,
    align: EndpointMetrics,
    metrics_ep: EndpointMetrics,
    healthz: EndpointMetrics,
    other: EndpointMetrics,
    align_correspondences: Arc<Counter>,
    rank_approx_requests: Arc<Counter>,
    rank_approx_latency: Arc<Histogram>,
    responses_2xx: Arc<Counter>,
    responses_4xx: Arc<Counter>,
    responses_5xx: Arc<Counter>,
    /// `server.tenant.default` — requests served by the default corpus.
    tenant_default: Arc<Counter>,
    /// `server.tenant.named` — requests routed to a named corpus.
    tenant_named: Arc<Counter>,
    /// `server.tenant.unknown` — corpus selectors that 404ed.
    tenant_unknown: Arc<Counter>,
}

/// A handler's answer, ready for the HTTP layer.
#[derive(Debug)]
pub struct Answer {
    pub status: Status,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Answer {
    fn json(status: Status, body: String) -> Answer {
        Answer {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    fn text(status: Status, body: String) -> Answer {
        Answer {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    fn error(status: Status, message: &str) -> Answer {
        Answer::json(
            status,
            format!("{{\"error\":\"{}\"}}", json_escape(message)),
        )
    }
}

impl<'a> Router<'a> {
    pub fn new(corpora: &'a Corpora, ql_limits: Limits, draining: Arc<AtomicBool>) -> Self {
        let metrics = corpora.metrics();
        Router {
            corpora,
            ql_limits,
            draining,
            ql: EndpointMetrics::register(metrics, "ql"),
            similarity: EndpointMetrics::register(metrics, "similarity"),
            rank: EndpointMetrics::register(metrics, "rank"),
            align: EndpointMetrics::register(metrics, "align"),
            metrics_ep: EndpointMetrics::register(metrics, "metrics"),
            healthz: EndpointMetrics::register(metrics, "healthz"),
            other: EndpointMetrics::register(metrics, "other"),
            align_correspondences: metrics.counter("server.align.correspondences"),
            rank_approx_requests: metrics.counter("server.rank.approx.requests"),
            rank_approx_latency: metrics.histogram("server.rank.approx.latency"),
            responses_2xx: metrics.counter("server.responses.2xx"),
            responses_4xx: metrics.counter("server.responses.4xx"),
            responses_5xx: metrics.counter("server.responses.5xx"),
            tenant_default: metrics.counter("server.tenant.default"),
            tenant_named: metrics.counter("server.tenant.named"),
            tenant_unknown: metrics.counter("server.tenant.unknown"),
        }
    }

    /// The corpus registry the router serves from.
    pub fn corpora(&self) -> &Corpora {
        self.corpora
    }

    /// Resolves the corpus a request addresses via its `ontology` query
    /// parameter: absent → default corpus, known name → that corpus,
    /// unknown name → 404. Used by the endpoints where `ontology` is
    /// purely a corpus selector (`/similarity`, `/align`, `/ql`).
    fn corpus_for(&self, request: &Request) -> Result<Arc<Tenant>, Answer> {
        match request.param("ontology") {
            None => {
                self.tenant_default.inc();
                Ok(self.corpora.default_tenant())
            }
            Some(name) => match self.corpora.get(name) {
                Some(tenant) => {
                    self.tenant_named.inc();
                    Ok(tenant)
                }
                None => {
                    self.tenant_unknown.inc();
                    Err(Answer::error(
                        NOT_FOUND,
                        &format!("unknown corpus `{name}`"),
                    ))
                }
            },
        }
    }

    /// Dispatches one parsed request.
    pub fn handle(&self, request: &Request) -> Answer {
        let (endpoint, answer) = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/ql") => (&self.ql, self.handle_ql(request)),
            ("GET", "/similarity") => (&self.similarity, self.handle_similarity(request)),
            ("GET", "/rank") => (&self.rank, self.handle_rank(request)),
            ("POST", "/align") => (&self.align, self.handle_align(request)),
            ("GET", "/metrics") => (&self.metrics_ep, self.handle_metrics()),
            ("GET", "/healthz") => (&self.healthz, self.handle_healthz()),
            (_, "/ql" | "/similarity" | "/rank" | "/align" | "/metrics" | "/healthz") => (
                &self.other,
                Answer::error(METHOD_NOT_ALLOWED, "method not allowed"),
            ),
            _ => (&self.other, Answer::error(NOT_FOUND, "no such endpoint")),
        };
        endpoint.requests.inc();
        match answer.status.0 {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            _ => self.responses_5xx.inc(),
        }
        answer
    }

    /// Wraps [`Router::handle`] with the endpoint latency histogram.
    pub fn handle_timed(&self, request: &Request) -> Answer {
        let start = Instant::now();
        let answer = self.handle(request);
        let histogram = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/ql") => &self.ql.latency,
            ("GET", "/similarity") => &self.similarity.latency,
            ("GET", "/rank") => &self.rank.latency,
            ("POST", "/align") => &self.align.latency,
            ("GET", "/metrics") => &self.metrics_ep.latency,
            ("GET", "/healthz") => &self.healthz.latency,
            _ => &self.other.latency,
        };
        histogram.observe(start.elapsed());
        answer
    }

    /// `GET /healthz` — `200 ok` while serving. Once shutdown has been
    /// requested the replica is draining: already-accepted requests are
    /// still answered, but health turns `503` so a balancer routes new
    /// traffic elsewhere instead of into a closing listener.
    fn handle_healthz(&self) -> Answer {
        if self.draining.load(Ordering::SeqCst) {
            Answer::text(SERVICE_UNAVAILABLE, "draining\n".to_owned())
        } else {
            Answer::text(OK, "ok\n".to_owned())
        }
    }

    /// `POST /ql` — body is the SOQA-QL query text; evaluation is
    /// budget-governed so a pathological query fails structured instead of
    /// holding the worker. `?ontology=` selects the corpus to query.
    fn handle_ql(&self, request: &Request) -> Answer {
        let tenant = match self.corpus_for(request) {
            Ok(t) => t,
            Err(answer) => return answer,
        };
        let query = request.body_text();
        if query.trim().is_empty() {
            return Answer::error(BAD_REQUEST, "empty SOQA-QL query body");
        }
        match tenant.toolkit().query_with_limits(&query, &self.ql_limits) {
            Ok(table) => {
                let columns: Vec<String> = table
                    .columns
                    .iter()
                    .map(|c| format!("\"{}\"", json_escape(c)))
                    .collect();
                let rows: Vec<String> = table
                    .rows
                    .iter()
                    .map(|row| {
                        let cells: Vec<String> = row.iter().map(cell_to_json).collect();
                        format!("[{}]", cells.join(","))
                    })
                    .collect();
                Answer::json(
                    OK,
                    format!(
                        "{{\"columns\":[{}],\"rows\":[{}]}}",
                        columns.join(","),
                        rows.join(",")
                    ),
                )
            }
            Err(e) => error_answer(&e),
        }
    }

    /// `GET /similarity?first=&first_ontology=&second=&second_ontology=&measure=`
    /// (`?ontology=` selects the corpus).
    fn handle_similarity(&self, request: &Request) -> Answer {
        let tenant = match self.corpus_for(request) {
            Ok(t) => t,
            Err(answer) => return answer,
        };
        let (first, first_onto, second, second_onto) = match (
            request.param("first"),
            request.param("first_ontology"),
            request.param("second"),
            request.param("second_ontology"),
        ) {
            (Some(a), Some(ao), Some(b), Some(bo)) => (a, ao, b, bo),
            _ => {
                return Answer::error(
                    BAD_REQUEST,
                    "required: first, first_ontology, second, second_ontology",
                )
            }
        };
        let measure = match resolve_measure(tenant.toolkit(), request) {
            Ok(m) => m,
            Err(answer) => return answer,
        };
        match tenant
            .cache()
            .get_similarity(first, first_onto, second, second_onto, measure)
        {
            Ok(value) => Answer::json(
                OK,
                format!(
                    "{{\"similarity\":{},\"measure\":{}}}",
                    json_f64(value),
                    measure
                ),
            ),
            Err(e) => error_answer(&e),
        }
    }

    /// `GET /rank?concept=&ontology=&k=&measure=&approx=` — k most
    /// similar concepts over every registered concept.
    ///
    /// `ontology` does corpus double duty (see module docs): a value
    /// naming a registered corpus routes there; anything else serves
    /// from the default corpus with the value as an in-corpus ontology
    /// name.
    ///
    /// Parameter audit: `k=0` and malformed or out-of-range numerics are
    /// 400, `k` larger than the concept set truncates to the full set
    /// (200), and `approx` accepts only `true`/`1`/`false`/`0`. The
    /// approximate path serves the dense-vector measure from the IVF
    /// index and bypasses the similarity cache (it never computes
    /// pairwise scores that would be worth caching); combining
    /// `approx=true` with any other `measure` is a 400, since no other
    /// measure has an embedding-space equivalent.
    fn handle_rank(&self, request: &Request) -> Answer {
        let (concept, ontology) = match (request.param("concept"), request.param("ontology")) {
            (Some(c), Some(o)) => (c, o),
            _ => return Answer::error(BAD_REQUEST, "required: concept, ontology"),
        };
        let tenant = match self.corpora.get(ontology) {
            Some(tenant) => {
                self.tenant_named.inc();
                tenant
            }
            None => {
                self.tenant_default.inc();
                self.corpora.default_tenant()
            }
        };
        let k = match request.param("k").unwrap_or("5").parse::<usize>() {
            Ok(k) if k > 0 => k,
            _ => return Answer::error(BAD_REQUEST, "k must be a positive integer"),
        };
        let approx = match request.param("approx") {
            None | Some("false") | Some("0") => false,
            Some("true") | Some("1") => true,
            Some(_) => return Answer::error(BAD_REQUEST, "approx must be true or false"),
        };
        let measure = match resolve_measure(tenant.toolkit(), request) {
            Ok(m) => m,
            Err(answer) => return answer,
        };
        if approx {
            if request.param("measure").is_some() && measure != measure_ids::DENSE_VECTOR_MEASURE {
                return Answer::error(
                    BAD_REQUEST,
                    "approx=true serves only the dense_vector measure",
                );
            }
            self.rank_approx_requests.inc();
            let start = Instant::now();
            let result = tenant.toolkit().most_similar_approx(concept, ontology, k);
            self.rank_approx_latency.observe(start.elapsed());
            return match result {
                Ok(ranked) => ranked_json(&ranked),
                Err(e) => error_answer(&e),
            };
        }
        match tenant
            .cache()
            .most_similar(concept, ontology, &ConceptSet::All, k, measure)
        {
            Ok(ranked) => ranked_json(&ranked),
            Err(e) => error_answer(&e),
        }
    }

    /// `POST /align` — one-to-one ontology alignment (`?ontology=`
    /// selects the corpus). JSON body:
    ///
    /// ```json
    /// {"source": "...", "target": "...",
    ///  "measures": ["tfidf", 3], "strategy": "weighted_average",
    ///  "threshold": 0.25, "mode": "stable", "width": 16}
    /// ```
    ///
    /// Only `source` and `target` are required; the rest default to
    /// [`AlignmentConfig::default`]. `width` selects blocked candidate
    /// generation with that per-channel width; `"width": "exhaustive"`
    /// scores every pair. Scoring work is charged against the server's
    /// step budget (422 when exceeded), and the request deadline applies
    /// as on every endpoint.
    fn handle_align(&self, request: &Request) -> Answer {
        let tenant = match self.corpus_for(request) {
            Ok(t) => t,
            Err(answer) => return answer,
        };
        let toolkit = tenant.toolkit();
        let body = match json::parse(&request.body_text()) {
            Ok(v) => v,
            Err(e) => return Answer::error(BAD_REQUEST, &format!("invalid JSON body: {e}")),
        };
        let (Some(source), Some(target)) = (
            body.get("source").and_then(Json::as_str),
            body.get("target").and_then(Json::as_str),
        ) else {
            return Answer::error(
                BAD_REQUEST,
                "body must name `source` and `target` ontologies",
            );
        };
        let mut config = AlignmentConfig::default();
        if let Some(measures) = body.get("measures") {
            let Some(items) = measures.as_array() else {
                return Answer::error(BAD_REQUEST, "`measures` must be an array");
            };
            let mut ids = Vec::with_capacity(items.len());
            for item in items {
                let resolved = match item {
                    Json::Num(_) => item.as_usize(),
                    Json::Str(name) => toolkit.measure_id(name).ok(),
                    _ => None,
                };
                let Some(id) = resolved else {
                    return Answer::error(
                        BAD_REQUEST,
                        "`measures` entries must be measure names or ids",
                    );
                };
                ids.push(id);
            }
            config.measures = ids;
        }
        if let Some(strategy) = body.get("strategy") {
            config.strategy = match strategy.as_str() {
                Some("weighted_average") => Amalgamation::WeightedAverage,
                Some("max") => Amalgamation::Max,
                Some("min") => Amalgamation::Min,
                Some("harmonic_mean") => Amalgamation::HarmonicMean,
                _ => {
                    return Answer::error(
                        BAD_REQUEST,
                        "`strategy` must be weighted_average|max|min|harmonic_mean",
                    )
                }
            };
        }
        if let Some(threshold) = body.get("threshold") {
            let Some(t) = threshold.as_f64() else {
                return Answer::error(BAD_REQUEST, "`threshold` must be a number");
            };
            config.threshold = t;
        }
        if let Some(mode) = body.get("mode") {
            config.mode = match mode.as_str() {
                Some("greedy") => MatchMode::Greedy,
                Some("stable") => MatchMode::Stable,
                _ => return Answer::error(BAD_REQUEST, "`mode` must be greedy|stable"),
            };
        }
        if let Some(width) = body.get("width") {
            config.candidates = match (width.as_usize(), width.as_str()) {
                (Some(w), _) if w > 0 => CandidateGen::Blocked { width: w },
                (_, Some("exhaustive")) => CandidateGen::Exhaustive,
                _ => {
                    return Answer::error(
                        BAD_REQUEST,
                        "`width` must be a positive integer or \"exhaustive\"",
                    )
                }
            };
        }
        self.corpora
            .metrics()
            .inc(&format!("server.align.mode.{}", config.mode.name()));
        match align_with_limits(toolkit, source, target, &config, &self.ql_limits) {
            Ok(alignment) => {
                self.align_correspondences
                    .add(alignment.correspondences.len() as u64);
                let items: Vec<String> = alignment
                    .correspondences
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"source\":\"{}\",\"target\":\"{}\",\"similarity\":{}}}",
                            json_escape(&c.source_concept),
                            json_escape(&c.target_concept),
                            json_f64(c.similarity)
                        )
                    })
                    .collect();
                let s = &alignment.stats;
                Answer::json(
                    OK,
                    format!(
                        "{{\"mode\":\"{}\",\"correspondences\":[{}],\"stats\":{{\
                         \"sources\":{},\"targets\":{},\"candidate_pairs\":{},\
                         \"sources_without_candidates\":{},\"admitted_pairs\":{},\
                         \"proposals\":{},\"matches\":{}}}}}",
                        config.mode.name(),
                        items.join(","),
                        s.sources,
                        s.targets,
                        s.candidate_pairs,
                        s.sources_without_candidates,
                        s.admitted_pairs,
                        s.proposals,
                        s.matches
                    ),
                )
            }
            Err(e) => error_answer(&e),
        }
    }

    /// `GET /metrics` — the sst-obs text exposition of the server-wide
    /// registry (the default tenant's; named tenants keep their own
    /// `core.*` registries).
    fn handle_metrics(&self) -> Answer {
        Answer::text(OK, self.corpora.metrics().render_text())
    }
}

/// The `measure` parameter: a numeric id or a registered name; defaults
/// to measure 0 when absent. Resolved against the addressed corpus.
fn resolve_measure(toolkit: &SstToolkit, request: &Request) -> Result<usize, Answer> {
    let Some(raw) = request.param("measure") else {
        return Ok(0);
    };
    let id = match raw.parse::<usize>() {
        Ok(id) => id,
        Err(_) => toolkit.measure_id(raw).map_err(|e| error_answer(&e))?,
    };
    // Validate numeric ids so unknown measures 404 uniformly.
    toolkit
        .measure_info(id)
        .map(|_| id)
        .map_err(|e| error_answer(&e))
}

/// Renders a ranking as the `/rank` response body.
fn ranked_json(ranked: &[ConceptAndSimilarity]) -> Answer {
    let rows: Vec<String> = ranked
        .iter()
        .map(|r| {
            format!(
                "{{\"concept\":\"{}\",\"ontology\":\"{}\",\"similarity\":{}}}",
                json_escape(&r.concept),
                json_escape(&r.ontology),
                json_f64(r.similarity)
            )
        })
        .collect();
    Answer::json(OK, format!("{{\"results\":[{}]}}", rows.join(",")))
}

fn cell_to_json(cell: &Cell) -> String {
    match cell {
        Cell::Str(s) => format!("\"{}\"", json_escape(s)),
        Cell::Num(n) => json_f64(*n),
        Cell::Null => "null".to_owned(),
    }
}

/// Maps a toolkit error onto an HTTP status: unknown names are 404,
/// malformed queries/arguments 400, blown evaluation budgets 422, and
/// internal failures 500.
fn error_answer(e: &SstError) -> Answer {
    let status = match e {
        SstError::Soqa(SoqaError::UnknownOntology(_) | SoqaError::UnknownConcept { .. }) => {
            NOT_FOUND
        }
        SstError::Soqa(SoqaError::Limit(_)) | SstError::Limit(_) => UNPROCESSABLE,
        SstError::Soqa(_) => BAD_REQUEST,
        SstError::UnknownMeasure(_) => NOT_FOUND,
        SstError::InvalidArgument(_) => BAD_REQUEST,
        SstError::Internal(_) => INTERNAL_ERROR,
    };
    Answer::error(status, &e.to_string())
}

//! Minimal, dependency-free HTTP/1.1 framing for the query service.
//!
//! Only what the service needs: request-line + header parsing with hard
//! size caps, `Content-Length` bodies, query-string decoding, and
//! `Connection: close` responses with explicit `Content-Length`. Every
//! connection carries exactly one request — keep-alive is deliberately
//! not offered so the per-request read/write timeouts double as a whole
//! connection deadline and a slow client can never pin a worker across
//! requests.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers) in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Decoded path without the query string, e.g. `/similarity`.
    pub path: String,
    /// Decoded query parameters. Each key appears at most once: a target
    /// repeating a key (`?ontology=a&ontology=b`) is rejected with `400`
    /// while reading (see [`ReadOutcome::DuplicateParam`]) — with
    /// `?ontology=` doubling as the corpus selector, a silently
    /// last-wins duplicate could route a request ambiguously.
    pub query: HashMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// The query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// The body as UTF-8 (lossy; SOQA-QL is ASCII-heavy anyway).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Ok(Request),
    /// The peer closed before sending anything; nothing to answer.
    Closed,
    /// The read timed out — the per-request deadline fired (HTTP 408).
    Deadline,
    /// The head or body exceeded its size cap (HTTP 431 / 413).
    TooLarge,
    /// The bytes did not parse as HTTP (HTTP 400).
    Malformed,
    /// The query string repeated the named key (HTTP 400); accepting
    /// either occurrence would make routing ambiguous.
    DuplicateParam(String),
}

/// Reads one request from `stream`, honoring its configured read timeout
/// and the `max_body_bytes` cap.
pub fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> ReadOutcome {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return ReadOutcome::TooLarge;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed
                };
            }
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(e) if is_timeout(&e) => return ReadOutcome::Deadline,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Closed,
        }
    };

    let head = String::from_utf8_lossy(buf.get(..head_end).unwrap_or(&[])).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return ReadOutcome::Malformed,
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed;
    }

    let mut content_length: usize = 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            match value.trim().parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => return ReadOutcome::Malformed,
            }
        }
    }
    if content_length > max_body_bytes {
        return ReadOutcome::TooLarge;
    }

    // Body: whatever followed the head in the buffer, then the rest.
    let body_start = head_end.saturating_add(4); // past "\r\n\r\n"
    let mut body: Vec<u8> = buf.get(body_start..).unwrap_or(&[]).to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Malformed,
            Ok(n) => body.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(e) if is_timeout(&e) => return ReadOutcome::Deadline,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Closed,
        }
    }
    body.truncate(content_length);

    let (path, query) = match split_target(target) {
        Ok(parsed) => parsed,
        Err(key) => return ReadOutcome::DuplicateParam(key),
    };
    ReadOutcome::Ok(Request {
        method: method.to_owned(),
        path,
        query,
        body,
    })
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Position of the `\r\n\r\n` terminating the request head.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into the decoded path and query parameters.
/// A repeated (decoded) key is an error carrying the key name: the old
/// silent last-wins `HashMap::insert` let `?ontology=a&ontology=b` route
/// to whichever value happened to come last.
fn split_target(target: &str) -> Result<(String, HashMap<String, String>), String> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = HashMap::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let key = percent_decode(k);
        if query.insert(key.clone(), percent_decode(v)).is_some() {
            return Err(key);
        }
    }
    Ok((percent_decode_path(raw_path), query))
}

/// Decodes `%XX` escapes only — for request *paths*, where `+` is an
/// ordinary character. The `+`-as-space convention is a form-encoding rule
/// that applies to query strings alone; decoding it in the path corrupted
/// any route segment containing a literal `+`.
pub fn percent_decode_path(s: &str) -> String {
    decode_bytes(s, false)
}

/// Decodes `%XX` escapes and `+`-as-space (query keys and values).
pub fn percent_decode(s: &str) -> String {
    decode_bytes(s, true)
}

fn decode_bytes(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes.get(i) {
            Some(b'+') if plus_is_space => {
                out.push(b' ');
                i = i.saturating_add(1);
            }
            Some(b'%') => {
                let hi = bytes.get(i.saturating_add(1)).and_then(hex_val);
                let lo = bytes.get(i.saturating_add(2)).and_then(hex_val);
                match (hi, lo) {
                    (Some(h), Some(l)) => {
                        out.push(h * 16 + l);
                        i = i.saturating_add(3);
                    }
                    _ => {
                        out.push(b'%');
                        i = i.saturating_add(1);
                    }
                }
            }
            Some(&b) => {
                out.push(b);
                i = i.saturating_add(1);
            }
            None => break,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: &u8) -> Option<u8> {
    (*b as char).to_digit(16).map(|d| d as u8)
}

/// An HTTP status line the service emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16, pub &'static str);

pub const OK: Status = Status(200, "OK");
pub const BAD_REQUEST: Status = Status(400, "Bad Request");
pub const NOT_FOUND: Status = Status(404, "Not Found");
pub const METHOD_NOT_ALLOWED: Status = Status(405, "Method Not Allowed");
pub const REQUEST_TIMEOUT: Status = Status(408, "Request Timeout");
pub const PAYLOAD_TOO_LARGE: Status = Status(413, "Payload Too Large");
pub const UNPROCESSABLE: Status = Status(422, "Unprocessable Content");
pub const TOO_MANY_REQUESTS: Status = Status(429, "Too Many Requests");
pub const INTERNAL_ERROR: Status = Status(500, "Internal Server Error");
pub const SERVICE_UNAVAILABLE: Status = Status(503, "Service Unavailable");

/// Writes a complete `Connection: close` response. Write errors are
/// returned for accounting but the connection is torn down either way.
pub fn write_response(
    stream: &mut TcpStream,
    status: Status,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        status.0,
        status.1,
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len().saturating_add(2));
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as JSON (JSON has no NaN/Infinity; encode as null).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_splits_and_decodes() {
        let (path, query) = split_target("/similarity?first=Domestic%20Cat&k=5&q=a+b").unwrap();
        assert_eq!(path, "/similarity");
        assert_eq!(query.get("first").map(String::as_str), Some("Domestic Cat"));
        assert_eq!(query.get("k").map(String::as_str), Some("5"));
        assert_eq!(query.get("q").map(String::as_str), Some("a b"));
    }

    /// Satellite pin: a repeated query key must be rejected, not silently
    /// last-win — `?ontology=a&ontology=b` cannot route ambiguously.
    #[test]
    fn duplicate_query_keys_are_rejected() {
        assert_eq!(
            split_target("/rank?ontology=a&ontology=b"),
            Err("ontology".to_owned())
        );
        // Duplicates hidden behind percent-encoding are still duplicates.
        assert_eq!(
            split_target("/rank?ontology=a&onto%6Cogy=b"),
            Err("ontology".to_owned())
        );
        // A repeated key with identical values is just as ambiguous about
        // intent; reject uniformly.
        assert_eq!(split_target("/rank?k=5&k=5"), Err("k".to_owned()));
        // Distinct keys still pass.
        assert!(split_target("/rank?ontology=a&concept=b").is_ok());
    }

    #[test]
    fn percent_decode_handles_malformed_escapes() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn plus_survives_in_paths_but_is_space_in_queries() {
        // Regression: the path decoder used to apply the `+`-as-space
        // form-encoding rule, corrupting path segments with a literal `+`.
        let (path, query) = split_target("/c%2B%2B+notes?q=a+b&x=1%2B2").unwrap();
        assert_eq!(path, "/c+++notes");
        assert_eq!(query.get("q").map(String::as_str), Some("a b"));
        assert_eq!(query.get("x").map(String::as_str), Some("1+2"));
        assert_eq!(percent_decode_path("a+b%20c"), "a+b c");
        assert_eq!(percent_decode("a+b%20c"), "a b c");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial"), None);
    }
}

//! A minimal, dependency-free JSON reader for request bodies.
//!
//! Parses RFC 8259 JSON into a small value tree. Inputs are already
//! bounded by the server's `max_request_bytes` cap; nesting is bounded by
//! a fixed depth limit so a hostile body cannot overflow the stack. The
//! reader is strict about structure (no trailing garbage, no trailing
//! commas) and lenient about nothing — a malformed body is a client
//! error, not a guess.

use std::collections::HashMap;

/// Maximum nesting depth of arrays/objects.
const MAX_DEPTH: usize = 32;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(HashMap<String, Json>),
}

impl Json {
    /// Object member lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    ///
    /// The upper bound is strict: `u64::MAX as f64` rounds *up* to 2^64
    /// (u64::MAX is not representable), so a `<=` comparison admitted
    /// 2^64 itself, and the saturating float-to-int cast then returned
    /// `usize::MAX` — a silently wrong value instead of `None`. With
    /// `<`, every admitted value is an exactly-representable integer in
    /// `0..2^64`, which the cast converts losslessly; `try_from` then
    /// rejects values beyond `usize` on narrower targets.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                usize::try_from(*n as u64).ok()
            }
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    match p.peek() {
        None => Ok(value),
        Some(_) => Err(format!("trailing data at byte {}", p.pos)),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos = self.pos.saturating_add(1);
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos = self.pos.saturating_add(1);
        }
    }

    fn require(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char,
                self.pos.saturating_sub(1),
                got as char
            )),
            None => Err(format!("expected `{}`, got end of input", b as char)),
        }
    }

    /// Consumes `lit` (the tail of a keyword whose first byte is eaten).
    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            if self.bump() != Some(b) {
                return Err(format!("invalid literal near byte {}", self.pos));
            }
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Json::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.require(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth.saturating_add(1))?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.require(b'{')?;
        let mut members = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.require(b':')?;
            self.skip_ws();
            let value = self.value(depth.saturating_add(1))?;
            members.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(format!("invalid escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 runs byte by byte; the
                    // input is a &str, so runs are valid by construction.
                    let start = self.pos.saturating_sub(1);
                    let mut end = self.pos;
                    while self
                        .bytes
                        .get(end)
                        .is_some_and(|&n| (0x80..0xC0).contains(&n))
                    {
                        end = end.saturating_add(1);
                    }
                    if b >= 0x80 {
                        if let Some(chunk) = self.bytes.get(start..end) {
                            out.push_str(&String::from_utf8_lossy(chunk));
                        }
                        self.pos = end;
                    } else {
                        out.push(b as char);
                    }
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, joining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following `\uXXXX` low surrogate.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err("unpaired high surrogate".to_owned());
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("invalid low surrogate".to_owned());
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| "invalid surrogate pair".to_owned())
        } else if (0xDC00..0xE000).contains(&hi) {
            Err("unpaired low surrogate".to_owned())
        } else {
            char::from_u32(hi).ok_or_else(|| "invalid \\u escape".to_owned())
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| format!("invalid hex digit at byte {}", self.pos))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.peek() == Some(b'.') {
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| "invalid number".to_owned())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let doc = parse(r#"{"k": [1, "two", {"x": null}], "m": 3}"#).unwrap();
        assert_eq!(doc.get("m").and_then(Json::as_usize), Some(3));
        let arr = doc.get("k").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_str(), Some("two"));
    }

    #[test]
    fn handles_unicode_escapes_and_utf8() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "[1 2]", "tru", "1.2.3", "\"\\q\"", "{}x",
            "nul", "+1",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&deep).is_err(), "accepted over-deep nesting");
    }

    #[test]
    fn as_usize_is_exact() {
        assert_eq!(parse("7").unwrap().as_usize(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }

    /// Satellite pin: the boundary around 2^64. The old `<= usize::MAX
    /// as f64` guard admitted 2^64 exactly (the comparison constant
    /// rounds up), and the saturating cast turned it into `usize::MAX`.
    #[test]
    fn as_usize_boundary_cases() {
        // 2^64 — representable as f64, not as usize. Must be None, not
        // a silent saturation to usize::MAX.
        assert_eq!(Json::Num(18_446_744_073_709_551_616.0).as_usize(), None);
        assert_eq!(parse("18446744073709551616").unwrap().as_usize(), None);
        // Anything at or above 2^64 is out.
        assert_eq!(Json::Num(2.0f64.powi(65)).as_usize(), None);
        assert_eq!(Json::Num(f64::MAX).as_usize(), None);
        // The largest f64 integer below 2^64 (2^64 - 2048) is in range
        // on 64-bit targets and converts exactly.
        let below = 18_446_744_073_709_549_568.0f64;
        assert_eq!(
            Json::Num(below).as_usize(),
            usize::try_from(below as u64).ok()
        );
        // 2^53 (the integer-precision edge of f64) still converts.
        assert_eq!(
            Json::Num(9_007_199_254_740_992.0).as_usize(),
            Some(9_007_199_254_740_992)
        );
        assert_eq!(Json::Num(0.0).as_usize(), Some(0));
        assert_eq!(Json::Num(f64::NAN).as_usize(), None);
        assert_eq!(Json::Num(f64::INFINITY).as_usize(), None);
    }
}

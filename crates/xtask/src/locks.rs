//! Lock-discipline analysis over the [`crate::model`] guard map.
//!
//! Three checks, all driven by guard liveness spans:
//!
//! * **Nesting edges** — when guard `A` is live while guard `B` is
//!   acquired, the file contributes an `A → B` edge. Edges from every
//!   file are aggregated into a workspace lock-acquisition graph (classes
//!   are crate-qualified by the caller); a pair of edges `A → B` and
//!   `B → A` is a lock-order inversion — two threads taking the pair in
//!   opposite orders can deadlock — and is reported with both sites.
//! * **Self-deadlock** — acquiring a class while a guard on the *same*
//!   class is live at a *different* site deadlocks a `Mutex` outright
//!   (and risks writer-starvation deadlock on an `RwLock`), so it is
//!   flagged per-file without needing the graph.
//! * **Held-across-blocking** — a guard live across a blocking operation
//!   (socket accept/read/write, `mpsc` send/recv, `JoinHandle::join`,
//!   `thread::sleep`, connect, flush) serializes every other thread that
//!   needs the lock behind I/O latency. `Condvar::wait*` is deliberately
//!   not in the blocking set: it releases the guard while parked.

use crate::model::{CallSite, FileModel};

/// A within-file nesting edge: `acquired` was taken while `holder` was live.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub holder: String,
    pub acquired: String,
    /// 0-based line of the holder's acquisition.
    pub holder_line: usize,
    /// 0-based line of the nested acquisition (the finding anchor).
    pub line: usize,
}

/// A per-file lock-discipline problem (self-deadlock or held-across-blocking).
#[derive(Debug, Clone)]
pub struct LockIssue {
    /// 0-based line the finding anchors to.
    pub line: usize,
    pub message: String,
}

/// A workspace-level edge with crate-qualified classes.
#[derive(Debug, Clone)]
pub struct WsEdge {
    pub holder: String,
    pub acquired: String,
    pub file: String,
    /// 0-based line of the nested acquisition.
    pub line: usize,
}

/// Methods that block regardless of arguments.
const BLOCKING_METHODS: &[&str] = &[
    "accept",
    "send",
    "send_timeout",
    "recv",
    "recv_timeout",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "flush",
    "sync_all",
];

/// Describes why a call site counts as blocking, or `None`.
pub fn blocking_op(call: &CallSite) -> Option<String> {
    if call.is_macro {
        return None;
    }
    let name = call.name.as_str();
    if call.receiver.is_some() {
        if BLOCKING_METHODS.contains(&name) {
            return Some(format!(".{name}(…)"));
        }
        // `.read()`/`.write()` with no args are lock acquisitions; with a
        // buffer argument they are socket/file I/O.
        if (name == "read" || name == "write") && !call.args_empty {
            return Some(format!(".{name}(buf)"));
        }
        // `JoinHandle::join()` takes no args; `Path::join(..)` does.
        if name == "join" && call.args_empty {
            return Some(".join()".to_owned());
        }
        return None;
    }
    if name == "sleep" && call.path.last().is_some_and(|s| s == "thread") {
        return Some("thread::sleep(…)".to_owned());
    }
    if name == "connect" && !call.path.is_empty() {
        return Some(format!("{}::connect(…)", call.path.join("::")));
    }
    None
}

/// Runs the per-file checks. Guards inside `#[cfg(test)]` regions are
/// skipped. Returns nesting edges (for workspace aggregation) and
/// per-file issues.
pub fn analyze(model: &FileModel) -> (Vec<LockEdge>, Vec<LockIssue>) {
    let mut edges = Vec::new();
    let mut issues = Vec::new();
    for g in &model.guards {
        if model.in_test_cfg(g.acquired) {
            continue;
        }
        for h in &model.guards {
            if h.acquired <= g.acquired || h.acquired >= g.scope_end {
                continue;
            }
            if h.class == g.class {
                issues.push(LockIssue {
                    line: h.line,
                    message: format!(
                        "lock `{}` re-acquired while a guard on it is live (acquired line {}): self-deadlock",
                        h.class,
                        g.line + 1,
                    ),
                });
            } else {
                edges.push(LockEdge {
                    holder: g.class.clone(),
                    acquired: h.class.clone(),
                    holder_line: g.line,
                    line: h.line,
                });
            }
        }
        for call in &model.calls {
            if call.token <= g.acquired || call.token >= g.scope_end {
                continue;
            }
            if let Some(op) = blocking_op(call) {
                issues.push(LockIssue {
                    line: call.line,
                    message: format!(
                        "guard on `{}` (acquired line {}) held across blocking `{}`",
                        g.class,
                        g.line + 1,
                        op,
                    ),
                });
            }
        }
    }
    (edges, issues)
}

/// Finds lock-order inversions in the workspace graph: unordered class
/// pairs with edges in both directions. Returns one `(a→b, b→a)` witness
/// pair per inversion.
pub fn lock_inversions(edges: &[WsEdge]) -> Vec<(WsEdge, WsEdge)> {
    let mut out = Vec::new();
    let mut seen: Vec<(String, String)> = Vec::new();
    for e in edges {
        let key = if e.holder <= e.acquired {
            (e.holder.clone(), e.acquired.clone())
        } else {
            (e.acquired.clone(), e.holder.clone())
        };
        if seen.contains(&key) {
            continue;
        }
        if let Some(rev) = edges
            .iter()
            .find(|r| r.holder == e.acquired && r.acquired == e.holder)
        {
            seen.push(key);
            out.push((e.clone(), rev.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run(src: &str) -> (Vec<LockEdge>, Vec<LockIssue>) {
        analyze(&FileModel::build(src))
    }

    #[test]
    fn nested_acquisition_makes_an_edge() {
        let (edges, issues) = run("fn f() {\n let a = alpha.lock();\n let b = beta.lock();\n}\n");
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].holder, "alpha");
        assert_eq!(edges[0].acquired, "beta");
    }

    #[test]
    fn sequential_statements_do_not_nest_temporaries() {
        let (edges, issues) = run("fn f() {\n alpha.lock().touch();\n beta.lock().touch();\n}\n");
        assert!(edges.is_empty(), "{edges:?}");
        assert!(issues.is_empty());
    }

    #[test]
    fn same_class_nesting_is_self_deadlock() {
        let (_, issues) = run("fn f() {\n let a = m.lock();\n let b = m.lock();\n}\n");
        assert_eq!(issues.len(), 1);
        assert!(
            issues[0].message.contains("self-deadlock"),
            "{}",
            issues[0].message
        );
    }

    #[test]
    fn guard_across_socket_write_is_flagged() {
        let (_, issues) =
            run("fn f(s: &mut TcpStream) {\n let g = state.lock();\n s.write_all(b);\n}\n");
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("write_all"));
    }

    #[test]
    fn drop_before_blocking_is_clean() {
        let (_, issues) = run(
            "fn f(s: &mut TcpStream) {\n let g = state.lock();\n drop(g);\n s.write_all(b);\n}\n",
        );
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn condvar_wait_is_not_blocking() {
        let (_, issues) =
            run("fn f() {\n let mut g = q.lock();\n while g.is_empty() { g = cv.wait(g).unwrap(); }\n}\n");
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn path_join_is_not_thread_join() {
        let (_, issues) =
            run("fn f() {\n let g = m.lock();\n let p = dir.join(\"x\");\n let _ = p;\n}\n");
        assert!(issues.is_empty(), "{issues:?}");
        let (_, issues) = run("fn f() {\n let g = m.lock();\n handle.join();\n}\n");
        assert_eq!(issues.len(), 1);
    }

    #[test]
    fn test_cfg_guards_are_skipped() {
        let (edges, issues) = run(
            "#[cfg(test)]\nmod tests {\n fn f() {\n  let a = alpha.lock();\n  let b = beta.lock();\n }\n}\n",
        );
        assert!(edges.is_empty());
        assert!(issues.is_empty());
    }

    #[test]
    fn inversions_pair_opposite_edges() {
        let ws = |h: &str, a: &str| WsEdge {
            holder: h.to_owned(),
            acquired: a.to_owned(),
            file: "f.rs".to_owned(),
            line: 0,
        };
        let edges = vec![ws("a", "b"), ws("b", "c"), ws("b", "a")];
        let inv = lock_inversions(&edges);
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].0.holder, "a");
        assert_eq!(inv[0].1.holder, "b");
    }
}

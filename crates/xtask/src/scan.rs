//! Lexical preprocessing for the lint rules.
//!
//! The lint gate deliberately avoids a full Rust parser: a line/token
//! scanner is fast, dependency-free, and adequate for the policy rules.
//! The cost is that rule matching must never fire inside comments,
//! string/char literals, or `#[cfg(test)]` regions — this module strips
//! those out, producing per-line *code text* (literals and comments
//! blanked with spaces, so byte columns stay aligned) plus the per-line
//! *line-comment text* (kept verbatim for the escape-hatch syntax).

/// One source line after stripping.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments and literal contents replaced by spaces.
    pub code: String,
    /// Text of any `//` comment on the line (without the slashes).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]`-gated region.
    pub in_test_cfg: bool,
}

/// One string literal, preserved verbatim for rules that must read literal
/// *contents* (the metrics-catalog rule matches metric-name strings). The
/// stripped code keeps only the delimiter quotes; positions here let the
/// lexer re-attach the text.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 0-based line of the opening quote.
    pub line: usize,
    /// Char column of the opening quote within the stripped code line.
    pub col: usize,
    /// 0-based line of the closing quote.
    pub end_line: usize,
    /// Char column just past the closing quote (past raw-string hashes).
    pub end_col: usize,
    /// Raw contents between the quotes (escape sequences unprocessed;
    /// multi-line literals joined with `\n`).
    pub text: String,
}

/// A whole file after stripping, 0-indexed by line.
#[derive(Debug)]
pub struct Stripped {
    pub lines: Vec<Line>,
    /// Every string literal, in source order.
    pub literals: Vec<StrLit>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Inside a `//` comment (ends at newline).
    LineComment,
    /// Inside `/* */`; Rust block comments nest, the payload is the depth.
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal with `hashes` trailing `#` marks.
    RawStr {
        hashes: u32,
    },
}

/// Strips comments and literals and marks `#[cfg(test)]` regions.
pub fn strip(source: &str) -> Stripped {
    let mut lines = Vec::new();
    let mut state = State::Code;
    let mut literals: Vec<StrLit> = Vec::new();
    // The string literal currently being accumulated: (line, col, text).
    let mut cur_lit: Option<(usize, usize, String)> = None;

    // cfg(test) tracking: once the attribute is seen, the *next* item —
    // delimited by the `{ … }` it opens, or terminated by a `;` — is
    // test-only. `exempt_floor` holds the brace depth outside the gated
    // region while inside one.
    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut pending_cfg_depth: i64 = 0;
    let mut exempt_floor: Option<i64> = None;

    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let line_starts_exempt = exempt_floor.is_some() || pending_cfg_test;

        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        comment = chars[i + 2..].iter().collect();
                        code.push_str(&" ".repeat(chars.len() - i));
                        state = State::LineComment;
                        i = chars.len();
                        continue;
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        state = State::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        // Raw-string openers end with `"`: detect `r` / `br`
                        // plus `#`s immediately before this quote.
                        let mut j = i;
                        let mut hashes = 0u32;
                        while j > 0 && chars[j - 1] == '#' {
                            hashes += 1;
                            j -= 1;
                        }
                        let raw_prefix = j > 0
                            && (chars[j - 1] == 'r'
                                && (j < 2 || !is_ident_char(chars[j - 2]) || chars[j - 2] == 'b'));
                        if raw_prefix {
                            state = State::RawStr { hashes };
                        } else {
                            state = State::Str;
                        }
                        cur_lit = Some((lines.len(), code.chars().count(), String::new()));
                        code.push('"');
                        i += 1;
                        continue;
                    }
                    '\'' => {
                        // Char literal vs lifetime. A char literal is
                        // `'x'` or `'\…'`; a lifetime has no closing quote.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: consume to closing quote.
                            code.push('\'');
                            i += 1;
                            while i < chars.len() && chars[i] != '\'' {
                                code.push(' ');
                                i += 1;
                            }
                            if i < chars.len() {
                                code.push('\'');
                                i += 1;
                            }
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                            code.push_str("' '");
                            i += 3;
                            continue;
                        }
                        // Lifetime or stray quote: keep and move on.
                        code.push('\'');
                        i += 1;
                        continue;
                    }
                    '{' => {
                        if pending_cfg_test && exempt_floor.is_none() {
                            exempt_floor = Some(depth);
                            pending_cfg_test = false;
                        }
                        depth += 1;
                        code.push(c);
                        i += 1;
                        continue;
                    }
                    '}' => {
                        depth -= 1;
                        if exempt_floor.is_some_and(|floor| depth <= floor) {
                            exempt_floor = None;
                        }
                        code.push(c);
                        i += 1;
                        continue;
                    }
                    ';' => {
                        // `#[cfg(test)] use …;` — attribute consumed by a
                        // braceless item at the same depth.
                        if pending_cfg_test && depth == pending_cfg_depth {
                            pending_cfg_test = false;
                        }
                        code.push(c);
                        i += 1;
                        continue;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                        continue;
                    }
                },
                State::LineComment => unreachable!("line comments end with the line"),
                State::BlockComment(d) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if d == 1 {
                            State::Code
                        } else {
                            State::BlockComment(d - 1)
                        };
                        code.push_str("  ");
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(d + 1);
                        code.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                    continue;
                }
                State::Str => {
                    if c == '\\' {
                        if let Some((_, _, text)) = cur_lit.as_mut() {
                            text.push(c);
                            if let Some(&next) = chars.get(i + 1) {
                                text.push(next);
                            }
                        }
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = State::Code;
                        code.push('"');
                        i += 1;
                        if let Some((line, col, text)) = cur_lit.take() {
                            literals.push(StrLit {
                                line,
                                col,
                                end_line: lines.len(),
                                end_col: code.chars().count(),
                                text,
                            });
                        }
                    } else {
                        if let Some((_, _, text)) = cur_lit.as_mut() {
                            text.push(c);
                        }
                        code.push(' ');
                        i += 1;
                    }
                    continue;
                }
                State::RawStr { hashes } => {
                    if c == '"' {
                        let closing =
                            (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                        if closing {
                            state = State::Code;
                            code.push('"');
                            code.push_str(&"#".repeat(hashes as usize));
                            i += 1 + hashes as usize;
                            if let Some((line, col, text)) = cur_lit.take() {
                                literals.push(StrLit {
                                    line,
                                    col,
                                    end_line: lines.len(),
                                    end_col: code.chars().count(),
                                    text,
                                });
                            }
                            continue;
                        }
                    }
                    if let Some((_, _, text)) = cur_lit.as_mut() {
                        text.push(c);
                    }
                    code.push(' ');
                    i += 1;
                    continue;
                }
            }
        }
        if state == State::LineComment {
            state = State::Code;
        }
        if matches!(state, State::Str | State::RawStr { .. }) {
            if let Some((_, _, text)) = cur_lit.as_mut() {
                text.push('\n');
            }
        }

        // Arm cfg(test) tracking off the stripped code so strings/comments
        // can't trigger it. `#[cfg(test)]` plus composed forms like
        // `#[cfg(any(test, …))]` / `#[cfg(all(test, …))]` count.
        let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.contains("#[cfg(test)]")
            || compact.contains("#[cfg(any(test")
            || compact.contains("#[cfg(all(test")
        {
            pending_cfg_test = true;
            pending_cfg_depth = depth;
        }

        lines.push(Line {
            code,
            comment,
            in_test_cfg: line_starts_exempt || exempt_floor.is_some() || pending_cfg_test,
        });
    }

    Stripped { lines, literals }
}

pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        strip(src).lines.into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_comments_but_keeps_text() {
        let s = strip("let x = 1; // lint: allow(panic) reason\n");
        assert!(!s.lines[0].code.contains("lint"));
        assert_eq!(s.lines[0].comment.trim(), "lint: allow(panic) reason");
    }

    #[test]
    fn strips_string_contents() {
        let c = codes("let s = \"panic!().unwrap()\";");
        assert!(!c[0].contains("panic"));
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains('"'));
    }

    #[test]
    fn strips_raw_strings_with_hashes() {
        let c = codes("let s = r#\"has \"quotes\" and unwrap()\"#; x.unwrap();");
        assert!(
            c[0].contains(".unwrap()"),
            "code after literal survives: {}",
            c[0]
        );
        assert_eq!(c[0].matches("unwrap").count(), 1);
    }

    #[test]
    fn block_comments_nest() {
        let c = codes("a /* outer /* inner */ still comment */ b.unwrap()");
        assert!(c[0].contains(".unwrap()"));
        assert!(!c[0].contains("comment"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let c = codes("/* one\n two unwrap()\n three */ real.unwrap()");
        assert!(!c[1].contains("unwrap"));
        assert!(c[2].contains("real.unwrap()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = codes("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; x.find(q) }");
        assert!(c[0].contains("fn f<'a>(x: &'a str)"));
        // The double-quote char literal must not open a string state.
        assert!(c[0].contains("x.find(q)"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = strip(src);
        let flags: Vec<bool> = s.lines.iter().map(|l| l.in_test_cfg).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { x.unwrap() }\n";
        let s = strip(src);
        assert!(s.lines[1].in_test_cfg);
        assert!(!s.lines[2].in_test_cfg, "cfg must not leak past the `;`");
    }

    #[test]
    fn literal_contents_are_preserved_for_the_lexer() {
        let s = strip("let n = m.counter(\"core.cache.hits\");");
        assert_eq!(s.literals.len(), 1);
        let lit = &s.literals[0];
        assert_eq!(lit.text, "core.cache.hits");
        let code: Vec<char> = s.lines[lit.line].code.chars().collect();
        assert_eq!(code[lit.col], '"');
        assert_eq!(code[lit.end_col - 1], '"');
    }

    #[test]
    fn multiline_and_raw_literals_record_spans() {
        let s = strip("let a = \"one\ntwo\";\nlet b = r#\"raw \"x\" lit\"#;");
        assert_eq!(s.literals.len(), 2);
        assert_eq!(s.literals[0].text, "one\ntwo");
        assert_eq!(s.literals[0].line, 0);
        assert_eq!(s.literals[0].end_line, 1);
        assert_eq!(s.literals[1].text, "raw \"x\" lit");
    }

    #[test]
    fn escapes_are_kept_verbatim_in_literal_text() {
        let s = strip("let a = \"tab\\there\";");
        assert_eq!(s.literals[0].text, "tab\\there");
    }

    #[test]
    fn cfg_test_inside_string_is_ignored() {
        let src = "let s = \"#[cfg(test)]\";\nfn lib() { x.unwrap() }\n";
        let s = strip(src);
        assert!(!s.lines[1].in_test_cfg);
    }
}

//! Lint rules and the workspace walker.
//!
//! Every rule runs on the token-stream model ([`crate::lex`] +
//! [`crate::model`]) built from stripped source, so multi-line
//! constructs (split signatures, chained calls, cross-line subscripts)
//! are analyzed exactly like single-line ones and nothing inside
//! comments or string literals can trigger a finding.
//!
//! Policy (documented in README.md §Static analysis):
//!
//! - **panic**: non-test library code must not call `.unwrap()` /
//!   `.unwrap_err()` / `.expect()` / `.expect_err()` or invoke `panic!` /
//!   `unimplemented!` / `todo!` / `unreachable!`. Parsers and services
//!   return their crate error type instead of aborting the process. The
//!   `assert!` / `assert_eq!` / `assert_ne!` macros are flagged too:
//!   precondition checks in library code should degrade or return errors
//!   (`debug_assert!` stays allowed — it compiles out of release builds).
//! - **index**: subscripts containing `+`/`-` arithmetic (`v[i + 1]`,
//!   `s[pos..pos - k]`) are the classic off-by-one panic sites; use
//!   `.get()` / `.get_mut()` or restructure. Plain `v[i]` is allowed —
//!   flagging every subscript would drown the signal.
//! - **forbid-unsafe**: every crate root carries `#![forbid(unsafe_code)]`.
//! - **error-impl**: every `pub` type named `*Error` implements
//!   `std::error::Error`.
//! - **lock-in-loop**: `.read()` / `.write()` / `.lock()` (and the
//!   `try_` variants) inside a `for` loop body re-acquire a lock per
//!   iteration — the exact bug class behind `Taxonomy::mrca` locking the
//!   depth cache once per candidate. Hoist the guard (or a cheap `Arc`
//!   clone of the data) out of the loop. Acquisitions in the loop
//!   *header* (`for x in m.read()…`) run once and are not flagged.
//! - **lock-discipline**: the guard-liveness analysis in [`crate::locks`].
//!   Per file: acquiring a lock class while a guard on the same class is
//!   live (self-deadlock), and holding any guard across a blocking
//!   operation (socket accept/read/write, `mpsc` send/recv,
//!   `JoinHandle::join`, `thread::sleep`, connect). Workspace-wide:
//!   nesting edges from every file form a lock-acquisition graph whose
//!   classes are `<crate>:<receiver>`; a pair of opposite edges is a
//!   lock-order inversion and is reported with both sites.
//! - **swallowed-error**: `let _ = <call>…;` and statement-final
//!   `.ok();` silently discard a `Result` in library code. A serving
//!   system's zero-silent-failure claim dies one discarded `Err` at a
//!   time: handle the error, count it in a metric, or audit the site.
//! - **metrics-catalog**: every metric-name literal passed to an
//!   `sst-obs` registry call must match a declaration in
//!   `crates/obs/src/catalog.rs`, kinds must agree, declarations must
//!   not overlap, and every declaration must be emittable from scanned
//!   code ([`crate::metrics`] has the matching grammar). This pins the
//!   `/metrics` surface: typos, drift, and dead declarations all fail
//!   the gate.
//! - **limits**: in the ingestion crates (`rdf`, `sexpr`, `wrappers`),
//!   every `pub fn parse*` must take the resource-governance `Limits`
//!   type somewhere in its signature. Parsers consume untrusted input;
//!   an entry point without limits revives the unbounded
//!   recursion/allocation bug class the governance layer closed.
//!   Convenience wrappers that delegate to a `*_with_limits` sibling
//!   under `Limits::default()` carry an audited
//!   `// lint: allow(limits) <reason>` instead.
//! - **bounded**: in the server crate (`crates/server`), no unbounded
//!   queueing and no detached threads: `mpsc::channel` (unbounded) and
//!   `VecDeque::new` (no capacity policy) are forbidden in favour of the
//!   crate's shed-on-overflow `BoundedQueue`, and `thread::spawn`
//!   (detached, no join path) is forbidden in favour of
//!   `std::thread::scope`, whose workers are always joined. These are
//!   the two bug classes a load-shedding server must never reintroduce:
//!   a queue that grows without limit under overload, and a worker
//!   nobody waits for on shutdown.
//!
//! Escape hatch: `// lint: allow(<rule>) <reason>` on the offending
//! line, or alone on the line above, suppresses exactly one finding of
//! that rule on that line (for lock-discipline nesting edges and
//! metrics-catalog findings, it suppresses the line's findings). The
//! reason is mandatory; a reason-less marker is itself a **bad-allow**
//! finding.
//!
//! Exempt from the per-file library rules: `tests/`, `benches/`,
//! `examples/`, `src/bin/` binaries, the `xtask` tooling crate, the
//! `sst-bench` harness crate, and `#[cfg(test)]` regions anywhere.
//! Metric emissions in exempt code still count as catalog *coverage* —
//! they just never produce findings.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lex::TokenKind;
use crate::locks;
use crate::metrics;
use crate::model::{FileModel, LOCK_METHODS};
use crate::scan::Stripped;

/// Crates whose *library* code is exempt from the per-file library
/// rules: development tooling and the benchmark harness, which are never
/// part of the served library surface.
const EXEMPT_CRATES: &[&str] = &["xtask", "bench"];

/// Crates whose library code ingests untrusted input and is therefore
/// subject to the **limits** rule.
const LIMITS_GOVERNED_CRATES: &[&str] = &["rdf", "sexpr", "wrappers"];

/// Crates serving network traffic, subject to the **bounded** rule: no
/// unbounded queues, no detached threads.
const BOUNDED_GOVERNED_CRATES: &[&str] = &["server"];

/// Workspace-relative path of the metrics catalog module.
pub const CATALOG_PATH: &str = "crates/obs/src/catalog.rs";

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    Panic,
    Index,
    ForbidUnsafe,
    ErrorImpl,
    LockInLoop,
    LockDiscipline,
    SwallowedError,
    MetricsCatalog,
    Limits,
    Bounded,
    BadAllow,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 11] = [
        Rule::Panic,
        Rule::Index,
        Rule::ForbidUnsafe,
        Rule::ErrorImpl,
        Rule::LockInLoop,
        Rule::LockDiscipline,
        Rule::SwallowedError,
        Rule::MetricsCatalog,
        Rule::Limits,
        Rule::Bounded,
        Rule::BadAllow,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::ErrorImpl => "error-impl",
            Rule::LockInLoop => "lock-in-loop",
            Rule::LockDiscipline => "lock-discipline",
            Rule::SwallowedError => "swallowed-error",
            Rule::MetricsCatalog => "metrics-catalog",
            Rule::Limits => "limits",
            Rule::Bounded => "bounded",
            Rule::BadAllow => "bad-allow",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

/// One diagnostic, pointing at `file:line`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Method names whose call is a potential panic.
const PANIC_METHODS: &[&str] = &["unwrap", "unwrap_err", "expect", "expect_err"];
/// Macros that abort.
const PANIC_MACROS: &[&str] = &["panic", "unimplemented", "todo", "unreachable"];
/// Assertion macros: release-mode aborts hiding as precondition checks.
/// (`debug_assert*` is allowed — it compiles out of release builds.)
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Rules with an escape hatch, by marker name.
const ALLOWABLE: &[(&str, Rule)] = &[
    ("panic", Rule::Panic),
    ("index", Rule::Index),
    ("lock-in-loop", Rule::LockInLoop),
    ("lock-discipline", Rule::LockDiscipline),
    ("swallowed-error", Rule::SwallowedError),
    ("metrics-catalog", Rule::MetricsCatalog),
    ("limits", Rule::Limits),
    ("bounded", Rule::Bounded),
];

/// The file's suppression table, parsed once per file: each
/// `lint: allow(<rule>) <reason>` comment targets its own line (inline)
/// or the next line (standalone comment line). A reason-less marker is
/// recorded as a bad-allow instead of an entry.
struct AllowTable {
    /// (rule, 0-based target line); `used` marks consumed entries.
    entries: Vec<(Rule, usize)>,
    used: Vec<bool>,
    /// 0-based line and marker name of each reason-less allow.
    bad: Vec<(usize, &'static str)>,
}

impl AllowTable {
    fn parse(stripped: &Stripped) -> AllowTable {
        let mut entries = Vec::new();
        let mut bad = Vec::new();
        for (idx, line) in stripped.lines.iter().enumerate() {
            if line.comment.is_empty() {
                continue;
            }
            // A standalone allow-comment line applies to the next line.
            let target = if line.code.trim().is_empty() {
                idx + 1
            } else {
                idx
            };
            for (name, rule) in ALLOWABLE {
                let marker = format!("lint: allow({name})");
                if let Some(pos) = line.comment.find(&marker) {
                    let reason = line.comment[pos + marker.len()..].trim();
                    if reason.is_empty() {
                        bad.push((idx, *name));
                    } else {
                        entries.push((*rule, target));
                    }
                }
            }
        }
        AllowTable {
            used: vec![false; entries.len()],
            entries,
            bad,
        }
    }

    /// Consumes one matching entry; true when the finding is suppressed.
    fn consume(&mut self, rule: Rule, line: usize) -> bool {
        for (i, &(r, l)) in self.entries.iter().enumerate() {
            if r == rule && l == line && !self.used[i] {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Non-consuming check, for findings derived from aggregated data
    /// (nesting edges, catalog coverage) where one audit covers the line.
    fn permits(&self, rule: Rule, line: usize) -> bool {
        self.entries.iter().any(|&(r, l)| r == rule && l == line)
    }
}

/// A raw finding before suppression: (0-based line, rule, message).
type Raw = (usize, Rule, String);

fn scan_panics(model: &FileModel, out: &mut Vec<Raw>) {
    for c in &model.calls {
        if model.in_test_cfg(c.token) {
            continue;
        }
        let name = c.name.as_str();
        if c.is_macro {
            if PANIC_MACROS.contains(&name) {
                out.push((
                    c.line,
                    Rule::Panic,
                    format!("`{name}!` aborts on malformed input; return an error instead"),
                ));
            } else if ASSERT_MACROS.contains(&name) {
                out.push((
                    c.line,
                    Rule::Panic,
                    format!("`{name}!` aborts in release builds; return an error or use `debug_assert!`"),
                ));
            }
        } else if c.receiver.is_some() && PANIC_METHODS.contains(&name) {
            out.push((
                c.line,
                Rule::Panic,
                format!("`.{name}()` can panic; return the crate error type instead"),
            ));
        }
    }
}

/// Flags subscripts with `+`/`-` arithmetic: `v[i + 1]`, `s[..n - 1]`.
fn scan_indexing(model: &FileModel, out: &mut Vec<Raw>) {
    let toks = &model.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct('[') || i == 0 || model.in_test_cfg(i) {
            continue;
        }
        // Require an indexable expression before the bracket: identifier,
        // `)` or `]`. This skips array types/literals and attributes.
        let indexable = matches!(
            &toks[i - 1].kind,
            TokenKind::Ident(_) | TokenKind::Punct(')') | TokenKind::Punct(']')
        );
        if !indexable {
            continue;
        }
        let mut depth = 1usize;
        let mut j = i + 1;
        let mut has_arith = false;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokenKind::Punct('[' | '(') => depth += 1,
                TokenKind::Punct(']' | ')') => depth -= 1,
                TokenKind::Punct('+') => has_arith = true,
                TokenKind::Punct('-') if !toks.get(j + 1).is_some_and(|n| n.is_punct('>')) => {
                    has_arith = true
                }
                _ => {}
            }
            j += 1;
        }
        if has_arith && depth == 0 {
            out.push((
                t.line,
                Rule::Index,
                "arithmetic subscript can panic out of bounds; use `.get()`/checked math"
                    .to_string(),
            ));
        }
    }
}

fn scan_lock_in_loop(model: &FileModel, out: &mut Vec<Raw>) {
    for c in &model.calls {
        if c.is_macro || !c.args_empty || c.receiver.is_none() {
            continue;
        }
        if !LOCK_METHODS.contains(&c.name.as_str()) {
            continue;
        }
        if model.in_test_cfg(c.token) || !model.in_for_body(c.token) {
            continue;
        }
        out.push((
            c.line,
            Rule::LockInLoop,
            format!(
                "`.{}()` acquires a lock inside a `for` loop; \
                 hoist the guard (or an `Arc` of the data) out of the loop",
                c.name
            ),
        ));
    }
}

/// Flags `let _ = <call>…;` and statement-final `.ok();` discards.
fn scan_swallowed(model: &FileModel, out: &mut Vec<Raw>) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("let")
            || !toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct('='))
            || model.in_test_cfg(i)
        {
            continue;
        }
        let end = model.statement_end(i);
        if let Some(c) = model
            .calls
            .iter()
            .find(|c| c.token > i + 2 && c.token < end)
        {
            let what = if c.is_macro {
                format!("{}!", c.name)
            } else {
                format!("{}(…)", c.name)
            };
            out.push((
                toks[i].line,
                Rule::SwallowedError,
                format!(
                    "`let _ = …` discards the result of `{what}`; \
                     handle the error or count it in a metric"
                ),
            ));
        }
    }
    for c in &model.calls {
        if c.is_macro || c.name != "ok" || !c.args_empty || c.receiver.is_none() {
            continue;
        }
        if model.in_test_cfg(c.token) {
            continue;
        }
        // Statement-final only: `x.do_thing().ok();`.
        if !toks.get(c.token + 3).is_some_and(|t| t.is_punct(';')) {
            continue;
        }
        // Walk back to the statement start; `let`/`return`/assignments
        // use the Option value, so only bare statements are discards.
        let mut s = c.token;
        while s > 0 {
            let p = &toks[s - 1];
            if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
                break;
            }
            s -= 1;
        }
        if toks[s].is_ident("let")
            || toks[s].is_ident("return")
            || toks[s..c.token].iter().any(|t| t.is_punct('='))
        {
            continue;
        }
        out.push((
            c.line,
            Rule::SwallowedError,
            "statement-final `.ok();` silently discards a `Result` error; \
             handle the error or count it in a metric"
                .to_string(),
        ));
    }
}

/// The **limits** rule over the fn map: `pub fn parse*` signatures in
/// governed crates must mention the `Limits` type.
fn scan_limits(model: &FileModel, out: &mut Vec<Raw>) {
    for f in &model.fns {
        if !f.is_pub || model.in_test_cfg(f.sig_start) {
            continue;
        }
        if f.name != "parse" && !f.name.starts_with("parse_") {
            continue;
        }
        let end = match f.body {
            Some(b) => model.blocks[b].open,
            None => model.tokens[f.sig_start..]
                .iter()
                .position(|t| t.is_punct(';'))
                .map(|p| f.sig_start + p)
                .unwrap_or(model.tokens.len()),
        };
        let governed = model.tokens[f.sig_start..end]
            .iter()
            .any(|t| t.ident().is_some_and(|w| w.contains("Limits")));
        if !governed {
            out.push((
                f.line,
                Rule::Limits,
                format!(
                    "public parser entry point `{}` bypasses resource governance; \
                     take a `&Limits` parameter or delegate to a `*_with_limits` \
                     sibling under an audited `lint: allow(limits)`",
                    f.name
                ),
            ));
        }
    }
}

/// Constructs that reintroduce unbounded queueing or unjoined threads
/// into a load-shedding server: (call name, final path segment, message).
const BOUNDED_CALLS: &[(&str, &str, &str)] = &[
    (
        "spawn",
        "thread",
        "detached `thread::spawn` has no join path; use `std::thread::scope` \
         so every worker is joined before the server returns",
    ),
    (
        "channel",
        "mpsc",
        "`mpsc::channel` queues without bound under overload; use the \
         crate's `BoundedQueue`, which sheds instead of growing",
    ),
    (
        "new",
        "VecDeque",
        "a `VecDeque` with no capacity policy can grow without bound; use \
         `VecDeque::with_capacity` behind an explicit capacity check",
    ),
];

fn scan_bounded(model: &FileModel, out: &mut Vec<Raw>) {
    for c in &model.calls {
        if c.is_macro || c.receiver.is_some() || model.in_test_cfg(c.token) {
            continue;
        }
        let Some(last) = c.path.last() else { continue };
        for (name, seg, msg) in BOUNDED_CALLS {
            if c.name == *name && last == seg {
                out.push((c.line, Rule::Bounded, (*msg).to_string()));
            }
        }
    }
}

/// Which rule families apply to a file, plus workspace bookkeeping.
#[derive(Debug, Clone)]
struct Classes {
    library: bool,
    limits: bool,
    bounded: bool,
    /// Qualifies lock classes in the workspace graph.
    crate_name: String,
    /// Emissions from this file count as catalog coverage but never
    /// produce findings.
    metrics_exempt: bool,
}

impl Classes {
    fn for_path(rel: &str) -> Classes {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") {
            parts.get(1).copied().unwrap_or("?")
        } else {
            parts.first().copied().unwrap_or("?")
        };
        Classes {
            library: is_linted_library_path(rel),
            limits: is_limits_governed_path(rel),
            bounded: is_bounded_governed_path(rel),
            crate_name: crate_name.to_owned(),
            metrics_exempt: parts.first() != Some(&"crates") || EXEMPT_CRATES.contains(&crate_name),
        }
    }

    fn governed(&self) -> bool {
        self.library || self.limits || self.bounded
    }
}

/// The full per-file result: suppressed findings plus the raw material
/// the workspace-level rules aggregate.
pub(crate) struct FileAnalysis {
    pub findings: Vec<Finding>,
    pub edges: Vec<locks::WsEdge>,
    pub emissions: Vec<metrics::Emission>,
    /// Reasoned allow entries as (rule, 0-based line), for
    /// workspace-stage suppression.
    pub allowed: Vec<(Rule, usize)>,
}

fn lint_file(rel: &Path, source: &str, classes: &Classes) -> FileAnalysis {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let model = FileModel::build(source);
    let mut table = AllowTable::parse(&model.stripped);
    let mut raw: Vec<Raw> = Vec::new();
    let mut edges = Vec::new();

    if classes.library {
        scan_panics(&model, &mut raw);
        scan_indexing(&model, &mut raw);
        scan_lock_in_loop(&model, &mut raw);
        scan_swallowed(&model, &mut raw);
        let (file_edges, issues) = locks::analyze(&model);
        for i in issues {
            raw.push((i.line, Rule::LockDiscipline, i.message));
        }
        for e in file_edges {
            // An audited allow at either acquisition suppresses the edge.
            if table.permits(Rule::LockDiscipline, e.line)
                || table.permits(Rule::LockDiscipline, e.holder_line)
            {
                continue;
            }
            edges.push(locks::WsEdge {
                holder: format!("{}:{}", classes.crate_name, e.holder),
                acquired: format!("{}:{}", classes.crate_name, e.acquired),
                file: rel_str.clone(),
                line: e.line,
            });
        }
    }
    if classes.limits {
        scan_limits(&model, &mut raw);
    }
    if classes.bounded {
        scan_bounded(&model, &mut raw);
    }

    raw.sort_by(|a, b| (a.0, a.1.name()).cmp(&(b.0, b.1.name())));
    let mut findings = Vec::new();
    if classes.governed() {
        for &(line, name) in &table.bad {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: line + 1,
                rule: Rule::BadAllow,
                message: format!("escape hatch `lint: allow({name})` requires a reason"),
            });
        }
    }
    for (line0, rule, message) in raw {
        if table.consume(rule, line0) {
            continue;
        }
        findings.push(Finding {
            file: rel.to_path_buf(),
            line: line0 + 1,
            rule,
            message,
        });
    }

    // Metric emissions feed the workspace catalog check; `#[cfg(test)]`
    // emissions are neither findings nor coverage.
    let emissions = model
        .metrics
        .iter()
        .filter(|u| {
            !model
                .stripped
                .lines
                .get(u.line)
                .is_some_and(|l| l.in_test_cfg)
        })
        .map(|u| metrics::Emission {
            file: rel_str.clone(),
            exempt: classes.metrics_exempt,
            used: u.clone(),
        })
        .collect();

    FileAnalysis {
        findings,
        edges,
        emissions,
        allowed: table.entries,
    }
}

/// Lints one library source file (panic, index, lock-in-loop,
/// swallowed-error, and the per-file lock-discipline checks).
pub fn lint_source(path: &Path, source: &str) -> Vec<Finding> {
    let classes = Classes {
        library: true,
        limits: false,
        bounded: false,
        crate_name: "test".to_owned(),
        metrics_exempt: true,
    };
    lint_file(path, source, &classes).findings
}

/// Lints one governed-crate source file for the **limits** rule only.
/// (Reason-less allows are reported as `bad-allow` by [`lint_source`] /
/// the workspace walk, which recognize the same marker.)
pub fn lint_limits(path: &Path, source: &str) -> Vec<Finding> {
    let classes = Classes {
        library: false,
        limits: true,
        bounded: false,
        crate_name: "test".to_owned(),
        metrics_exempt: true,
    };
    lint_file(path, source, &classes)
        .findings
        .into_iter()
        .filter(|f| f.rule == Rule::Limits)
        .collect()
}

/// Lints a server-crate source file for the **bounded** rule.
pub fn lint_bounded(path: &Path, source: &str) -> Vec<Finding> {
    let classes = Classes {
        library: false,
        limits: false,
        bounded: true,
        crate_name: "test".to_owned(),
        metrics_exempt: true,
    };
    lint_file(path, source, &classes).findings
}

/// Lints a crate root for `#![forbid(unsafe_code)]`.
pub fn lint_crate_root(path: &Path, source: &str) -> Vec<Finding> {
    let model = FileModel::build(source);
    let toks = &model.tokens;
    let found = toks.windows(6).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
    });
    if found {
        Vec::new()
    } else {
        vec![Finding {
            file: path.to_path_buf(),
            line: 1,
            rule: Rule::ForbidUnsafe,
            message: "crate root must declare `#![forbid(unsafe_code)]`".to_string(),
        }]
    }
}

/// Lints one crate's sources for `pub … *Error` types lacking a
/// `std::error::Error` impl. `sources` is (path, text) for every library
/// file of the crate.
pub fn lint_error_impls(sources: &[(PathBuf, String)]) -> Vec<Finding> {
    let mut declared: Vec<(PathBuf, usize, String)> = Vec::new();
    let mut implemented: Vec<String> = Vec::new();
    for (path, text) in sources {
        let model = FileModel::build(text);
        let toks = &model.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.is_ident("pub")
                && toks
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .is_some_and(|w| w == "enum" || w == "struct")
            {
                if let Some(name) = toks.get(i + 2).and_then(|t| t.ident()) {
                    if name.ends_with("Error") {
                        declared.push((path.clone(), toks[i + 2].line + 1, name.to_owned()));
                    }
                }
            }
            // `impl … Error for <Name>` — covers `std::error::Error for X`
            // and plain `Error for X`.
            if t.ident().is_some_and(|w| w.ends_with("Error"))
                && toks.get(i + 1).is_some_and(|t| t.is_ident("for"))
            {
                if let Some(name) = toks.get(i + 2).and_then(|t| t.ident()) {
                    implemented.push(name.to_owned());
                }
            }
        }
    }
    declared
        .into_iter()
        .filter(|(_, _, name)| !implemented.iter().any(|i| i == name))
        .map(|(file, line, name)| Finding {
            file,
            line,
            rule: Rule::ErrorImpl,
            message: format!("public error type `{name}` must implement `std::error::Error`"),
        })
        .collect()
}

/// True when `rel` (workspace-relative, forward slashes) is library code
/// of a serving crate subject to the **bounded** rule.
pub fn is_bounded_governed_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts.first() == Some(&"crates")
        && parts
            .get(1)
            .is_some_and(|c| BOUNDED_GOVERNED_CRATES.contains(c))
        && parts.get(2) == Some(&"src")
}

/// True when `rel` (workspace-relative, forward slashes) is library code
/// of an ingestion crate subject to the **limits** rule.
pub fn is_limits_governed_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts.first() == Some(&"crates")
        && parts
            .get(1)
            .is_some_and(|c| LIMITS_GOVERNED_CRATES.contains(c))
        && parts.get(2) == Some(&"src")
        && parts.get(3) != Some(&"bin")
}

/// True when `rel` (workspace-relative, forward slashes) is library code
/// subject to the per-file library rules.
pub fn is_linted_library_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") {
        if parts.get(1).is_some_and(|c| EXEMPT_CRATES.contains(c)) {
            return false;
        }
        // crates/<name>/src/** except src/bin/**.
        parts.get(2) == Some(&"src") && parts.get(3) != Some(&"bin")
    } else {
        // examples/, tests/ and anything else outside crates/ is exempt.
        false
    }
}

/// Per-member aggregation for the workspace-level rules.
pub(crate) struct MemberAnalysis {
    pub findings: Vec<Finding>,
    pub edges: Vec<locks::WsEdge>,
    pub emissions: Vec<metrics::Emission>,
    /// (file, rule, 0-based line) of every reasoned allow entry.
    pub allowed: Vec<(String, Rule, usize)>,
}

/// Walks the workspace and runs every rule — per-file, per-crate, and
/// workspace-wide (lock-order inversions, metrics catalog). `root` is
/// the workspace root.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut edges: Vec<locks::WsEdge> = Vec::new();
    let mut emissions: Vec<metrics::Emission> = Vec::new();
    let mut allowed: Vec<(String, Rule, usize)> = Vec::new();

    let mut member_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let dir = entry?.path();
        if dir.is_dir() {
            member_dirs.push(dir);
        }
    }
    member_dirs.push(root.join("examples"));
    member_dirs.push(root.join("tests"));
    member_dirs.sort();

    for dir in member_dirs {
        let member = lint_member_full(root, &dir)?;
        findings.extend(member.findings);
        edges.extend(member.edges);
        emissions.extend(member.emissions);
        allowed.extend(member.allowed);
    }

    // Workspace rule: lock-order inversions across the aggregate graph.
    for (ab, ba) in locks::lock_inversions(&edges) {
        findings.push(Finding {
            file: PathBuf::from(&ab.file),
            line: ab.line + 1,
            rule: Rule::LockDiscipline,
            message: format!(
                "lock-order inversion: `{}` acquired while holding `{}` here, \
                 but `{}` is acquired while holding `{}` at {}:{}",
                ab.acquired,
                ab.holder,
                ba.acquired,
                ba.holder,
                ba.file,
                ba.line + 1,
            ),
        });
    }

    // Workspace rule: metrics-catalog drift.
    let catalog_path = root.join(CATALOG_PATH);
    if catalog_path.is_file() {
        let text = std::fs::read_to_string(&catalog_path)?;
        let catalog = metrics::parse_catalog(&text);
        for issue in metrics::check(&catalog, CATALOG_PATH, &emissions) {
            let suppressed = allowed.iter().any(|(file, rule, line)| {
                *rule == Rule::MetricsCatalog && *file == issue.file && *line == issue.line
            });
            if !suppressed {
                findings.push(Finding {
                    file: PathBuf::from(&issue.file),
                    line: issue.line + 1,
                    rule: Rule::MetricsCatalog,
                    message: issue.message,
                });
            }
        }
    } else if emissions.iter().any(|e| !e.exempt) {
        findings.push(Finding {
            file: PathBuf::from(CATALOG_PATH),
            line: 1,
            rule: Rule::MetricsCatalog,
            message: "metrics are emitted but the workspace declares no catalog module".to_string(),
        });
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Lints a single workspace member directory (must contain `src/`).
/// Per-file and per-crate rules only; the workspace-wide rules
/// (inversions, catalog) need [`lint_workspace`].
pub fn lint_member(root: &Path, dir: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(lint_member_full(root, dir)?.findings)
}

pub(crate) fn lint_member_full(root: &Path, dir: &Path) -> std::io::Result<MemberAnalysis> {
    let mut analysis = MemberAnalysis {
        findings: Vec::new(),
        edges: Vec::new(),
        emissions: Vec::new(),
        allowed: Vec::new(),
    };
    let src = dir.join("src");
    if !src.is_dir() {
        return Ok(analysis);
    }

    // Crate root attribute rule — lib.rs, else main.rs.
    let crate_root = ["lib.rs", "main.rs"]
        .into_iter()
        .map(|f| src.join(f))
        .find(|p| p.is_file());
    if let Some(ref root_file) = crate_root {
        let text = std::fs::read_to_string(root_file)?;
        analysis
            .findings
            .extend(lint_crate_root(&relative(root, root_file), &text));
    }

    // Library sources.
    let mut sources: Vec<(PathBuf, String)> = Vec::new();
    collect_rs_files(&src, &mut |path| {
        let text = std::fs::read_to_string(path)?;
        sources.push((relative(root, path), text));
        Ok(())
    })?;
    sources.sort();

    for (rel, text) in &sources {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let classes = Classes::for_path(&rel_str);
        let file = lint_file(rel, text, &classes);
        analysis.findings.extend(file.findings);
        analysis.edges.extend(file.edges);
        analysis.emissions.extend(file.emissions);
        analysis.allowed.extend(
            file.allowed
                .into_iter()
                .map(|(r, l)| (rel_str.clone(), r, l)),
        );
    }

    // Error-impl rule sees the whole crate at once (impl may live in a
    // sibling module), excluding bin sources.
    let lib_sources: Vec<(PathBuf, String)> = sources
        .into_iter()
        .filter(|(rel, _)| {
            let s = rel.to_string_lossy().replace('\\', "/");
            !s.contains("/src/bin/")
        })
        .collect();
    analysis.findings.extend(lint_error_impls(&lib_sources));
    Ok(analysis)
}

fn relative(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

fn collect_rs_files(
    dir: &Path,
    f: &mut dyn FnMut(&Path) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src)
    }

    #[test]
    fn flags_unwrap_and_expect() {
        let f = lint_str("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::Panic));
    }

    #[test]
    fn flags_panic_macros() {
        let f = lint_str("fn f() { panic!(\"boom\"); todo!(); std::unreachable!() }");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn ignores_similar_identifiers() {
        let f = lint_str("fn f() { x.unwrap_or(0); x.unwrap_or_else(g); my_panic!(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_assert_macros() {
        let f = lint_str("fn f() { assert!(x > 0); assert_eq!(a, b); assert_ne!(a, b); }");
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::Panic));
    }

    #[test]
    fn debug_assert_is_allowed() {
        let f = lint_str("fn f() { debug_assert!(x > 0); debug_assert_eq!(a, b); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn assert_in_test_cfg_is_exempt() {
        let f = lint_str("#[cfg(test)]\nmod tests {\n fn t() { assert_eq!(1, 1); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_hatch_covers_asserts() {
        let f = lint_str("assert!(q >= 1); // lint: allow(panic) documented contract\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ignores_strings_and_comments() {
        let f = lint_str("// calls x.unwrap()\nlet s = \"panic!()\";");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let f = lint_str("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses_exactly_one() {
        let one = lint_str("x.unwrap(); // lint: allow(panic) infallible: set above\n");
        assert!(one.is_empty(), "{one:?}");
        let two = lint_str("x.unwrap(); y.unwrap(); // lint: allow(panic) only covers one\n");
        assert_eq!(two.len(), 1);
    }

    #[test]
    fn allow_comment_on_previous_line() {
        let f = lint_str("// lint: allow(panic) guarded by is_some above\nx.unwrap();\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_without_reason_is_flagged() {
        let f = lint_str("x.unwrap(); // lint: allow(panic)\n");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.rule == Rule::BadAllow));
        assert!(f.iter().any(|f| f.rule == Rule::Panic));
    }

    #[test]
    fn flags_arithmetic_subscripts_only() {
        let f = lint_str("let a = v[i + 1]; let b = v[i]; let c = s[..n - 1];");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::Index));
    }

    #[test]
    fn index_rule_sees_multiline_subscripts() {
        let f = lint_str("let a = v[\n    i + 1\n];\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Index);
    }

    #[test]
    fn index_rule_skips_array_types_and_attributes() {
        let f = lint_str("#[derive(Debug)]\nstruct S { buf: [u8; N + 1] }\nlet x = [0; n + 1];");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let missing = lint_crate_root(Path::new("lib.rs"), "//! doc\npub mod a;\n");
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, Rule::ForbidUnsafe);
        let ok = lint_crate_root(
            Path::new("lib.rs"),
            "//! doc\n#![forbid(unsafe_code)]\npub mod a;\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn error_types_must_implement_error() {
        let bad = vec![(
            PathBuf::from("error.rs"),
            "pub enum ParseError { Bad }\n".to_string(),
        )];
        let f = lint_error_impls(&bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ErrorImpl);

        let good = vec![(
            PathBuf::from("error.rs"),
            "pub enum ParseError { Bad }\nimpl std::error::Error for ParseError {}\n".to_string(),
        )];
        assert!(lint_error_impls(&good).is_empty());
    }

    #[test]
    fn impl_in_sibling_module_counts() {
        let sources = vec![
            (PathBuf::from("a.rs"), "pub struct IoError;\n".to_string()),
            (
                PathBuf::from("b.rs"),
                "impl std::error::Error for IoError {}\n".to_string(),
            ),
        ];
        assert!(lint_error_impls(&sources).is_empty());
    }

    #[test]
    fn flags_lock_acquisition_inside_for_loop() {
        let f = lint_str("fn f() {\n for n in nodes {\n let d = cache.read();\n }\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockInLoop);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn flags_all_lock_methods_in_loops() {
        let f = lint_str(
            "for x in xs {\n a.write();\n b.lock();\n c.try_read();\n d.try_write();\n e.try_lock();\n}\n",
        );
        assert_eq!(f.len(), 5, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::LockInLoop));
    }

    #[test]
    fn lock_in_loop_header_runs_once_and_is_allowed() {
        let f = lint_str("for x in map.read().iter() {\n use_it(x);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_in_single_line_loop_is_flagged() {
        let f = lint_str("for x in xs { m.read(); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockInLoop);
    }

    #[test]
    fn lock_outside_loops_is_allowed() {
        let f = lint_str(
            "fn f() { let g = m.read(); for x in xs { use_it(x); }\n let h = n.write(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn io_style_calls_with_arguments_are_not_locks() {
        let f = lint_str("fn g() {\nfor x in xs {\n file.write(buf);\n src.read(buf);\n}\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let f = lint_str("impl Display for Finding {\n fn fmt(&self) { m.read(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let f = lint_str("fn f(g: impl for<'a> Fn(&'a str)) { m.read(); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_in_loop_allow_hatch_works() {
        let f = lint_str(
            "for x in xs {\n // lint: allow(lock-in-loop) rarely-contended config lock\n m.read();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let bare = lint_str("for x in xs {\n m.read(); // lint: allow(lock-in-loop)\n}\n");
        assert_eq!(bare.len(), 2, "{bare:?}");
        assert!(bare.iter().any(|f| f.rule == Rule::BadAllow));
    }

    #[test]
    fn lock_in_test_cfg_loop_is_exempt() {
        let f = lint_str("#[cfg(test)]\nmod tests {\n fn t() { for x in xs { m.read(); } }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn same_class_reacquire_is_lock_discipline() {
        let f = lint_str("fn f() {\n let g = m.read();\n let h = m.write();\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockDiscipline);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn guard_across_blocking_is_lock_discipline() {
        let f =
            lint_str("fn f(s: &mut TcpStream) {\n let g = state.lock();\n s.write_all(buf);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockDiscipline);
    }

    #[test]
    fn lock_discipline_allow_hatch_works() {
        let f = lint_str(
            "fn f(s: &mut TcpStream) {\n let g = state.lock();\n // lint: allow(lock-discipline) single-threaded startup path\n s.write_all(buf);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn swallowed_let_discard_of_call_is_flagged() {
        let f = lint_str("fn f() {\n let _ = write_response(stream, 200);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::SwallowedError);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn swallowed_ignores_plain_ident_and_tuple_discards() {
        let f = lint_str("fn f() {\n let _ = prep;\n let _ = (ns, local);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn swallowed_statement_final_ok_is_flagged() {
        let f = lint_str("fn f() {\n sender.try_send(x).ok();\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::SwallowedError);
    }

    #[test]
    fn swallowed_skips_used_ok_values() {
        let f = lint_str(
            "fn f() -> Option<u32> {\n let v = parse(s).ok();\n if v.is_none() { return parse(t).ok(); }\n v\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn swallowed_allow_hatch_and_test_cfg() {
        let allowed = lint_str(
            "fn f() {\n // lint: allow(swallowed-error) best-effort telemetry write\n let _ = emit(x);\n}\n",
        );
        assert!(allowed.is_empty(), "{allowed:?}");
        let test_cfg = lint_str("#[cfg(test)]\nmod tests {\n fn t() { tx.send(1).ok(); }\n}\n");
        assert!(test_cfg.is_empty(), "{test_cfg:?}");
    }

    fn lint_limits_str(src: &str) -> Vec<Finding> {
        lint_limits(Path::new("crates/rdf/src/test.rs"), src)
    }

    #[test]
    fn limits_rule_flags_ungoverned_parser() {
        let f = lint_limits_str("pub fn parse_turtle(input: &str) -> Result<Graph> {\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Limits);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn limits_rule_accepts_limits_parameter() {
        let f = lint_limits_str(
            "pub fn parse_turtle_with_limits(input: &str, limits: &Limits) -> Result<Graph> {\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn limits_rule_sees_multiline_signatures() {
        let f = lint_limits_str(
            "pub fn parse_rdfxml_with_limits(\n    input: &str,\n    limits: &Limits,\n) -> Result<Graph> {\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn limits_rule_allow_hatch_with_reason() {
        let above = lint_limits_str(
            "// lint: allow(limits) convenience wrapper applying Limits::default()\npub fn parse(input: &str) -> Result<Graph> {\n}\n",
        );
        assert!(above.is_empty(), "{above:?}");
        let inline = lint_limits_str(
            "pub fn parse(input: &str) -> Result<Graph> { // lint: allow(limits) delegates\n}\n",
        );
        assert!(inline.is_empty(), "{inline:?}");
        // A reason-less allow does not suppress (and lint_source reports it
        // as bad-allow).
        let bare = lint_limits_str(
            "// lint: allow(limits)\npub fn parse(input: &str) -> Result<Graph> {\n}\n",
        );
        assert_eq!(bare.len(), 1, "{bare:?}");
    }

    #[test]
    fn limits_rule_ignores_non_parser_fns_and_tests() {
        let f = lint_limits_str(
            "pub fn to_string(g: &Graph) -> String {\n}\nfn parse_private(s: &str) {}\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let t = lint_limits_str("#[cfg(test)]\nmod tests {\n pub fn parse_helper(s: &str) {}\n}\n");
        assert!(t.is_empty(), "{t:?}");
    }

    fn lint_bounded_str(src: &str) -> Vec<Finding> {
        lint_bounded(Path::new("crates/server/src/test.rs"), src)
    }

    #[test]
    fn bounded_rule_flags_detached_spawn_and_unbounded_queues() {
        let f = lint_bounded_str(
            "fn f() {\n std::thread::spawn(|| work());\n let (tx, rx) = mpsc::channel();\n let q: VecDeque<u32> = VecDeque::new();\n}\n",
        );
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::Bounded));
    }

    #[test]
    fn bounded_rule_accepts_scoped_threads_and_capacity_queues() {
        let f = lint_bounded_str(
            "fn f() {\n std::thread::scope(|s| { s.spawn(|| work()); });\n let q = VecDeque::with_capacity(8);\n let (tx, rx) = mpsc::sync_channel(8);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bounded_rule_allow_hatch_and_test_cfg() {
        let allowed = lint_bounded_str(
            "// lint: allow(bounded) short-lived fixture thread, joined below\nstd::thread::spawn(|| work());\n",
        );
        assert!(allowed.is_empty(), "{allowed:?}");
        let bare = lint_bounded_str("std::thread::spawn(|| work()); // lint: allow(bounded)\n");
        assert_eq!(bare.len(), 2, "{bare:?}");
        assert!(bare.iter().any(|f| f.rule == Rule::BadAllow));
        let test_cfg = lint_bounded_str(
            "#[cfg(test)]\nmod tests {\n fn t() { std::thread::spawn(|| ()); }\n}\n",
        );
        assert!(test_cfg.is_empty(), "{test_cfg:?}");
    }

    #[test]
    fn bounded_governed_path_classification() {
        assert!(is_bounded_governed_path("crates/server/src/lib.rs"));
        assert!(is_bounded_governed_path("crates/server/src/queue.rs"));
        assert!(!is_bounded_governed_path("crates/core/src/cache.rs"));
        assert!(!is_bounded_governed_path("crates/server/tests/e2e.rs"));
        assert!(!is_bounded_governed_path("tests/tests/server.rs"));
    }

    #[test]
    fn limits_governed_path_classification() {
        assert!(is_limits_governed_path("crates/rdf/src/turtle.rs"));
        assert!(is_limits_governed_path("crates/sexpr/src/parser.rs"));
        assert!(is_limits_governed_path("crates/wrappers/src/wordnet.rs"));
        assert!(!is_limits_governed_path("crates/core/src/facade.rs"));
        assert!(!is_limits_governed_path("crates/rdf/tests/proptests.rs"));
        assert!(!is_limits_governed_path("crates/rdf/src/bin/tool.rs"));
    }

    #[test]
    fn library_path_classification() {
        assert!(is_linted_library_path("crates/rdf/src/turtle.rs"));
        assert!(is_linted_library_path("crates/soqa/src/ql/eval.rs"));
        assert!(!is_linted_library_path("crates/rdf/tests/proptests.rs"));
        assert!(!is_linted_library_path("crates/bench/src/corpus.rs"));
        assert!(!is_linted_library_path("crates/xtask/src/rules.rs"));
        assert!(!is_linted_library_path("crates/bench/src/bin/table1.rs"));
        assert!(!is_linted_library_path("crates/core/src/bin/server.rs"));
        assert!(!is_linted_library_path("examples/quickstart.rs"));
        assert!(!is_linted_library_path("tests/tests/end_to_end.rs"));
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }
}

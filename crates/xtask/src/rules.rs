//! Lint rules and the workspace walker.
//!
//! Policy (documented in README.md §Static analysis):
//!
//! - **panic**: non-test library code must not call `.unwrap()` /
//!   `.unwrap_err()` / `.expect()` / `.expect_err()` or invoke `panic!` /
//!   `unimplemented!` / `todo!` / `unreachable!`. Parsers and services
//!   return their crate error type instead of aborting the process. The
//!   `assert!` / `assert_eq!` / `assert_ne!` macros are flagged too:
//!   precondition checks in library code should degrade or return errors
//!   (`debug_assert!` stays allowed — it compiles out of release builds).
//! - **index**: subscripts containing `+`/`-` arithmetic (`v[i + 1]`,
//!   `s[pos..pos - k]`) are the classic off-by-one panic sites; use
//!   `.get()` / `.get_mut()` or restructure. Plain `v[i]` is allowed —
//!   flagging every subscript would drown the signal.
//! - **forbid-unsafe**: every crate root carries `#![forbid(unsafe_code)]`.
//! - **error-impl**: every `pub` type named `*Error` implements
//!   `std::error::Error`.
//! - **lock-in-loop**: `.read()` / `.write()` / `.lock()` (and the
//!   `try_` variants) inside a `for` loop body re-acquire a lock per
//!   iteration — the exact bug class behind `Taxonomy::mrca` locking the
//!   depth cache once per candidate. Hoist the guard (or a cheap `Arc`
//!   clone of the data) out of the loop. Acquisitions in the loop
//!   *header* (`for x in m.read()…`) run once and are not flagged.
//! - **limits**: in the ingestion crates (`rdf`, `sexpr`, `wrappers`),
//!   every `pub fn parse*` must take the resource-governance `Limits`
//!   type somewhere in its signature. Parsers consume untrusted input;
//!   an entry point without limits revives the unbounded
//!   recursion/allocation bug class the governance layer closed.
//!   Convenience wrappers that delegate to a `*_with_limits` sibling
//!   under `Limits::default()` carry an audited
//!   `// lint: allow(limits) <reason>` instead.
//! - **bounded**: in the server crate (`crates/server`), no unbounded
//!   queueing and no detached threads: `mpsc::channel` (unbounded) and
//!   `VecDeque::new` (no capacity policy) are forbidden in favour of the
//!   crate's shed-on-overflow `BoundedQueue`, and `thread::spawn`
//!   (detached, no join path) is forbidden in favour of
//!   `std::thread::scope`, whose workers are always joined. These are
//!   the two bug classes a load-shedding server must never reintroduce:
//!   a queue that grows without limit under overload, and a worker
//!   nobody waits for on shutdown.
//!
//! Escape hatch: `// lint: allow(panic) <reason>` (or `allow(index)`,
//! `allow(lock-in-loop)`, `allow(limits)`, `allow(bounded)`) on the
//! offending line, or alone on the line above, suppresses exactly one
//! finding of that rule. The reason is mandatory.
//!
//! Exempt from panic/index rules: `tests/`, `benches/`, `examples/`,
//! `src/bin/` binaries, the `xtask` tooling crate, the `sst-bench`
//! harness crate, and `#[cfg(test)]` regions anywhere.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::scan::{is_ident_char, strip, Stripped};

/// Crates whose *library* code is exempt from the panic/index rules:
/// development tooling and the benchmark harness, which are never part
/// of the served library surface.
const EXEMPT_CRATES: &[&str] = &["xtask", "bench"];

/// Crates whose library code ingests untrusted input and is therefore
/// subject to the **limits** rule.
const LIMITS_GOVERNED_CRATES: &[&str] = &["rdf", "sexpr", "wrappers"];

/// Crates serving network traffic, subject to the **bounded** rule: no
/// unbounded queues, no detached threads.
const BOUNDED_GOVERNED_CRATES: &[&str] = &["server"];

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    Panic,
    Index,
    ForbidUnsafe,
    ErrorImpl,
    LockInLoop,
    Limits,
    Bounded,
    BadAllow,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::ErrorImpl => "error-impl",
            Rule::LockInLoop => "lock-in-loop",
            Rule::Limits => "limits",
            Rule::Bounded => "bounded",
            Rule::BadAllow => "bad-allow",
        }
    }
}

/// One diagnostic, pointing at `file:line`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Method names whose call is a potential panic.
const PANIC_METHODS: &[&str] = &["unwrap", "unwrap_err", "expect", "expect_err"];
/// Macros that abort.
const PANIC_MACROS: &[&str] = &["panic", "unimplemented", "todo", "unreachable"];
/// Assertion macros: release-mode aborts hiding as precondition checks.
/// (`debug_assert*` is allowed — it compiles out of release builds.)
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Lints one library source file (panic + index + lock-in-loop rules).
pub fn lint_source(path: &Path, source: &str) -> Vec<Finding> {
    let stripped = strip(source);
    let mut findings = Vec::new();
    let mut locks = LoopLockScanner::default();
    for (idx, line) in stripped.lines.iter().enumerate() {
        // The lock scanner sees every line — brace depth must stay in sync
        // across `#[cfg(test)]` regions — but findings there are dropped.
        let mut line_findings = Vec::new();
        locks.scan_line(&line.code, &mut |message| {
            line_findings.push((Rule::LockInLoop, message));
        });
        if line.in_test_cfg {
            continue;
        }
        scan_panics(&line.code, &mut |message| {
            line_findings.push((Rule::Panic, message));
        });
        scan_indexing(&line.code, &mut |message| {
            line_findings.push((Rule::Index, message));
        });
        apply_allows(path, idx, &stripped, line_findings, &mut findings);
    }
    findings
}

/// Suppression: each `lint: allow(<rule>) reason` comment on the line —
/// or alone on the previous line — cancels exactly one finding of that
/// rule on this line.
fn apply_allows(
    path: &Path,
    idx: usize,
    stripped: &Stripped,
    line_findings: Vec<(Rule, String)>,
    out: &mut Vec<Finding>,
) {
    let mut allows: Vec<Rule> = Vec::new();
    let mut push_allow = |comment: &str, line_no: usize, out: &mut Vec<Finding>| {
        for (rule_name, rule) in [
            ("panic", Rule::Panic),
            ("index", Rule::Index),
            ("lock-in-loop", Rule::LockInLoop),
            ("limits", Rule::Limits),
            ("bounded", Rule::Bounded),
        ] {
            let marker = format!("lint: allow({rule_name})");
            if let Some(pos) = comment.find(&marker) {
                let reason = comment[pos + marker.len()..].trim();
                if reason.is_empty() {
                    out.push(Finding {
                        file: path.to_path_buf(),
                        line: line_no + 1,
                        rule: Rule::BadAllow,
                        message: format!(
                            "escape hatch `lint: allow({rule_name})` requires a reason"
                        ),
                    });
                } else {
                    allows.push(rule);
                }
            }
        }
    };
    // A standalone allow-comment line applies to the next line of code.
    if idx > 0 {
        let prev = &stripped.lines[idx - 1];
        if prev.code.trim().is_empty() && !prev.comment.is_empty() {
            push_allow(&prev.comment, idx - 1, out);
        }
    }
    let own_comment = stripped.lines[idx].comment.clone();
    if !own_comment.is_empty() {
        push_allow(&own_comment, idx, out);
    }

    for (rule, message) in line_findings {
        if let Some(pos) = allows.iter().position(|&r| r == rule) {
            allows.remove(pos);
            continue;
        }
        out.push(Finding {
            file: path.to_path_buf(),
            line: idx + 1,
            rule,
            message,
        });
    }
}

/// Zero-argument lock-acquisition methods of `std::sync::RwLock` /
/// `Mutex`. The empty-parens requirement below keeps `io::Read::read`
/// and `io::Write::write` (which take buffers) out of scope.
const LOCK_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Cross-line scanner for the **lock-in-loop** rule.
///
/// Tracks brace depth and the depths at which `for` loop bodies open, and
/// flags `.read()` / `.write()` / `.lock()` / `.try_*()` calls while at
/// least one `for` body is open. Char order within a line gives the header
/// exemption for free: in `for x in m.read().iter() {` the call precedes
/// the `{`, so no body is open yet.
#[derive(Debug, Default)]
struct LoopLockScanner {
    /// Current brace nesting depth.
    depth: usize,
    /// Depths at which a `for` body's `{` opened (innermost last).
    for_bodies: Vec<usize>,
    /// A `for … in` header was seen; the next `{` opens its body.
    pending_for: bool,
}

impl LoopLockScanner {
    fn scan_line(&mut self, code: &str, emit: &mut dyn FnMut(String)) {
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c == '{' {
                self.depth += 1;
                if self.pending_for {
                    self.for_bodies.push(self.depth);
                    self.pending_for = false;
                }
                i += 1;
                continue;
            }
            if c == '}' {
                if self.for_bodies.last() == Some(&self.depth) {
                    self.for_bodies.pop();
                }
                self.depth = self.depth.saturating_sub(1);
                i += 1;
                continue;
            }
            if !is_ident_char(c) {
                i += 1;
                continue;
            }
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            let word = &code[start..i];
            let before = code[..start].chars().next_back();
            let boundary_before = before != Some('.') && before.is_none_or(|c| !is_ident_char(c));
            // A loop header: the `for` keyword (not the HRTB `for<…>`)
            // followed by the `in` keyword before any `{` on this line.
            if word == "for"
                && boundary_before
                && !code[i..].trim_start().starts_with('<')
                && has_in_keyword(&code[i..])
            {
                self.pending_for = true;
                continue;
            }
            if before == Some('.')
                && LOCK_METHODS.contains(&word)
                && code[i..].trim_start().starts_with("()")
                && !self.for_bodies.is_empty()
            {
                emit(format!(
                    "`.{word}()` acquires a lock inside a `for` loop; \
                     hoist the guard (or an `Arc` of the data) out of the loop"
                ));
            }
        }
    }
}

/// True when the `in` keyword occurs in `rest` before any `{`.
fn has_in_keyword(rest: &str) -> bool {
    let bytes = rest.as_bytes();
    let mut j = 0;
    while j < bytes.len() {
        let c = bytes[j] as char;
        if c == '{' {
            return false;
        }
        if !is_ident_char(c) {
            j += 1;
            continue;
        }
        let start = j;
        while j < bytes.len() && is_ident_char(bytes[j] as char) {
            j += 1;
        }
        if &rest[start..j] == "in" {
            return true;
        }
    }
    false
}

/// Finds panic-family method calls and macros in one stripped code line.
fn scan_panics(code: &str, emit: &mut dyn FnMut(String)) {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if !is_ident_char(c) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_char(bytes[i] as char) {
            i += 1;
        }
        let word = &code[start..i];
        let before = code[..start].chars().next_back();
        let after_ws = code[i..].trim_start();
        if before == Some('.') && PANIC_METHODS.contains(&word) && after_ws.starts_with('(') {
            emit(format!(
                "`.{word}()` can panic; return the crate error type instead"
            ));
        }
        if before != Some('.')
            && before.is_none_or(|c| !is_ident_char(c))
            && after_ws.starts_with('!')
        {
            if PANIC_MACROS.contains(&word) {
                emit(format!(
                    "`{word}!` aborts on malformed input; return an error instead"
                ));
            }
            if ASSERT_MACROS.contains(&word) {
                emit(format!(
                    "`{word}!` aborts in release builds; return an error or use `debug_assert!`"
                ));
            }
        }
    }
}

/// Flags subscripts with `+`/`-` arithmetic: `v[i + 1]`, `s[..n - 1]`.
fn scan_indexing(code: &str, emit: &mut dyn FnMut(String)) {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // Require an indexable expression before the bracket: identifier,
        // `)` or `]`. This skips array types/literals and attributes.
        let before = chars[..i].iter().rev().find(|ch| !ch.is_whitespace());
        let indexable = matches!(before, Some(&b) if is_ident_char(b) || b == ')' || b == ']');
        if !indexable {
            continue;
        }
        // Walk to the matching close bracket.
        let mut depth = 1;
        let mut j = i + 1;
        let mut has_arith = false;
        while j < chars.len() && depth > 0 {
            match chars[j] {
                '[' | '(' => depth += 1,
                ']' | ')' => depth -= 1,
                '+' => has_arith = true,
                '-' if chars.get(j + 1) != Some(&'>') => has_arith = true,
                _ => {}
            }
            j += 1;
        }
        if has_arith && depth == 0 {
            emit(
                "arithmetic subscript can panic out of bounds; use `.get()`/checked math"
                    .to_string(),
            );
        }
    }
}

/// Lints one governed-crate source file for the **limits** rule: every
/// `pub fn parse*` must mention the `Limits` type somewhere in its
/// signature, or carry an audited `lint: allow(limits) <reason>` on its
/// first line or the line above. (Reason-less allows are reported as
/// `bad-allow` by [`lint_source`], which recognizes the same marker.)
pub fn lint_limits(path: &Path, source: &str) -> Vec<Finding> {
    let stripped = strip(source);
    let lines = &stripped.lines;
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test_cfg {
            continue;
        }
        let Some(name) = parser_fn_name(&line.code) else {
            continue;
        };
        // Accumulate the signature until the body opens or a `;` ends a
        // bodiless (trait) declaration.
        let mut signature = String::new();
        for sig_line in &lines[idx..] {
            signature.push_str(&sig_line.code);
            signature.push(' ');
            if sig_line.code.contains('{') || sig_line.code.trim_end().ends_with(';') {
                break;
            }
        }
        if signature.contains("Limits") || has_limits_allow(idx, lines) {
            continue;
        }
        findings.push(Finding {
            file: path.to_path_buf(),
            line: idx + 1,
            rule: Rule::Limits,
            message: format!(
                "public parser entry point `{name}` bypasses resource governance; \
                 take a `&Limits` parameter or delegate to a `*_with_limits` \
                 sibling under an audited `lint: allow(limits)`"
            ),
        });
    }
    findings
}

/// The identifier after `pub fn ` when it names a parser entry point.
fn parser_fn_name(code: &str) -> Option<&str> {
    let pos = code.find("pub fn ")?;
    let rest = &code[pos + "pub fn ".len()..];
    let end = rest.find(|c: char| !is_ident_char(c)).unwrap_or(rest.len());
    let name = &rest[..end];
    (name == "parse" || name.starts_with("parse_")).then_some(name)
}

/// True when line `idx` (or a standalone comment line above it) carries a
/// `lint: allow(limits)` marker with a reason.
fn has_limits_allow(idx: usize, lines: &[crate::scan::Line]) -> bool {
    if allows_limits(&lines[idx].comment) {
        return true;
    }
    idx > 0 && {
        let prev = &lines[idx - 1];
        prev.code.trim().is_empty() && allows_limits(&prev.comment)
    }
}

fn allows_limits(comment: &str) -> bool {
    const MARKER: &str = "lint: allow(limits)";
    comment
        .find(MARKER)
        .is_some_and(|pos| !comment[pos + MARKER.len()..].trim().is_empty())
}

/// Constructs that reintroduce unbounded queueing or unjoined threads
/// into a load-shedding server, with the fix each message demands.
const UNBOUNDED_PATTERNS: &[(&str, &str)] = &[
    (
        "thread::spawn(",
        "detached `thread::spawn` has no join path; use `std::thread::scope` \
         so every worker is joined before the server returns",
    ),
    (
        "mpsc::channel(",
        "`mpsc::channel` queues without bound under overload; use the \
         crate's `BoundedQueue`, which sheds instead of growing",
    ),
    (
        "VecDeque::new(",
        "a `VecDeque` with no capacity policy can grow without bound; use \
         `VecDeque::with_capacity` behind an explicit capacity check",
    ),
];

/// Lints a server-crate source file for the **bounded** rule (see the
/// module docs): unbounded channels/queues and detached threads are the
/// load-shedding server's forbidden bug classes.
pub fn lint_bounded(path: &Path, source: &str) -> Vec<Finding> {
    let stripped = strip(source);
    let mut findings = Vec::new();
    for (idx, line) in stripped.lines.iter().enumerate() {
        if line.in_test_cfg {
            continue;
        }
        let mut line_findings = Vec::new();
        for (pattern, message) in UNBOUNDED_PATTERNS {
            for _ in line.code.match_indices(pattern) {
                line_findings.push((Rule::Bounded, (*message).to_string()));
            }
        }
        apply_allows(path, idx, &stripped, line_findings, &mut findings);
    }
    findings
}

/// True when `rel` (workspace-relative, forward slashes) is library code
/// of a serving crate subject to the **bounded** rule.
pub fn is_bounded_governed_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts.first() == Some(&"crates")
        && parts
            .get(1)
            .is_some_and(|c| BOUNDED_GOVERNED_CRATES.contains(c))
        && parts.get(2) == Some(&"src")
}

/// True when `rel` (workspace-relative, forward slashes) is library code
/// of an ingestion crate subject to the **limits** rule.
pub fn is_limits_governed_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts.first() == Some(&"crates")
        && parts
            .get(1)
            .is_some_and(|c| LIMITS_GOVERNED_CRATES.contains(c))
        && parts.get(2) == Some(&"src")
        && parts.get(3) != Some(&"bin")
}

/// Lints a crate root for `#![forbid(unsafe_code)]`.
pub fn lint_crate_root(path: &Path, source: &str) -> Vec<Finding> {
    let stripped = strip(source);
    let found = stripped.lines.iter().any(|l| {
        let compact: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
        compact.contains("#![forbid(unsafe_code)]")
    });
    if found {
        Vec::new()
    } else {
        vec![Finding {
            file: path.to_path_buf(),
            line: 1,
            rule: Rule::ForbidUnsafe,
            message: "crate root must declare `#![forbid(unsafe_code)]`".to_string(),
        }]
    }
}

/// Lints one crate's sources for `pub … *Error` types lacking a
/// `std::error::Error` impl. `sources` is (path, text) for every library
/// file of the crate.
pub fn lint_error_impls(sources: &[(PathBuf, String)]) -> Vec<Finding> {
    let mut declared: Vec<(PathBuf, usize, String)> = Vec::new();
    let mut implemented: Vec<String> = Vec::new();
    for (path, text) in sources {
        let stripped = strip(text);
        for (idx, line) in stripped.lines.iter().enumerate() {
            let code = line.code.trim();
            for intro in ["pub enum ", "pub struct "] {
                if let Some(rest) = code.strip_prefix(intro) {
                    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                    if name.ends_with("Error") {
                        declared.push((path.clone(), idx + 1, name));
                    }
                }
            }
            // `impl … Error for <Name>` — covers `std::error::Error for X`
            // and plain `Error for X`.
            if let Some(pos) = line.code.find("Error for ") {
                let rest = &line.code[pos + "Error for ".len()..];
                let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
                if !name.is_empty() {
                    implemented.push(name);
                }
            }
        }
    }
    declared
        .into_iter()
        .filter(|(_, _, name)| !implemented.iter().any(|i| i == name))
        .map(|(file, line, name)| Finding {
            file,
            line,
            rule: Rule::ErrorImpl,
            message: format!("public error type `{name}` must implement `std::error::Error`"),
        })
        .collect()
}

/// True when `rel` (workspace-relative, forward slashes) is library code
/// subject to the panic/index rules.
pub fn is_linted_library_path(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") {
        if parts.get(1).is_some_and(|c| EXEMPT_CRATES.contains(c)) {
            return false;
        }
        // crates/<name>/src/** except src/bin/**.
        parts.get(2) == Some(&"src") && parts.get(3) != Some(&"bin")
    } else {
        // examples/, tests/ and anything else outside crates/ is exempt.
        false
    }
}

/// Walks the workspace and runs every rule. `root` is the workspace root.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();

    let mut member_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let dir = entry?.path();
        if dir.is_dir() {
            member_dirs.push(dir);
        }
    }
    member_dirs.push(root.join("examples"));
    member_dirs.push(root.join("tests"));
    member_dirs.sort();

    for dir in member_dirs {
        findings.extend(lint_member(root, &dir)?);
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Lints a single workspace member directory (must contain `src/`).
pub fn lint_member(root: &Path, dir: &Path) -> std::io::Result<Vec<Finding>> {
    let src = dir.join("src");
    if !src.is_dir() {
        return Ok(Vec::new());
    }
    let mut findings = Vec::new();

    // Crate root attribute rule — lib.rs, else main.rs.
    let crate_root = ["lib.rs", "main.rs"]
        .into_iter()
        .map(|f| src.join(f))
        .find(|p| p.is_file());
    if let Some(ref root_file) = crate_root {
        let text = std::fs::read_to_string(root_file)?;
        findings.extend(lint_crate_root(&relative(root, root_file), &text));
    }

    // Library sources.
    let mut sources: Vec<(PathBuf, String)> = Vec::new();
    collect_rs_files(&src, &mut |path| {
        let text = std::fs::read_to_string(path)?;
        sources.push((relative(root, path), text));
        Ok(())
    })?;
    sources.sort();

    for (rel, text) in &sources {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if is_linted_library_path(&rel_str) {
            findings.extend(lint_source(rel, text));
        }
        if is_limits_governed_path(&rel_str) {
            findings.extend(lint_limits(rel, text));
        }
        if is_bounded_governed_path(&rel_str) {
            findings.extend(lint_bounded(rel, text));
        }
    }

    // Error-impl rule sees the whole crate at once (impl may live in a
    // sibling module), excluding bin sources.
    let lib_sources: Vec<(PathBuf, String)> = sources
        .into_iter()
        .filter(|(rel, _)| {
            let s = rel.to_string_lossy().replace('\\', "/");
            !s.contains("/src/bin/")
        })
        .collect();
    findings.extend(lint_error_impls(&lib_sources));
    Ok(findings)
}

fn relative(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

fn collect_rs_files(
    dir: &Path,
    f: &mut dyn FnMut(&Path) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src)
    }

    #[test]
    fn flags_unwrap_and_expect() {
        let f = lint_str("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::Panic));
    }

    #[test]
    fn flags_panic_macros() {
        let f = lint_str("fn f() { panic!(\"boom\"); todo!(); std::unreachable!() }");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn ignores_similar_identifiers() {
        let f = lint_str("fn f() { x.unwrap_or(0); x.unwrap_or_else(g); my_panic!(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_assert_macros() {
        let f = lint_str("fn f() { assert!(x > 0); assert_eq!(a, b); assert_ne!(a, b); }");
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::Panic));
    }

    #[test]
    fn debug_assert_is_allowed() {
        let f = lint_str("fn f() { debug_assert!(x > 0); debug_assert_eq!(a, b); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn assert_in_test_cfg_is_exempt() {
        let f = lint_str("#[cfg(test)]\nmod tests {\n fn t() { assert_eq!(1, 1); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_hatch_covers_asserts() {
        let f = lint_str("assert!(q >= 1); // lint: allow(panic) documented contract\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ignores_strings_and_comments() {
        let f = lint_str("// calls x.unwrap()\nlet s = \"panic!()\";");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let f = lint_str("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses_exactly_one() {
        let one = lint_str("x.unwrap(); // lint: allow(panic) infallible: set above\n");
        assert!(one.is_empty(), "{one:?}");
        let two = lint_str("x.unwrap(); y.unwrap(); // lint: allow(panic) only covers one\n");
        assert_eq!(two.len(), 1);
    }

    #[test]
    fn allow_comment_on_previous_line() {
        let f = lint_str("// lint: allow(panic) guarded by is_some above\nx.unwrap();\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_without_reason_is_flagged() {
        let f = lint_str("x.unwrap(); // lint: allow(panic)\n");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.rule == Rule::BadAllow));
        assert!(f.iter().any(|f| f.rule == Rule::Panic));
    }

    #[test]
    fn flags_arithmetic_subscripts_only() {
        let f = lint_str("let a = v[i + 1]; let b = v[i]; let c = s[..n - 1];");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::Index));
    }

    #[test]
    fn index_rule_skips_array_types_and_attributes() {
        let f = lint_str("#[derive(Debug)]\nstruct S { buf: [u8; N + 1] }\nlet x = [0; n + 1];");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let missing = lint_crate_root(Path::new("lib.rs"), "//! doc\npub mod a;\n");
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].rule, Rule::ForbidUnsafe);
        let ok = lint_crate_root(
            Path::new("lib.rs"),
            "//! doc\n#![forbid(unsafe_code)]\npub mod a;\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn error_types_must_implement_error() {
        let bad = vec![(
            PathBuf::from("error.rs"),
            "pub enum ParseError { Bad }\n".to_string(),
        )];
        let f = lint_error_impls(&bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ErrorImpl);

        let good = vec![(
            PathBuf::from("error.rs"),
            "pub enum ParseError { Bad }\nimpl std::error::Error for ParseError {}\n".to_string(),
        )];
        assert!(lint_error_impls(&good).is_empty());
    }

    #[test]
    fn impl_in_sibling_module_counts() {
        let sources = vec![
            (PathBuf::from("a.rs"), "pub struct IoError;\n".to_string()),
            (
                PathBuf::from("b.rs"),
                "impl std::error::Error for IoError {}\n".to_string(),
            ),
        ];
        assert!(lint_error_impls(&sources).is_empty());
    }

    #[test]
    fn flags_lock_acquisition_inside_for_loop() {
        let f = lint_str("fn f() {\n for n in nodes {\n let d = cache.read();\n }\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockInLoop);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn flags_all_lock_methods_in_loops() {
        let f = lint_str(
            "for x in xs {\n a.write();\n b.lock();\n c.try_read();\n d.try_write();\n e.try_lock();\n}\n",
        );
        assert_eq!(f.len(), 5, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::LockInLoop));
    }

    #[test]
    fn lock_in_loop_header_runs_once_and_is_allowed() {
        let f = lint_str("for x in map.read().iter() {\n use_it(x);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_in_single_line_loop_is_flagged() {
        let f = lint_str("for x in xs { m.read(); }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::LockInLoop);
    }

    #[test]
    fn lock_outside_loops_is_allowed() {
        let f = lint_str(
            "fn f() { let g = m.read(); for x in xs { use_it(x); }\n let h = m.write(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn io_style_calls_with_arguments_are_not_locks() {
        let f = lint_str("for x in xs {\n file.write(buf);\n src.read(buf);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let f = lint_str("impl Display for Finding {\n fn fmt(&self) { m.read(); }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let f = lint_str("fn f(g: impl for<'a> Fn(&'a str)) { m.read(); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_in_loop_allow_hatch_works() {
        let f = lint_str(
            "for x in xs {\n // lint: allow(lock-in-loop) rarely-contended config lock\n m.read();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let bare = lint_str("for x in xs {\n m.read(); // lint: allow(lock-in-loop)\n}\n");
        assert_eq!(bare.len(), 2, "{bare:?}");
        assert!(bare.iter().any(|f| f.rule == Rule::BadAllow));
    }

    #[test]
    fn lock_in_test_cfg_loop_is_exempt() {
        let f = lint_str("#[cfg(test)]\nmod tests {\n fn t() { for x in xs { m.read(); } }\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    fn lint_limits_str(src: &str) -> Vec<Finding> {
        lint_limits(Path::new("crates/rdf/src/test.rs"), src)
    }

    #[test]
    fn limits_rule_flags_ungoverned_parser() {
        let f = lint_limits_str("pub fn parse_turtle(input: &str) -> Result<Graph> {\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Limits);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn limits_rule_accepts_limits_parameter() {
        let f = lint_limits_str(
            "pub fn parse_turtle_with_limits(input: &str, limits: &Limits) -> Result<Graph> {\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn limits_rule_sees_multiline_signatures() {
        let f = lint_limits_str(
            "pub fn parse_rdfxml_with_limits(\n    input: &str,\n    limits: &Limits,\n) -> Result<Graph> {\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn limits_rule_allow_hatch_with_reason() {
        let above = lint_limits_str(
            "// lint: allow(limits) convenience wrapper applying Limits::default()\npub fn parse(input: &str) -> Result<Graph> {\n}\n",
        );
        assert!(above.is_empty(), "{above:?}");
        let inline = lint_limits_str(
            "pub fn parse(input: &str) -> Result<Graph> { // lint: allow(limits) delegates\n}\n",
        );
        assert!(inline.is_empty(), "{inline:?}");
        // A reason-less allow does not suppress (and lint_source reports it
        // as bad-allow).
        let bare = lint_limits_str(
            "// lint: allow(limits)\npub fn parse(input: &str) -> Result<Graph> {\n}\n",
        );
        assert_eq!(bare.len(), 1, "{bare:?}");
    }

    #[test]
    fn limits_rule_ignores_non_parser_fns_and_tests() {
        let f = lint_limits_str(
            "pub fn to_string(g: &Graph) -> String {\n}\nfn parse_private(s: &str) {}\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let t = lint_limits_str("#[cfg(test)]\nmod tests {\n pub fn parse_helper(s: &str) {}\n}\n");
        assert!(t.is_empty(), "{t:?}");
    }

    fn lint_bounded_str(src: &str) -> Vec<Finding> {
        lint_bounded(Path::new("crates/server/src/test.rs"), src)
    }

    #[test]
    fn bounded_rule_flags_detached_spawn_and_unbounded_queues() {
        let f = lint_bounded_str(
            "fn f() {\n std::thread::spawn(|| work());\n let (tx, rx) = mpsc::channel();\n let q: VecDeque<u32> = VecDeque::new();\n}\n",
        );
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::Bounded));
    }

    #[test]
    fn bounded_rule_accepts_scoped_threads_and_capacity_queues() {
        let f = lint_bounded_str(
            "fn f() {\n std::thread::scope(|s| { s.spawn(|| work()); });\n let q = VecDeque::with_capacity(8);\n let (tx, rx) = mpsc::sync_channel(8);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bounded_rule_allow_hatch_and_test_cfg() {
        let allowed = lint_bounded_str(
            "// lint: allow(bounded) short-lived fixture thread, joined below\nstd::thread::spawn(|| work());\n",
        );
        assert!(allowed.is_empty(), "{allowed:?}");
        let bare = lint_bounded_str("std::thread::spawn(|| work()); // lint: allow(bounded)\n");
        assert_eq!(bare.len(), 2, "{bare:?}");
        assert!(bare.iter().any(|f| f.rule == Rule::BadAllow));
        let test_cfg = lint_bounded_str(
            "#[cfg(test)]\nmod tests {\n fn t() { std::thread::spawn(|| ()); }\n}\n",
        );
        assert!(test_cfg.is_empty(), "{test_cfg:?}");
    }

    #[test]
    fn bounded_governed_path_classification() {
        assert!(is_bounded_governed_path("crates/server/src/lib.rs"));
        assert!(is_bounded_governed_path("crates/server/src/queue.rs"));
        assert!(!is_bounded_governed_path("crates/core/src/cache.rs"));
        assert!(!is_bounded_governed_path("crates/server/tests/e2e.rs"));
        assert!(!is_bounded_governed_path("tests/tests/server.rs"));
    }

    #[test]
    fn limits_governed_path_classification() {
        assert!(is_limits_governed_path("crates/rdf/src/turtle.rs"));
        assert!(is_limits_governed_path("crates/sexpr/src/parser.rs"));
        assert!(is_limits_governed_path("crates/wrappers/src/wordnet.rs"));
        assert!(!is_limits_governed_path("crates/core/src/facade.rs"));
        assert!(!is_limits_governed_path("crates/rdf/tests/proptests.rs"));
        assert!(!is_limits_governed_path("crates/rdf/src/bin/tool.rs"));
    }

    #[test]
    fn library_path_classification() {
        assert!(is_linted_library_path("crates/rdf/src/turtle.rs"));
        assert!(is_linted_library_path("crates/soqa/src/ql/eval.rs"));
        assert!(!is_linted_library_path("crates/rdf/tests/proptests.rs"));
        assert!(!is_linted_library_path("crates/bench/src/corpus.rs"));
        assert!(!is_linted_library_path("crates/xtask/src/rules.rs"));
        assert!(!is_linted_library_path("crates/bench/src/bin/table1.rs"));
        assert!(!is_linted_library_path("crates/core/src/bin/server.rs"));
        assert!(!is_linted_library_path("examples/quickstart.rs"));
        assert!(!is_linted_library_path("tests/tests/end_to_end.rs"));
    }
}

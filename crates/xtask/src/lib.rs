//! # xtask — workspace automation
//!
//! Implements the repo's static-analysis gate (`cargo xtask lint`) and
//! the one-command CI pipeline (`cargo xtask ci`). Zero external
//! dependencies by design: the gate must run in the same offline
//! environment as the build itself.
//!
//! The lint logic lives in a library target so the fixture-driven
//! integration tests (`tests/lint_fixtures.rs`) can drive it directly;
//! `src/main.rs` is a thin argument dispatcher.

#![forbid(unsafe_code)]

pub mod ci;
pub mod lex;
pub mod locks;
pub mod metrics;
pub mod model;
pub mod report;
pub mod rules;
pub mod scan;

use std::path::PathBuf;

/// Workspace root, derived from this crate's manifest location
/// (`crates/xtask` → two levels up), so the tool works from any cwd.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

//! The `cargo xtask ci` pipeline: fmt-check → lint → clippy → build →
//! test, stopping at the first failing stage. One command, the whole
//! gate — `ci.sh` at the repo root is a thin wrapper around this.

use std::path::Path;
use std::process::Command;

/// A CI stage: a display name plus the cargo arguments to run.
const STAGES: &[(&str, &[&str])] = &[
    ("fmt", &["fmt", "--all", "--", "--check"]),
    // ("lint") runs in-process between fmt and clippy; see `run`.
    (
        "clippy",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
    ),
    ("build", &["build", "--release", "--workspace"]),
    ("test", &["test", "-q", "--workspace"]),
];

/// Runs the full pipeline; returns `Err(stage)` naming the first failure.
pub fn run(root: &Path) -> Result<(), String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());

    for (i, (name, args)) in STAGES.iter().enumerate() {
        // The in-process lint slots in after fmt. The findings document
        // is archived as results/LINT.json either way, and per-rule
        // counts are printed so a red gate is diagnosable from the log.
        if i == 1 {
            eprintln!("ci: lint");
            let findings = crate::rules::lint_workspace(root)
                .map_err(|e| format!("lint: cannot walk workspace: {e}"))?;
            let results = root.join("results");
            if std::fs::create_dir_all(&results).is_ok() {
                // Best-effort artifact: a full disk must not mask findings.
                let _ =
                    std::fs::write(results.join("LINT.json"), crate::report::to_json(&findings));
                // lint: allow(swallowed-error) artifact write is best-effort by design
            }
            if !findings.is_empty() {
                for f in &findings {
                    eprintln!("{f}");
                }
                for (name, n) in crate::report::rule_counts(&findings) {
                    eprintln!("ci: lint: {name}: {n}");
                }
                return Err(format!("lint ({} finding(s))", findings.len()));
            }
        }
        eprintln!("ci: {name}");
        let status = Command::new(&cargo)
            .args(*args)
            .current_dir(root)
            .status()
            .map_err(|e| format!("{name}: failed to spawn cargo: {e}"))?;
        if !status.success() {
            return Err((*name).to_string());
        }
    }
    Ok(())
}

//! Metrics-catalog drift checker.
//!
//! `crates/obs/src/catalog.rs` declares every metric the workspace may
//! emit as `MetricDecl { name, kind, help }` entries; this module parses
//! that file *statically* (a token walk — xtask stays dependency-free
//! and findings get real line numbers) and compares the declarations
//! against every metric-name literal the [`crate::model`] pass extracted
//! from registry call sites.
//!
//! Name grammar:
//!
//! * Declared names are dotted segments; a segment is a literal or `*`
//!   (exactly one dynamic segment: `server.requests.*`).
//! * Emitted names come from string or `format!` literals; a `{…}`
//!   placeholder segment is dynamic and may expand to **one or more**
//!   declared segments (`"{prefix}.limit.{}"` matches
//!   `rdf.rdfxml.limit.*`).
//!
//! Checks: **undeclared** emission (with a nearest-name suggestion),
//! **kind mismatch** (e.g. `inc` on a name declared as a histogram),
//! **collision** (two declarations whose patterns can match the same
//! name), and **never-emitted** (a declaration no scanned call site can
//! produce — drift in the other direction).

use crate::lex::{lex, TokenKind};
use crate::model::{MetricKind, MetricUse};
use crate::scan::strip;

/// One `MetricDecl` entry recovered from the catalog source.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    pub name: String,
    pub kind: MetricKind,
    /// 0-based line of the entry's name literal.
    pub line: usize,
}

/// A metrics-catalog finding, anchored to a file and 0-based line.
#[derive(Debug, Clone)]
pub struct CatalogIssue {
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// An emission site: file, whether its crate is exempt from findings
/// (exempt emissions still count as coverage), and the use itself.
#[derive(Debug, Clone)]
pub struct Emission {
    pub file: String,
    pub exempt: bool,
    pub used: MetricUse,
}

/// Extracts `MetricDecl { name: "…", kind: MetricKind::X, … }` entries
/// from catalog source by walking its token stream.
pub fn parse_catalog(source: &str) -> Vec<CatalogEntry> {
    let tokens = lex(&strip(source));
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("MetricDecl") && tokens.get(i + 1).is_some_and(|t| t.is_punct('{')) {
            let mut name: Option<(String, usize)> = None;
            let mut kind: Option<MetricKind> = None;
            let mut j = i + 2;
            let mut depth = 1usize;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => depth -= 1,
                    TokenKind::Ident(field) if depth == 1 => {
                        if field == "name" && tokens.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                            if let Some(text) = tokens.get(j + 2).and_then(|t| t.str_text()) {
                                name = Some((text.to_owned(), tokens[j + 2].line));
                                j += 2;
                            }
                        } else if field == "Counter" {
                            kind = Some(MetricKind::Counter);
                        } else if field == "Gauge" {
                            kind = Some(MetricKind::Gauge);
                        } else if field == "Histogram" {
                            kind = Some(MetricKind::Histogram);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if let (Some((name, line)), Some(kind)) = (name, kind) {
                out.push(CatalogEntry { name, kind, line });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// One segment of an emitted name.
enum Seg<'a> {
    Lit(&'a str),
    Dyn,
}

fn use_segs(name: &str) -> Vec<Seg<'_>> {
    name.split('.')
        .map(|s| {
            if s.contains('{') {
                Seg::Dyn
            } else {
                Seg::Lit(s)
            }
        })
        .collect()
}

/// True when the emitted name can expand to a name the declaration covers.
pub fn use_matches_decl(use_name: &str, decl_name: &str) -> bool {
    fn m(u: &[Seg<'_>], d: &[&str]) -> bool {
        match u.first() {
            None => d.is_empty(),
            Some(Seg::Lit(s)) => {
                !d.is_empty() && (d[0] == "*" || d[0] == *s) && m(&u[1..], &d[1..])
            }
            // A dynamic placeholder expands to one or more declared segments.
            Some(Seg::Dyn) => (1..=d.len()).any(|k| m(&u[1..], &d[k..])),
        }
    }
    let decl: Vec<&str> = decl_name.split('.').collect();
    m(&use_segs(use_name), &decl)
}

/// True when some concrete name matches both declarations (`*` is exactly
/// one segment, so patterns of different lengths never overlap).
fn decls_overlap(a: &str, b: &str) -> bool {
    let a: Vec<&str> = a.split('.').collect();
    let b: Vec<&str> = b.split('.').collect();
    a.len() == b.len()
        && a.iter()
            .zip(&b)
            .all(|(x, y)| *x == "*" || *y == "*" || x == y)
}

/// Plain Levenshtein distance, for typo suggestions.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Nearest declared name when it is close enough to look like a typo.
fn suggest<'a>(name: &str, catalog: &'a [CatalogEntry]) -> Option<&'a str> {
    catalog
        .iter()
        .map(|e| (levenshtein(name, &e.name), e.name.as_str()))
        .min()
        .filter(|(d, _)| *d <= 2)
        .map(|(_, n)| n)
}

/// Runs all four drift checks. `catalog_file` anchors never-emitted and
/// collision findings; emissions from exempt files count as coverage but
/// never produce findings themselves.
pub fn check(
    catalog: &[CatalogEntry],
    catalog_file: &str,
    emissions: &[Emission],
) -> Vec<CatalogIssue> {
    let mut issues = Vec::new();

    for (i, a) in catalog.iter().enumerate() {
        for b in &catalog[i + 1..] {
            if decls_overlap(&a.name, &b.name) {
                issues.push(CatalogIssue {
                    file: catalog_file.to_owned(),
                    line: b.line,
                    message: format!(
                        "catalog collision: `{}` overlaps `{}` (declared line {})",
                        b.name,
                        a.name,
                        a.line + 1,
                    ),
                });
            }
        }
    }

    for e in emissions {
        if e.exempt {
            continue;
        }
        let matching: Vec<&CatalogEntry> = catalog
            .iter()
            .filter(|c| use_matches_decl(&e.used.name, &c.name))
            .collect();
        if matching.is_empty() {
            let hint = suggest(&e.used.name, catalog)
                .map(|s| format!(" (did you mean `{s}`?)"))
                .unwrap_or_default();
            issues.push(CatalogIssue {
                file: e.file.clone(),
                line: e.used.line,
                message: format!("metric `{}` is not in the catalog{hint}", e.used.name),
            });
        } else if !matching.iter().any(|c| c.kind == e.used.kind) {
            issues.push(CatalogIssue {
                file: e.file.clone(),
                line: e.used.line,
                message: format!(
                    "metric `{}` emitted as {} but declared as {}",
                    e.used.name,
                    e.used.kind.name(),
                    matching[0].kind.name(),
                ),
            });
        }
    }

    for c in catalog {
        let emitted = emissions
            .iter()
            .any(|e| use_matches_decl(&e.used.name, &c.name));
        if !emitted {
            issues.push(CatalogIssue {
                file: catalog_file.to_owned(),
                line: c.line,
                message: format!("metric `{}` is declared but never emitted", c.name),
            });
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    const CATALOG_SRC: &str = r#"
pub const CATALOG: &[MetricDecl] = &[
    MetricDecl { name: "server.accepted", kind: MetricKind::Counter, help: "conns" },
    MetricDecl {
        name: "server.requests.*",
        kind: MetricKind::Counter,
        help: "per endpoint",
    },
    MetricDecl { name: "rdf.rdfxml.limit.*", kind: MetricKind::Counter, help: "limits" },
    MetricDecl { name: "core.build.latency", kind: MetricKind::Histogram, help: "ns" },
];
"#;

    fn catalog() -> Vec<CatalogEntry> {
        parse_catalog(CATALOG_SRC)
    }

    fn emit(name: &str, kind: MetricKind) -> Emission {
        Emission {
            file: "crates/demo/src/lib.rs".to_owned(),
            exempt: false,
            used: MetricUse {
                name: name.to_owned(),
                kind,
                line: 7,
            },
        }
    }

    #[test]
    fn catalog_parses_multiline_entries() {
        let c = catalog();
        let names: Vec<&str> = c.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "server.accepted",
                "server.requests.*",
                "rdf.rdfxml.limit.*",
                "core.build.latency",
            ]
        );
        assert_eq!(c[3].kind, MetricKind::Histogram);
    }

    #[test]
    fn wildcard_matches_one_segment() {
        assert!(use_matches_decl("server.requests.ql", "server.requests.*"));
        assert!(use_matches_decl(
            "server.requests.{endpoint}",
            "server.requests.*"
        ));
        assert!(!use_matches_decl(
            "server.requests.a.b",
            "server.requests.*"
        ));
        assert!(!use_matches_decl("server.requests", "server.requests.*"));
    }

    #[test]
    fn dyn_segment_spans_multiple_decl_segments() {
        assert!(use_matches_decl("{prefix}.limit.{}", "rdf.rdfxml.limit.*"));
        assert!(!use_matches_decl("{prefix}.limit.{}", "server.accepted"));
    }

    #[test]
    fn undeclared_gets_a_suggestion() {
        let issues = check(
            &catalog(),
            "cat.rs",
            &[emit("server.acepted", MetricKind::Counter)],
        );
        let undeclared = issues
            .iter()
            .find(|i| i.message.contains("not in the catalog"))
            .expect("undeclared finding");
        assert!(
            undeclared.message.contains("server.accepted"),
            "{}",
            undeclared.message
        );
    }

    #[test]
    fn kind_mismatch_is_flagged() {
        let issues = check(
            &catalog(),
            "cat.rs",
            &[emit("core.build.latency", MetricKind::Counter)],
        );
        assert!(
            issues
                .iter()
                .any(|i| i.message.contains("emitted as counter")),
            "{issues:?}"
        );
    }

    #[test]
    fn never_emitted_is_flagged_and_exempt_counts_as_coverage() {
        let mut bench = emit("core.build.latency", MetricKind::Histogram);
        bench.exempt = true;
        let uses = vec![
            emit("server.accepted", MetricKind::Counter),
            emit("server.requests.{e}", MetricKind::Counter),
            emit("{p}.limit.{}", MetricKind::Counter),
            bench,
        ];
        let issues = check(&catalog(), "cat.rs", &uses);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn collisions_are_reported_once() {
        let mut c = catalog();
        c.push(CatalogEntry {
            name: "server.*".to_owned(),
            kind: MetricKind::Counter,
            line: 40,
        });
        let uses = vec![
            emit("server.accepted", MetricKind::Counter),
            emit("server.requests.{e}", MetricKind::Counter),
            emit("{p}.limit.{}", MetricKind::Counter),
            emit("core.build.latency", MetricKind::Histogram),
            emit("server.shed", MetricKind::Counter),
        ];
        let issues = check(&c, "cat.rs", &uses);
        let collisions: Vec<_> = issues
            .iter()
            .filter(|i| i.message.contains("collision"))
            .collect();
        assert_eq!(collisions.len(), 1, "{issues:?}");
        assert!(collisions[0].message.contains("server.accepted"));
    }
}

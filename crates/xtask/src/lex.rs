//! Token-stream lexer over stripped source.
//!
//! [`crate::scan::strip`] removes comments and blanks literal contents so
//! nothing inside them can trigger a rule; this module turns the stripped
//! lines into a flat token stream — identifiers, punctuation, and string
//! literals (re-attached from [`crate::scan::StrLit`], since rules like
//! metrics-catalog must read literal contents). The stream is what
//! [`crate::model`] builds its per-file semantic model from: rules that
//! used to pattern-match single lines now see real token adjacency across
//! line breaks, which kills the multi-line false-negative class (split
//! signatures, chained calls) without a full Rust parser.

use std::collections::HashMap;

use crate::scan::{is_ident_char, Stripped};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (numbers also land here; no rule needs to
    /// distinguish them).
    Ident(String),
    /// A string literal with its original contents.
    Str(String),
    /// A single punctuation character.
    Punct(char),
}

/// A token plus its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// 0-based line of the token's first character.
    pub line: usize,
    /// 0-based char column within the stripped code line.
    pub col: usize,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The literal contents, if this token is a string literal.
    pub fn str_text(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True when this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.ident() == Some(word)
    }
}

/// Lexes a stripped file into a token stream.
pub fn lex(stripped: &Stripped) -> Vec<Token> {
    let lit_at: HashMap<(usize, usize), usize> = stripped
        .literals
        .iter()
        .enumerate()
        .map(|(i, l)| ((l.line, l.col), i))
        .collect();

    let mut tokens = Vec::new();
    let mut line_idx = 0;
    let mut col = 0;
    while line_idx < stripped.lines.len() {
        let chars: Vec<char> = stripped.lines[line_idx].code.chars().collect();
        let mut jumped = false;
        while col < chars.len() {
            let c = chars[col];
            if c.is_whitespace() {
                col += 1;
                continue;
            }
            if c == '"' {
                if let Some(&i) = lit_at.get(&(line_idx, col)) {
                    let lit = &stripped.literals[i];
                    tokens.push(Token {
                        kind: TokenKind::Str(lit.text.clone()),
                        line: line_idx,
                        col,
                    });
                    if lit.end_line != line_idx {
                        line_idx = lit.end_line;
                        col = lit.end_col;
                        jumped = true;
                        break;
                    }
                    col = lit.end_col;
                    continue;
                }
                // A quote with no recorded literal (unterminated at EOF):
                // emit as punctuation and move on.
                tokens.push(Token {
                    kind: TokenKind::Punct('"'),
                    line: line_idx,
                    col,
                });
                col += 1;
                continue;
            }
            if is_ident_char(c) {
                let start = col;
                while col < chars.len() && is_ident_char(chars[col]) {
                    col += 1;
                }
                let word: String = chars[start..col].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(word),
                    line: line_idx,
                    col: start,
                });
                continue;
            }
            tokens.push(Token {
                kind: TokenKind::Punct(c),
                line: line_idx,
                col,
            });
            col += 1;
        }
        if !jumped {
            line_idx += 1;
            col = 0;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::strip;

    fn lex_str(src: &str) -> Vec<Token> {
        lex(&strip(src))
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex_str(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_and_literals() {
        let k = kinds("m.counter(\"core.cache.hits\");");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("m".into()),
                TokenKind::Punct('.'),
                TokenKind::Ident("counter".into()),
                TokenKind::Punct('('),
                TokenKind::Str("core.cache.hits".into()),
                TokenKind::Punct(')'),
                TokenKind::Punct(';'),
            ]
        );
    }

    #[test]
    fn comments_vanish_and_positions_survive() {
        let t = lex_str("let x = 1; // not tokens\nfoo()");
        let foo = t.iter().find(|t| t.is_ident("foo")).expect("foo");
        assert_eq!(foo.line, 1);
        assert_eq!(foo.col, 0);
        assert!(!t.iter().any(|t| t.is_ident("tokens")));
    }

    #[test]
    fn multiline_literal_is_one_token() {
        let t = lex_str("let a = \"one\ntwo\"; done()");
        let lit = t.iter().find(|t| t.str_text().is_some()).expect("lit");
        assert_eq!(lit.str_text(), Some("one\ntwo"));
        assert!(t.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn raw_literal_contents_are_attached() {
        let t = lex_str("let a = r#\"say \"hi\"\"#; next()");
        let lit = t.iter().find(|t| t.str_text().is_some()).expect("lit");
        assert_eq!(lit.str_text(), Some("say \"hi\""));
        assert!(t.iter().any(|t| t.is_ident("next")));
    }

    #[test]
    fn underscore_is_an_identifier() {
        let k = kinds("let _ = f();");
        assert!(k.contains(&TokenKind::Ident("_".into())));
    }
}

//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//! - `lint` — run the repo static-analysis gate; nonzero exit and
//!   `file:line` diagnostics on any violation. `--json` emits a
//!   machine-readable findings document on stdout (archived by `ci.sh`
//!   as `results/LINT.json`); `--explain <rule>` prints a rule's
//!   rationale and fix.
//! - `ci` — fmt-check → lint → clippy (-D warnings) → release build →
//!   tests, stopping at the first failure.
//! - `snapshot build|load [PATH]` — persist the paper corpus as an
//!   `SSTSNAP1` snapshot file, or load one back and verify it scores
//!   bit-identically to a cold build (delegates to the `snapshot_bench`
//!   binary so xtask itself stays dependency-free).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use xtask::rules::Rule;
use xtask::{ci, report, rules, workspace_root};

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--json] [DIR]   run the static-analysis gate (optionally on one
                        member DIR; member lint skips the workspace-wide
                        lock-graph and metrics-catalog rules)
  lint --explain RULE   print a rule's rationale and the fix it demands
  ci                    fmt-check, lint, clippy -D warnings, release
                        build, tests
  snapshot build [PATH] write the paper corpus as an SSTSNAP1 snapshot
                        (default results/corpus.sstsnap)
  snapshot load [PATH]  load a snapshot back and verify bit-identity
                        against a cold corpus build
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let rest = &args[1..];
            if let Some(pos) = rest.iter().position(|a| a == "--explain") {
                return match rest
                    .get(pos + 1)
                    .map(String::as_str)
                    .and_then(Rule::from_name)
                {
                    Some(rule) => {
                        println!("{}", report::explain(rule));
                        ExitCode::SUCCESS
                    }
                    None => {
                        let names: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
                        eprintln!("lint: --explain needs one of: {}", names.join(", "));
                        ExitCode::FAILURE
                    }
                };
            }
            let json = rest.iter().any(|a| a == "--json");
            let dir = rest.iter().find(|a| !a.starts_with("--"));
            let findings = if let Some(dir) = dir {
                rules::lint_member(&root, &root.join(dir))
            } else {
                rules::lint_workspace(&root)
            };
            match findings {
                Ok(findings) => {
                    if json {
                        print!("{}", report::to_json(&findings));
                    } else {
                        for f in &findings {
                            println!("{f}");
                        }
                    }
                    if findings.is_empty() {
                        eprintln!("lint: clean");
                        ExitCode::SUCCESS
                    } else {
                        for (name, n) in report::rule_counts(&findings) {
                            eprintln!("lint: {name}: {n}");
                        }
                        eprintln!("lint: {} finding(s)", findings.len());
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("lint: cannot walk workspace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("snapshot") => {
            let (flag, default_path) = match args.get(1).map(String::as_str) {
                Some("build") => ("--build", "results/corpus.sstsnap"),
                Some("load") => ("--load", "results/corpus.sstsnap"),
                _ => {
                    eprintln!("xtask: snapshot needs `build` or `load`");
                    eprint!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let path = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| default_path.to_owned());
            if flag == "--build" {
                if let Some(parent) = std::path::Path::new(&path).parent() {
                    if !parent.as_os_str().is_empty() && std::fs::create_dir_all(parent).is_err() {
                        eprintln!("xtask: cannot create {}", parent.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            // Delegate to the bench binary: the codec lives in sst-core and
            // the corpus loader in sst-bench; xtask stays dependency-free.
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
            let status = std::process::Command::new(&cargo)
                .args([
                    "run",
                    "--release",
                    "-p",
                    "sst-bench",
                    "--bin",
                    "snapshot_bench",
                    "--",
                    flag,
                    &path,
                ])
                .current_dir(&root)
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(_) => {
                    eprintln!("xtask: snapshot {flag} failed");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask: cannot run snapshot_bench: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("ci") => match ci::run(&root) {
            Ok(()) => {
                eprintln!("ci: all stages passed");
                ExitCode::SUCCESS
            }
            Err(stage) => {
                eprintln!("ci: FAILED at stage: {stage}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

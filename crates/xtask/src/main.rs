//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//! - `lint` — run the repo static-analysis gate; nonzero exit and
//!   `file:line` diagnostics on any violation.
//! - `ci` — fmt-check → lint → clippy (-D warnings) → release build →
//!   tests, stopping at the first failure.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use xtask::{ci, rules, workspace_root};

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [DIR]   run the static-analysis gate (optionally on one member DIR)
  ci           fmt-check, lint, clippy -D warnings, release build, tests
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let findings = if let Some(dir) = args.get(1) {
                rules::lint_member(&root, &root.join(dir))
            } else {
                rules::lint_workspace(&root)
            };
            match findings {
                Ok(findings) if findings.is_empty() => {
                    eprintln!("lint: clean");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        println!("{f}");
                    }
                    eprintln!("lint: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("lint: cannot walk workspace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("ci") => match ci::run(&root) {
            Ok(()) => {
                eprintln!("ci: all stages passed");
                ExitCode::SUCCESS
            }
            Err(stage) => {
                eprintln!("ci: FAILED at stage: {stage}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

//! Machine-readable lint output and rule documentation.
//!
//! `cargo xtask lint --json` emits one JSON document on stdout so CI can
//! archive findings (`ci.sh` writes `results/LINT.json`); `--explain
//! <rule>` prints the rationale and the fix the rule demands. JSON is
//! hand-rolled — xtask is dependency-free by design — and the format is
//! deliberately flat:
//!
//! ```json
//! {
//!   "clean": false,
//!   "total": 2,
//!   "counts": { "panic": 1, "swallowed-error": 1 },
//!   "findings": [
//!     { "file": "crates/x/src/lib.rs", "line": 7, "rule": "panic",
//!       "message": "`.unwrap()` can panic; …" }
//!   ]
//! }
//! ```

use crate::rules::{Finding, Rule};

/// JSON-escapes a string per RFC 8259 (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-rule finding counts in [`Rule::ALL`] order, zero-count rules
/// omitted.
pub fn rule_counts(findings: &[Finding]) -> Vec<(&'static str, usize)> {
    Rule::ALL
        .into_iter()
        .map(|rule| {
            (
                rule.name(),
                findings.iter().filter(|f| f.rule == rule).count(),
            )
        })
        .filter(|&(_, n)| n > 0)
        .collect()
}

/// Renders the findings as the JSON document described in the module docs.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"clean\": {},\n", findings.is_empty()));
    out.push_str(&format!("  \"total\": {},\n", findings.len()));
    out.push_str("  \"counts\": {");
    let counts = rule_counts(findings);
    for (i, (name, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(" \"{name}\": {n}"));
    }
    out.push_str(" },\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\" }}",
            escape(&f.file.to_string_lossy().replace('\\', "/")),
            f.line,
            f.rule.name(),
            escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// The rationale printed by `cargo xtask lint --explain <rule>`.
pub fn explain(rule: Rule) -> &'static str {
    match rule {
        Rule::Panic => {
            "panic: library code must not call `.unwrap()` / `.expect()` (or the `_err`\n\
             variants) or invoke `panic!` / `unimplemented!` / `todo!` / `unreachable!` /\n\
             `assert!` family macros. A similarity service aborting on malformed input is\n\
             a denial-of-service primitive; return the crate error type and let the\n\
             caller decide. `debug_assert!` is allowed (compiled out of release builds),\n\
             and `#[cfg(test)]` code is exempt.\n\
             Escape hatch: `// lint: allow(panic) <reason>`."
        }
        Rule::Index => {
            "index: subscripts containing `+`/`-` arithmetic (`v[i + 1]`, `s[..n - 1]`)\n\
             are the classic off-by-one panic sites. Use `.get()` / `.get_mut()` or\n\
             checked math. Plain `v[i]` is allowed — flagging every subscript would\n\
             drown the signal. The token engine matches subscripts across line breaks.\n\
             Escape hatch: `// lint: allow(index) <reason>`."
        }
        Rule::ForbidUnsafe => {
            "forbid-unsafe: every crate root must declare `#![forbid(unsafe_code)]`.\n\
             The toolkit's memory-safety claim is workspace-wide and enforced at the\n\
             compiler level; there is no escape hatch."
        }
        Rule::ErrorImpl => {
            "error-impl: every `pub` type named `*Error` must implement\n\
             `std::error::Error`, so callers can box, chain, and `?`-propagate any\n\
             error the workspace exposes. The impl may live in a sibling module of the\n\
             same crate. No escape hatch."
        }
        Rule::LockInLoop => {
            "lock-in-loop: `.lock()` / `.read()` / `.write()` (and `try_` variants)\n\
             inside a `for` loop body re-acquire the lock every iteration — the bug\n\
             class behind `Taxonomy::mrca` locking the depth cache once per candidate.\n\
             Hoist the guard (or an `Arc` clone of the data) out of the loop. Loop\n\
             *header* acquisitions (`for x in m.read()…`) run once and are fine.\n\
             Escape hatch: `// lint: allow(lock-in-loop) <reason>`."
        }
        Rule::LockDiscipline => {
            "lock-discipline: a guard-liveness analysis over the token model. A `let`-\n\
             bound guard is live to the end of its block (or an explicit `drop(guard)`);\n\
             a temporary to the end of its statement. Three checks: (1) acquiring a\n\
             lock class while a guard on the same class is live — self-deadlock;\n\
             (2) holding any guard across a blocking op (socket accept/read/write,\n\
             `mpsc` send/recv, `JoinHandle::join`, `thread::sleep`, connect, flush) —\n\
             serializes every waiter behind I/O; (3) workspace-wide, nesting edges\n\
             (`A` held while `B` acquired, classes are `<crate>:<receiver>`) form a\n\
             lock-acquisition graph, and opposite edges `A→B` / `B→A` are a lock-order\n\
             inversion: two threads taking the pair in opposite orders can deadlock.\n\
             `Condvar::wait` is not blocking — it releases the guard while parked.\n\
             Escape hatch: `// lint: allow(lock-discipline) <reason>` (on either edge\n\
             site for inversions)."
        }
        Rule::SwallowedError => {
            "swallowed-error: `let _ = <call>…;` and statement-final `.ok();` discard a\n\
             `Result` in library code. A serving system's zero-silent-failure claim\n\
             dies one discarded `Err` at a time — handle the error, count it in a\n\
             metric (see `server.http.write_failures`), or audit the site.\n\
             Escape hatch: `// lint: allow(swallowed-error) <reason>`."
        }
        Rule::MetricsCatalog => {
            "metrics-catalog: every metric-name literal passed to an sst-obs registry\n\
             call (`counter`, `gauge`, `histogram`, `histogram_with_bounds`, `span`,\n\
             `inc`, `add`) must match a declaration in crates/obs/src/catalog.rs; the\n\
             declared kind must agree with the call; declarations must not overlap;\n\
             and every declaration must be emittable from scanned code. Declared names\n\
             use `*` for exactly one dynamic segment (`server.requests.*`); emitted\n\
             `format!` placeholders (`{endpoint}`) match one or more declared segments.\n\
             This pins the `/metrics` surface: typos, drift, and dead declarations all\n\
             fail the gate. Escape hatch: `// lint: allow(metrics-catalog) <reason>`."
        }
        Rule::Limits => {
            "limits: in the ingestion crates (rdf, sexpr, wrappers) every `pub fn\n\
             parse*` must take the resource-governance `Limits` type somewhere in its\n\
             signature. Parsers consume untrusted input; an entry point without limits\n\
             revives the unbounded recursion/allocation bug class the governance layer\n\
             closed. Convenience wrappers that delegate to a `*_with_limits` sibling\n\
             carry an audited `// lint: allow(limits) <reason>` instead."
        }
        Rule::Bounded => {
            "bounded: in crates/server, no unbounded queueing and no detached threads.\n\
             `mpsc::channel` (unbounded) and `VecDeque::new` (no capacity policy) are\n\
             forbidden in favour of the crate's shed-on-overflow `BoundedQueue`;\n\
             `thread::spawn` (detached, no join path) is forbidden in favour of\n\
             `std::thread::scope`, whose workers are always joined.\n\
             Escape hatch: `// lint: allow(bounded) <reason>`."
        }
        Rule::BadAllow => {
            "bad-allow: a `// lint: allow(<rule>)` escape hatch without a reason. The\n\
             audit trail is the point — every suppression must say why the finding is\n\
             acceptable. Add the reason after the marker: `// lint: allow(panic)\n\
             invariant: len checked above`. No escape hatch (that would be cheating)."
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(rule: Rule, msg: &str) -> Finding {
        Finding {
            file: PathBuf::from("crates/demo/src/lib.rs"),
            line: 3,
            rule,
            message: msg.to_string(),
        }
    }

    #[test]
    fn empty_findings_serialize_as_clean() {
        let json = to_json(&[]);
        assert!(json.contains("\"clean\": true"), "{json}");
        assert!(json.contains("\"total\": 0"), "{json}");
        assert!(json.contains("\"findings\": []"), "{json}");
    }

    #[test]
    fn findings_serialize_with_escaping_and_counts() {
        let f = vec![
            finding(Rule::Panic, "`.unwrap()` can \"panic\""),
            finding(Rule::Panic, "second"),
            finding(Rule::SwallowedError, "back\\slash"),
        ];
        let json = to_json(&f);
        assert!(json.contains("\"clean\": false"), "{json}");
        assert!(json.contains("\"total\": 3"), "{json}");
        assert!(json.contains("\"panic\": 2"), "{json}");
        assert!(json.contains("\"swallowed-error\": 1"), "{json}");
        assert!(json.contains("can \\\"panic\\\""), "{json}");
        assert!(json.contains("back\\\\slash"), "{json}");
    }

    #[test]
    fn every_rule_has_an_explanation_mentioning_its_name() {
        for rule in Rule::ALL {
            let text = explain(rule);
            assert!(
                text.starts_with(rule.name()),
                "explain({}) must lead with the rule name",
                rule.name()
            );
        }
    }

    #[test]
    fn counts_follow_report_order_and_skip_zeroes() {
        let f = vec![
            finding(Rule::Bounded, "b"),
            finding(Rule::Panic, "a"),
            finding(Rule::Bounded, "b2"),
        ];
        assert_eq!(rule_counts(&f), vec![("panic", 1), ("bounded", 2)]);
    }
}

//! Per-file semantic model over the token stream.
//!
//! [`FileModel::build`] makes one pass over [`crate::lex`] tokens and
//! recovers the structure the cross-line rules need without a full Rust
//! parser:
//!
//! * **Blocks** — every `{ … }` pair with its token span and kind
//!   (function body, `for`-loop body, other), so scopes survive line
//!   breaks.
//! * **Functions** — name, `pub`-ness, signature span, body block.
//! * **Call sites** — method calls with their receiver tail
//!   (`self.inner.lock()` → receiver `inner`), plain calls with their
//!   `::` path, macros, and whether the argument list is empty.
//! * **Lock guards** — every zero-argument `.lock()` / `.read()` /
//!   `.write()` / `.try_*()` call, classified by receiver, with a
//!   liveness span: `let`-bound guards live to the end of their
//!   enclosing block (or an explicit `drop(guard)`), temporaries to the
//!   end of their statement (the next `;` or block-open at the same
//!   brace depth). `if let`/`match` scrutinee temporaries are treated as
//!   ending at the block-open — a deliberate under-approximation that
//!   avoids false positives at the cost of missing the
//!   scrutinee-lifetime footgun.
//! * **Metric uses** — string literals (including `format!` first
//!   arguments) passed to `sst-obs` registry calls, with the metric kind
//!   implied by the method. Dynamic `format!` segments are kept as
//!   `{…}` placeholders for the catalog matcher.

use crate::lex::{lex, Token, TokenKind};
use crate::scan::{strip, Stripped};

/// What a brace pair belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    FnBody,
    ForBody,
    Other,
}

/// One `{ … }` pair, as token indices.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    pub open: usize,
    /// Index of the closing `}` (or `tokens.len()` when unclosed at EOF).
    pub close: usize,
    pub kind: BlockKind,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnScope {
    pub name: String,
    pub is_pub: bool,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Index into [`FileModel::blocks`] of the body, when the fn has one.
    pub body: Option<usize>,
    /// 0-based source line of the `fn` keyword.
    pub line: usize,
}

/// One call site (method, plain function, or macro).
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    /// For method calls: the last identifier of the receiver chain
    /// (`self.inner.lock()` → `inner`), or `f()` when the receiver is a
    /// call result (`self.shard(k).lock()` → `shard()`).
    pub receiver: Option<String>,
    /// For plain calls: the `::` path segments before the name.
    pub path: Vec<String>,
    pub is_macro: bool,
    /// True when the argument list is exactly `()`.
    pub args_empty: bool,
    /// Token index of the name.
    pub token: usize,
    /// 0-based source line.
    pub line: usize,
}

/// One lock-guard acquisition with its liveness span.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Lock class: the receiver tail of the acquisition.
    pub class: String,
    /// The `let` binding holding the guard, when there is one.
    pub binding: Option<String>,
    /// Token index of the acquiring method name.
    pub acquired: usize,
    /// Token index at which the guard is no longer live.
    pub scope_end: usize,
    /// 0-based source line of the acquisition.
    pub line: usize,
}

/// Kind of metric implied by the registry method used at a call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One metric-name literal passed to an `sst-obs` registry call.
#[derive(Debug, Clone)]
pub struct MetricUse {
    /// The literal, with `format!` placeholders normalized to `{…}`.
    pub name: String,
    pub kind: MetricKind,
    /// 0-based source line.
    pub line: usize,
}

/// The per-file model (see module docs).
#[derive(Debug)]
pub struct FileModel {
    pub stripped: Stripped,
    pub tokens: Vec<Token>,
    /// Brace depth *before* each token.
    pub depth: Vec<usize>,
    pub blocks: Vec<Block>,
    pub fns: Vec<FnScope>,
    pub calls: Vec<CallSite>,
    pub guards: Vec<Guard>,
    pub metrics: Vec<MetricUse>,
}

/// Zero-argument lock-acquisition methods of `std::sync` primitives.
pub const LOCK_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Guard-preserving adapters a binding may chain after the acquisition
/// (`.lock().unwrap_or_else(PoisonError::into_inner)` still binds a guard).
const GUARD_ADAPTERS: &[&str] = &["unwrap_or_else", "unwrap", "expect"];

/// Registry methods of `sst_obs::Metrics` / `MetricsSnapshot` and the
/// metric kind each implies.
const REGISTRY_METHODS: &[(&str, MetricKind)] = &[
    ("counter", MetricKind::Counter),
    ("inc", MetricKind::Counter),
    ("add", MetricKind::Counter),
    ("gauge", MetricKind::Gauge),
    ("histogram", MetricKind::Histogram),
    ("histogram_with_bounds", MetricKind::Histogram),
    ("span", MetricKind::Histogram),
];

impl FileModel {
    /// Builds the model for one source file.
    pub fn build(source: &str) -> FileModel {
        let stripped = strip(source);
        let tokens = lex(&stripped);
        let (depth, blocks, fns) = structure(&tokens);
        let calls = call_sites(&tokens);
        let guards = guard_sites(&tokens, &depth, &blocks, &calls);
        let metrics = metric_uses(&tokens, &calls);
        FileModel {
            stripped,
            tokens,
            depth,
            blocks,
            fns,
            calls,
            guards,
            metrics,
        }
    }

    /// True when the token at `idx` lies in a `#[cfg(test)]` region.
    pub fn in_test_cfg(&self, idx: usize) -> bool {
        self.tokens
            .get(idx)
            .and_then(|t| self.stripped.lines.get(t.line))
            .is_some_and(|l| l.in_test_cfg)
    }

    /// Index of the closing token of the innermost block containing
    /// token `idx`, or `tokens.len()` when at top level.
    pub fn enclosing_block_end(&self, idx: usize) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.open < idx && b.close >= idx)
            .map(|b| b.close)
            .min()
            .unwrap_or(self.tokens.len())
    }

    /// End of the statement containing token `idx`: the next `;` or
    /// block-open `{` at the same brace depth, else the enclosing block
    /// close.
    pub fn statement_end(&self, idx: usize) -> usize {
        statement_end(&self.tokens, &self.depth, &self.blocks, idx)
    }

    /// True when token `idx` sits inside a `for`-loop *body* (not the
    /// header: header tokens precede the body's opening brace).
    pub fn in_for_body(&self, idx: usize) -> bool {
        self.blocks
            .iter()
            .any(|b| b.kind == BlockKind::ForBody && b.open < idx && idx < b.close)
    }
}

/// Pass 1: brace depth, block spans with kinds, and fn scopes.
fn structure(tokens: &[Token]) -> (Vec<usize>, Vec<Block>, Vec<FnScope>) {
    #[derive(Debug)]
    enum Pending {
        For,
        Fn(usize),
    }

    let mut depth = Vec::with_capacity(tokens.len());
    let mut blocks: Vec<Block> = Vec::new();
    let mut fns: Vec<FnScope> = Vec::new();
    let mut open_stack: Vec<usize> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut cur_depth = 0usize;

    for (i, t) in tokens.iter().enumerate() {
        depth.push(cur_depth);
        match &t.kind {
            TokenKind::Ident(word) if word == "fn" => {
                if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                    fns.push(FnScope {
                        name: name.to_owned(),
                        is_pub: is_pub_before(tokens, i),
                        sig_start: i,
                        body: None,
                        line: t.line,
                    });
                    pending = Some(Pending::Fn(fns.len() - 1));
                }
            }
            TokenKind::Ident(word) if word == "for" => {
                // `for<'a>` HRTBs and `impl X for Y` are not loops: a loop
                // header has the `in` keyword before its body opens.
                let hrtb = tokens.get(i + 1).is_some_and(|t| t.is_punct('<'));
                if !hrtb && has_in_before_block(tokens, i + 1) {
                    pending = Some(Pending::For);
                }
            }
            TokenKind::Punct('{') => {
                let kind = match pending.take() {
                    Some(Pending::For) => BlockKind::ForBody,
                    Some(Pending::Fn(f)) => {
                        fns[f].body = Some(blocks.len());
                        BlockKind::FnBody
                    }
                    None => BlockKind::Other,
                };
                open_stack.push(blocks.len());
                blocks.push(Block {
                    open: i,
                    close: tokens.len(),
                    kind,
                });
                cur_depth += 1;
            }
            TokenKind::Punct('}') => {
                if let Some(b) = open_stack.pop() {
                    blocks[b].close = i;
                }
                cur_depth = cur_depth.saturating_sub(1);
            }
            TokenKind::Punct(';') => {
                // A braceless item (trait fn, use, const) consumed the
                // pending marker without opening a body.
                pending = None;
            }
            _ => {}
        }
    }
    (depth, blocks, fns)
}

/// True when a bare `pub` (optionally through `const`/`async`/`unsafe`/
/// `extern`) immediately precedes the `fn` keyword at `fn_idx`.
fn is_pub_before(tokens: &[Token], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        match tokens[j].ident() {
            Some("const" | "async" | "unsafe" | "extern") => continue,
            Some("pub") => return true,
            _ => return false,
        }
    }
    false
}

/// True when the `in` keyword occurs after `start` before any `{` or `;`.
fn has_in_before_block(tokens: &[Token], start: usize) -> bool {
    for t in &tokens[start.min(tokens.len())..] {
        match &t.kind {
            TokenKind::Punct('{' | ';') => return false,
            TokenKind::Ident(w) if w == "in" => return true,
            _ => {}
        }
    }
    false
}

/// Pass 2: every call site.
fn call_sites(tokens: &[Token]) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        // Macro: `name!` (but not `a != b`).
        if tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
            && !tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('.'))
        {
            calls.push(CallSite {
                name: name.to_owned(),
                receiver: None,
                path: Vec::new(),
                is_macro: true,
                args_empty: false,
                token: i,
                line: t.line,
            });
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let args_empty = tokens.get(i + 2).is_some_and(|n| n.is_punct(')'));
        let is_method = i > 0 && tokens[i - 1].is_punct('.');
        if is_method {
            calls.push(CallSite {
                name: name.to_owned(),
                receiver: Some(receiver_tail(tokens, i - 1)),
                path: Vec::new(),
                is_macro: false,
                args_empty,
                token: i,
                line: t.line,
            });
        } else {
            calls.push(CallSite {
                name: name.to_owned(),
                receiver: None,
                path: path_before(tokens, i),
                is_macro: false,
                args_empty,
                token: i,
                line: t.line,
            });
        }
    }
    calls
}

/// The receiver tail of a method call whose `.` sits at `dot_idx`:
/// the identifier before the dot, `f()` for a call result, or `<expr>`.
fn receiver_tail(tokens: &[Token], dot_idx: usize) -> String {
    if dot_idx == 0 {
        return "<expr>".to_owned();
    }
    let j = dot_idx - 1;
    if let Some(id) = tokens[j].ident() {
        return id.to_owned();
    }
    if tokens[j].is_punct(')') || tokens[j].is_punct(']') {
        // Walk back over the balanced group to name the producing call.
        let close = if tokens[j].is_punct(')') { ')' } else { ']' };
        let open = if close == ')' { '(' } else { '[' };
        let mut depth = 0usize;
        let mut k = j;
        loop {
            if tokens[k].is_punct(close) {
                depth += 1;
            } else if tokens[k].is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return "<expr>".to_owned();
            }
            k -= 1;
        }
        if k > 0 {
            if let Some(f) = tokens[k - 1].ident() {
                return format!("{f}()");
            }
        }
    }
    "<expr>".to_owned()
}

/// The `::` path segments immediately before a plain call name.
fn path_before(tokens: &[Token], name_idx: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut j = name_idx;
    while j >= 3
        && tokens[j - 1].is_punct(':')
        && tokens[j - 2].is_punct(':')
        && tokens[j - 3].ident().is_some()
    {
        segs.push(tokens[j - 3].ident().unwrap_or_default().to_owned());
        j -= 3;
    }
    segs.reverse();
    segs
}

/// Pass 3: lock-guard acquisitions with liveness spans.
fn guard_sites(
    tokens: &[Token],
    depth: &[usize],
    blocks: &[Block],
    calls: &[CallSite],
) -> Vec<Guard> {
    let mut guards = Vec::new();
    for call in calls {
        if call.is_macro || !call.args_empty || !LOCK_METHODS.contains(&call.name.as_str()) {
            continue;
        }
        let Some(class) = call.receiver.clone() else {
            continue;
        };
        let i = call.token;
        let binding = let_binding_of(tokens, i);
        let scope_end = match &binding {
            Some(name) => {
                let block_end = enclosing_block_end(blocks, tokens.len(), i);
                // An explicit `drop(guard)` ends liveness early.
                calls
                    .iter()
                    .find(|c| {
                        c.name == "drop"
                            && !c.is_macro
                            && c.receiver.is_none()
                            && c.token > i
                            && c.token < block_end
                            && tokens.get(c.token + 2).and_then(Token::ident) == Some(name)
                            && tokens.get(c.token + 3).is_some_and(|t| t.is_punct(')'))
                    })
                    .map(|c| c.token)
                    .unwrap_or(block_end)
            }
            None => statement_end(tokens, depth, blocks, i),
        };
        guards.push(Guard {
            class,
            binding,
            acquired: i,
            scope_end,
            line: call.line,
        });
    }
    guards
}

/// Index of the closing token of the innermost block containing `idx`.
fn enclosing_block_end(blocks: &[Block], len: usize, idx: usize) -> usize {
    blocks
        .iter()
        .filter(|b| b.open < idx && b.close >= idx)
        .map(|b| b.close)
        .min()
        .unwrap_or(len)
}

/// End of the statement containing token `idx`: the next `;` or
/// block-open `{` at the same brace depth, else the enclosing block close.
fn statement_end(tokens: &[Token], depth: &[usize], blocks: &[Block], idx: usize) -> usize {
    let d = depth.get(idx).copied().unwrap_or(0);
    for (j, t) in tokens.iter().enumerate().skip(idx + 1) {
        if depth[j] < d {
            return j;
        }
        if depth[j] == d && (t.is_punct(';') || t.is_punct('{')) {
            return j;
        }
    }
    enclosing_block_end(blocks, tokens.len(), idx)
}

/// When the statement containing the acquisition at `idx` is a simple
/// `let [mut] name = <chain ending in the guard>;`, the binding name.
fn let_binding_of(tokens: &[Token], idx: usize) -> Option<String> {
    // Statement start: the token after the previous `;`, `{`, or `}`.
    let mut s = idx;
    while s > 0 {
        let t = &tokens[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    if !tokens.get(s).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut n = s + 1;
    if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
        n += 1;
    }
    let name = tokens.get(n).and_then(Token::ident)?;
    if name == "_" || !tokens.get(n + 1).is_some_and(|t| t.is_punct('=')) {
        return None; // destructuring / discard: not a live named guard
    }
    // The guard must be the end of the RHS chain (modulo poisoning
    // adapters), or the binding holds a derived value, not the guard.
    let close = matching_paren(tokens, idx + 1)?;
    let mut t = close + 1;
    loop {
        match tokens.get(t) {
            Some(tok) if tok.is_punct(';') => return Some(name.to_owned()),
            Some(tok) if tok.is_punct('.') => {
                let adapter = tokens.get(t + 1).and_then(Token::ident)?;
                if !GUARD_ADAPTERS.contains(&adapter) {
                    return None;
                }
                let open = t + 2;
                if !tokens.get(open).is_some_and(|t| t.is_punct('(')) {
                    return None;
                }
                t = matching_paren(tokens, open)? + 1;
            }
            _ => return None,
        }
    }
}

/// Index of the `)` matching the `(` at `open_idx`.
fn matching_paren(tokens: &[Token], open_idx: usize) -> Option<usize> {
    if !tokens.get(open_idx)?.is_punct('(') {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// True when `name` is shaped like a metric name: dotted, lowercase
/// segments with optional `{…}` placeholders.
fn is_metric_name(name: &str) -> bool {
    name.contains('.')
        && !name.contains("..")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._{}".contains(c))
}

/// Pass 4: metric-name literals at registry call sites.
fn metric_uses(tokens: &[Token], calls: &[CallSite]) -> Vec<MetricUse> {
    let mut uses = Vec::new();
    for call in calls {
        if call.is_macro || call.receiver.is_none() {
            continue;
        }
        let Some(&(_, kind)) = REGISTRY_METHODS.iter().find(|(m, _)| *m == call.name) else {
            continue;
        };
        // First argument, skipping leading `&`.
        let mut k = call.token + 2;
        while tokens.get(k).is_some_and(|t| t.is_punct('&')) {
            k += 1;
        }
        let lit = match tokens.get(k).map(|t| &t.kind) {
            Some(TokenKind::Str(s)) => Some(s.clone()),
            Some(TokenKind::Ident(w)) if w == "format" => {
                // `format!("pattern", …)`.
                if tokens.get(k + 1).is_some_and(|t| t.is_punct('!'))
                    && tokens.get(k + 2).is_some_and(|t| t.is_punct('('))
                {
                    tokens
                        .get(k + 3)
                        .and_then(|t| t.str_text())
                        .map(str::to_owned)
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(name) = lit {
            if is_metric_name(&name) {
                uses.push(MetricUse {
                    name,
                    kind,
                    line: call.line,
                });
            }
        }
    }
    uses
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build(src)
    }

    #[test]
    fn fn_scopes_and_bodies() {
        let m = model("pub fn alpha(x: u32) -> u32 { x }\nfn beta();\nconst fn gamma() {}\n");
        assert_eq!(m.fns.len(), 3);
        assert_eq!(m.fns[0].name, "alpha");
        assert!(m.fns[0].is_pub);
        assert!(m.fns[0].body.is_some());
        assert_eq!(m.fns[1].name, "beta");
        assert!(m.fns[1].body.is_none(), "trait fn has no body");
        assert!(!m.fns[2].is_pub);
    }

    #[test]
    fn multiline_for_header_is_a_loop_body() {
        let m = model("fn f() {\n for x\n in xs\n {\n work(x);\n }\n}\n");
        let call = m.calls.iter().find(|c| c.name == "work").expect("call");
        assert!(m.in_for_body(call.token));
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        let m = model("impl Display for F { fn fmt(&self) {} }\nfn g(h: impl for<'a> Fn()) {}\n");
        assert!(m.blocks.iter().all(|b| b.kind != BlockKind::ForBody));
    }

    #[test]
    fn method_receiver_tails() {
        let m = model("fn f() { self.inner.lock(); shard.read(); self.shard(k).lock(); }");
        let recv: Vec<Option<String>> = m
            .calls
            .iter()
            .filter(|c| LOCK_METHODS.contains(&c.name.as_str()))
            .map(|c| c.receiver.clone())
            .collect();
        assert_eq!(
            recv,
            vec![
                Some("inner".to_owned()),
                Some("shard".to_owned()),
                Some("shard()".to_owned()),
            ]
        );
    }

    #[test]
    fn plain_call_paths() {
        let m = model("fn f() { std::thread::sleep(d); thread::spawn(w); local(); }");
        let sleep = m.calls.iter().find(|c| c.name == "sleep").expect("sleep");
        assert_eq!(sleep.path, vec!["std".to_owned(), "thread".to_owned()]);
        let local = m.calls.iter().find(|c| c.name == "local").expect("local");
        assert!(local.path.is_empty());
    }

    #[test]
    fn let_bound_guard_lives_to_block_end() {
        let m = model("fn f() {\n let g = m.lock();\n use_it(&g);\n}\n");
        assert_eq!(m.guards.len(), 1);
        let g = &m.guards[0];
        assert_eq!(g.binding.as_deref(), Some("g"));
        assert_eq!(g.class, "m");
        // Scope reaches the fn body close.
        let close = m.blocks[0].close;
        assert_eq!(g.scope_end, close);
    }

    #[test]
    fn poison_recovered_guard_still_binds() {
        let m = model(
            "fn f() {\n let mut map = store.write().unwrap_or_else(PoisonError::into_inner);\n map.insert(k, v);\n}\n",
        );
        assert_eq!(m.guards[0].binding.as_deref(), Some("map"));
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let m = model("fn f() {\n q.lock().push(x);\n other();\n}\n");
        let g = &m.guards[0];
        assert!(g.binding.is_none());
        let other = m.calls.iter().find(|c| c.name == "other").expect("other");
        assert!(
            g.scope_end < other.token,
            "temporary must not span statements"
        );
    }

    #[test]
    fn derived_value_binding_is_a_temporary_guard() {
        let m = model("fn f() {\n let v = m.lock().get(k);\n}\n");
        assert!(
            m.guards[0].binding.is_none(),
            "v holds a value, not the guard"
        );
    }

    #[test]
    fn drop_ends_guard_liveness_early() {
        let m = model("fn f() {\n let g = m.lock();\n drop(g);\n tail();\n}\n");
        let tail = m.calls.iter().find(|c| c.name == "tail").expect("tail");
        assert!(m.guards[0].scope_end < tail.token);
    }

    #[test]
    fn metric_literals_are_extracted_with_kinds() {
        let m = model(
            "fn f(m: &Metrics) {\n m.inc(\"a.calls\");\n let c = m.counter(\"b.total\");\n let _s = m.span(\"c.latency\");\n m.counter(&format!(\"d.requests.{endpoint}\"));\n}\n",
        );
        let names: Vec<(&str, MetricKind)> = m
            .metrics
            .iter()
            .map(|u| (u.name.as_str(), u.kind))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a.calls", MetricKind::Counter),
                ("b.total", MetricKind::Counter),
                ("c.latency", MetricKind::Histogram),
                ("d.requests.{endpoint}", MetricKind::Counter),
            ]
        );
    }

    #[test]
    fn non_metric_strings_are_ignored() {
        let m = model("fn f() { list.add(\"plain\"); path.span(\"no dots here!\"); }");
        assert!(m.metrics.is_empty(), "{:?}", m.metrics);
    }
}

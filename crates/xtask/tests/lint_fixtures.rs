//! Fixture-driven tests for the static-analysis gate.
//!
//! The fixture tree under `tests/fixtures/ws/` mimics a tiny workspace:
//! `crates/demo` seeds exactly one violation per rule, `crates/clean`
//! satisfies every rule (including a justified escape hatch). The tests
//! drive the library API directly and the installed `xtask` binary for
//! the exit-code contract.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::rules::{self, Finding, Rule};

fn fixture_ws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn lint_fixture_member(name: &str) -> Vec<Finding> {
    let ws = fixture_ws();
    rules::lint_member(&ws, &ws.join("crates").join(name)).expect("fixture tree readable")
}

fn count(findings: &[Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn seeded_fixture_triggers_every_rule() {
    let findings = lint_fixture_member("demo");
    assert_eq!(count(&findings, Rule::ForbidUnsafe), 1, "{findings:#?}");
    assert_eq!(count(&findings, Rule::Index), 1, "{findings:#?}");
    assert_eq!(count(&findings, Rule::ErrorImpl), 1, "{findings:#?}");
    assert_eq!(count(&findings, Rule::BadAllow), 1, "{findings:#?}");
    // Three surviving panic findings: the plain unwrap, the one whose
    // allow lacks a reason, and the second unwrap on the
    // two-panics-one-allow line.
    assert_eq!(count(&findings, Rule::Panic), 3, "{findings:#?}");
}

#[test]
fn findings_point_at_file_and_line() {
    let findings = lint_fixture_member("demo");
    let index_finding = findings
        .iter()
        .find(|f| f.rule == Rule::Index)
        .expect("index finding present");
    assert!(
        index_finding.file.to_string_lossy().ends_with("lib.rs"),
        "{index_finding:?}"
    );
    // `file:line` rendering is the diagnostic contract.
    let rendered = index_finding.to_string();
    assert!(
        rendered.contains("lib.rs:") && rendered.contains("[index]"),
        "{rendered}"
    );
}

#[test]
fn escape_hatch_suppresses_exactly_one_finding() {
    let ws = fixture_ws();
    let demo = ws.join("crates/demo/src/lib.rs");
    let source = std::fs::read_to_string(&demo).expect("fixture readable");
    let hatch_line = source
        .lines()
        .position(|l| l.contains("covers only one"))
        .expect("fixture line present")
        + 1;
    let findings = lint_fixture_member("demo");
    let on_line: Vec<&Finding> = findings.iter().filter(|f| f.line == hatch_line).collect();
    assert_eq!(on_line.len(), 1, "{on_line:#?}");
    assert_eq!(on_line[0].rule, Rule::Panic);
}

#[test]
fn clean_fixture_passes() {
    let findings = lint_fixture_member("clean");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn real_workspace_is_lint_clean() {
    let root = xtask::workspace_root();
    let findings = rules::lint_workspace(&root).expect("workspace readable");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn lint_binary_exits_nonzero_on_seeded_violation() {
    // The binary resolves `DIR` relative to the real workspace root; the
    // demo fixture still violates forbid-unsafe there (panic/index are
    // exempt under `crates/xtask/`).
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "crates/xtask/tests/fixtures/ws/crates/demo"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("forbid-unsafe"), "{stdout}");
}

#[test]
fn lint_binary_exits_zero_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

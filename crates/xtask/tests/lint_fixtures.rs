//! Fixture-driven tests for the static-analysis gate.
//!
//! The fixture tree under `tests/fixtures/ws/` mimics a tiny workspace:
//! `crates/demo` seeds per-file violations (plus metric emissions),
//! `crates/locks` seeds the lock-discipline bug classes including a
//! cross-file lock-order inversion, `crates/obs` hosts the fixture
//! metrics catalog, and `crates/clean` satisfies every rule (including
//! a justified escape hatch). The tests drive the library API directly
//! and the installed `xtask` binary for the exit-code contract.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::rules::{self, Finding, Rule};

fn fixture_ws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn lint_fixture_member(name: &str) -> Vec<Finding> {
    let ws = fixture_ws();
    rules::lint_member(&ws, &ws.join("crates").join(name)).expect("fixture tree readable")
}

fn count(findings: &[Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn seeded_fixture_triggers_every_rule() {
    let findings = lint_fixture_member("demo");
    assert_eq!(count(&findings, Rule::ForbidUnsafe), 1, "{findings:#?}");
    assert_eq!(count(&findings, Rule::Index), 1, "{findings:#?}");
    assert_eq!(count(&findings, Rule::ErrorImpl), 1, "{findings:#?}");
    // Three reason-less escape hatches: panic, swallowed-error,
    // metrics-catalog.
    assert_eq!(count(&findings, Rule::BadAllow), 3, "{findings:#?}");
    // Three surviving panic findings: the plain unwrap, the one whose
    // allow lacks a reason, and the second unwrap on the
    // two-panics-one-allow line.
    assert_eq!(count(&findings, Rule::Panic), 3, "{findings:#?}");
    // Two surviving discards: the plain `let _ =` and the one whose
    // allow lacks a reason; the audited `.ok();` is suppressed.
    assert_eq!(count(&findings, Rule::SwallowedError), 2, "{findings:#?}");
}

#[test]
fn locks_fixture_triggers_lock_discipline() {
    let findings = lint_fixture_member("locks");
    // Self-deadlock, held-across-blocking, and the reason-less-allow
    // survivor; the audited send is suppressed. The a.rs/b.rs nestings
    // are edges, not member findings.
    assert_eq!(count(&findings, Rule::LockDiscipline), 3, "{findings:#?}");
    assert_eq!(count(&findings, Rule::BadAllow), 1, "{findings:#?}");
    assert!(
        findings.iter().any(|f| f.message.contains("self-deadlock")),
        "{findings:#?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("held across blocking `.send(…)`")),
        "{findings:#?}"
    );
}

#[test]
fn fixture_workspace_reports_inversion_and_catalog_drift() {
    let findings = rules::lint_workspace(&fixture_ws()).expect("fixture tree readable");

    // Exactly one lock-order inversion: alpha/beta taken in opposite
    // orders by a.rs and b.rs. The gamma/delta pair is audited away.
    let inversions: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.message.contains("lock-order inversion"))
        .collect();
    assert_eq!(inversions.len(), 1, "{inversions:#?}");
    assert!(
        inversions[0].message.contains("alpha") && inversions[0].message.contains("beta"),
        "{}",
        inversions[0].message
    );
    assert!(
        inversions[0].message.contains("b.rs:"),
        "inversion must cite the opposite site: {}",
        inversions[0].message
    );
    assert!(
        !findings.iter().any(|f| f.message.contains("gamma")),
        "audited gamma/delta inversion must be suppressed: {findings:#?}"
    );

    // Catalog drift: typo'd name (with suggestion), reason-less-allow
    // survivor, kind mismatch, never-emitted orphan, collision pair.
    assert_eq!(count(&findings, Rule::MetricsCatalog), 5, "{findings:#?}");
    let catalog: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == Rule::MetricsCatalog)
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        catalog
            .iter()
            .any(|m| m.contains("fixture.acepted") && m.contains("did you mean `fixture.accepted`")),
        "{catalog:#?}"
    );
    assert!(
        catalog
            .iter()
            .any(|m| m.contains("fixture.count") && m.contains("emitted as histogram")),
        "{catalog:#?}"
    );
    assert!(
        catalog
            .iter()
            .any(|m| m.contains("fixture.orphan") && m.contains("never emitted")),
        "{catalog:#?}"
    );
    assert!(
        catalog.iter().any(|m| m.contains("collision")),
        "{catalog:#?}"
    );
    assert!(
        catalog.iter().any(|m| m.contains("fixture.also_unlisted")),
        "{catalog:#?}"
    );
    // The audited off-catalog emission is suppressed.
    assert!(
        !catalog.iter().any(|m| m.contains("`fixture.unlisted`")),
        "{catalog:#?}"
    );
}

#[test]
fn fixture_workspace_findings_round_trip_to_json() {
    let findings = rules::lint_workspace(&fixture_ws()).expect("fixture tree readable");
    let json = xtask::report::to_json(&findings);
    assert!(json.contains("\"clean\": false"), "{json}");
    assert!(
        json.contains(&format!("\"total\": {}", findings.len())),
        "{json}"
    );
    for rule in ["lock-discipline", "swallowed-error", "metrics-catalog"] {
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "missing {rule} in {json}"
        );
    }
    // Forward-slash paths regardless of host separator.
    assert!(json.contains("crates/locks/src/b.rs"), "{json}");
}

#[test]
fn findings_point_at_file_and_line() {
    let findings = lint_fixture_member("demo");
    let index_finding = findings
        .iter()
        .find(|f| f.rule == Rule::Index)
        .expect("index finding present");
    assert!(
        index_finding.file.to_string_lossy().ends_with("lib.rs"),
        "{index_finding:?}"
    );
    // `file:line` rendering is the diagnostic contract.
    let rendered = index_finding.to_string();
    assert!(
        rendered.contains("lib.rs:") && rendered.contains("[index]"),
        "{rendered}"
    );
}

#[test]
fn escape_hatch_suppresses_exactly_one_finding() {
    let ws = fixture_ws();
    let demo = ws.join("crates/demo/src/lib.rs");
    let source = std::fs::read_to_string(&demo).expect("fixture readable");
    let hatch_line = source
        .lines()
        .position(|l| l.contains("covers only one"))
        .expect("fixture line present")
        + 1;
    let findings = lint_fixture_member("demo");
    let on_line: Vec<&Finding> = findings.iter().filter(|f| f.line == hatch_line).collect();
    assert_eq!(on_line.len(), 1, "{on_line:#?}");
    assert_eq!(on_line[0].rule, Rule::Panic);
}

#[test]
fn clean_fixture_passes() {
    let findings = lint_fixture_member("clean");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn real_workspace_is_lint_clean() {
    let root = xtask::workspace_root();
    let findings = rules::lint_workspace(&root).expect("workspace readable");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn real_workspace_lint_stays_fast() {
    // The gate runs on every `cargo xtask ci`; the whole-workspace walk
    // (token model, lock graph, catalog check) must stay under the
    // 2-second budget documented in README.md.
    let root = xtask::workspace_root();
    let start = std::time::Instant::now();
    rules::lint_workspace(&root).expect("workspace readable");
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "workspace lint took {elapsed:?}"
    );
}

#[test]
fn lint_binary_exits_nonzero_on_seeded_violation() {
    // The binary resolves `DIR` relative to the real workspace root; the
    // demo fixture still violates forbid-unsafe there (panic/index are
    // exempt under `crates/xtask/`).
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "crates/xtask/tests/fixtures/ws/crates/demo"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("forbid-unsafe"), "{stdout}");
}

#[test]
fn lint_binary_exits_zero_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

//! Lint fixture: lock-discipline seedbed. This file seeds the per-file
//! checks (same-class re-acquisition, guard held across a blocking op,
//! an audited suppression, a reason-less allow); `a.rs`/`b.rs` acquire
//! the alpha/beta pair in opposite orders (a lock-order inversion the
//! workspace stage must catch) and the gamma/delta pair in opposite
//! orders with an audited allow (which must silence it). Test data only
//! — never compiled.

#![forbid(unsafe_code)]

pub mod a;
pub mod b;

pub struct State {
    pub alpha: std::sync::Mutex<u32>,
    pub beta: std::sync::Mutex<u32>,
    pub gamma: std::sync::Mutex<u32>,
    pub delta: std::sync::Mutex<u32>,
}

/// lock-discipline violation: same class re-acquired while its guard is
/// live — self-deadlock.
pub fn reacquire(s: &State) -> u32 {
    let g = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let h = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    *g + *h
}

/// lock-discipline violation: guard held across a blocking send.
pub fn send_locked(s: &State, tx: &std::sync::mpsc::SyncSender<u32>) {
    let g = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let _sent = tx.send(*g);
}

/// lock-discipline, correctly audited: suppressed.
pub fn send_locked_audited(s: &State, tx: &std::sync::mpsc::SyncSender<u32>) {
    let g = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let _sent = tx.send(*g); // lint: allow(lock-discipline) fixture: bounded channel, never full
}

/// lock-discipline with a reason-less escape hatch: the bad-allow is a
/// finding and the violation still surfaces.
pub fn send_locked_bad_allow(s: &State, tx: &std::sync::mpsc::SyncSender<u32>) {
    let g = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let _sent = tx.send(*g); // lint: allow(lock-discipline)
}

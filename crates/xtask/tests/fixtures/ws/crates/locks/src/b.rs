//! Inversion seed, side B: beta before alpha — the opposite order to
//! `a.rs`, which the workspace stage must report as a lock-order
//! inversion. The delta→gamma edge is audited on its holder line and
//! must not report. Test data only — never compiled.

use crate::State;

pub fn beta_then_alpha(s: &State) -> u32 {
    let h = s.beta.lock().unwrap_or_else(|e| e.into_inner());
    let g = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    *g + *h
}

pub fn delta_then_gamma(s: &State) -> u32 {
    // lint: allow(lock-discipline) fixture: startup path, delta→gamma order documented
    let h = s.delta.lock().unwrap_or_else(|e| e.into_inner());
    let g = s.gamma.lock().unwrap_or_else(|e| e.into_inner());
    *g + *h
}

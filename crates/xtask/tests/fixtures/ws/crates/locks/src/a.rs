//! Inversion seed, side A: alpha before beta, gamma before delta. Each
//! nesting is an edge in the workspace lock graph, not a finding by
//! itself. Test data only — never compiled.

use crate::State;

pub fn alpha_then_beta(s: &State) -> u32 {
    let g = s.alpha.lock().unwrap_or_else(|e| e.into_inner());
    let h = s.beta.lock().unwrap_or_else(|e| e.into_inner());
    *g + *h
}

pub fn gamma_then_delta(s: &State) -> u32 {
    let g = s.gamma.lock().unwrap_or_else(|e| e.into_inner());
    let h = s.delta.lock().unwrap_or_else(|e| e.into_inner());
    *g + *h
}

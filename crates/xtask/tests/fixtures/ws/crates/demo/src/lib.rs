//! Lint fixture: seeded violations, exactly one per rule. This file is
//! test data for `lint_fixtures.rs` — it is never compiled, and the real
//! workspace walk never descends into `tests/fixtures/`.
//!
//! (Deliberately missing `#![forbid(unsafe_code)]` — that is the
//! forbid-unsafe violation.)

/// error-impl violation: public error type without a `std::error::Error`
/// implementation anywhere in the crate.
pub struct DemoError;

/// panic violation: `.unwrap()` in library code.
pub fn first(v: &[u32]) -> u32 {
    v.iter().next().copied().unwrap()
}

/// index violation: arithmetic subscript.
pub fn shift(v: &[u32], i: usize) -> u32 {
    v[i + 1]
}

/// bad-allow violation: escape hatch without a reason (and the panic
/// finding it fails to suppress).
pub fn hatch_without_reason(v: &[u32]) -> u32 {
    v.first().copied().unwrap() // lint: allow(panic)
}

/// Escape-hatch scope check: one allow, two panics on the line — exactly
/// one finding must survive.
pub fn two_panics_one_allow(v: &[u32]) -> u32 {
    v.first().copied().unwrap() + v.last().copied().unwrap() // lint: allow(panic) covers only one
}

//! Lint fixture: seeded violations, exactly one per rule. This file is
//! test data for `lint_fixtures.rs` — it is never compiled, and the real
//! workspace walk never descends into `tests/fixtures/`.
//!
//! (Deliberately missing `#![forbid(unsafe_code)]` — that is the
//! forbid-unsafe violation.)

/// error-impl violation: public error type without a `std::error::Error`
/// implementation anywhere in the crate.
pub struct DemoError;

/// panic violation: `.unwrap()` in library code.
pub fn first(v: &[u32]) -> u32 {
    v.iter().next().copied().unwrap()
}

/// index violation: arithmetic subscript.
pub fn shift(v: &[u32], i: usize) -> u32 {
    v[i + 1]
}

/// bad-allow violation: escape hatch without a reason (and the panic
/// finding it fails to suppress).
pub fn hatch_without_reason(v: &[u32]) -> u32 {
    v.first().copied().unwrap() // lint: allow(panic)
}

/// Escape-hatch scope check: one allow, two panics on the line — exactly
/// one finding must survive.
pub fn two_panics_one_allow(v: &[u32]) -> u32 {
    v.first().copied().unwrap() + v.last().copied().unwrap() // lint: allow(panic) covers only one
}

fn fallible(v: &[u32]) -> Result<u32, DemoError> {
    v.first().copied().ok_or(DemoError)
}

/// swallowed-error violation: `let _ =` discards a fallible call.
pub fn discard(v: &[u32]) -> u32 {
    let _ = fallible(v);
    0
}

/// swallowed-error with a reason-less escape hatch: the bad-allow is a
/// finding and the discard still surfaces.
pub fn discard_with_bad_allow(v: &[u32]) {
    let _ = fallible(v); // lint: allow(swallowed-error)
}

/// swallowed-error, correctly audited: suppressed.
pub fn discard_audited(v: &[u32]) {
    fallible(v).ok(); // lint: allow(swallowed-error) fixture: best-effort by design
}

/// metrics-catalog seeds (checked at the workspace stage against the
/// fixture catalog in `crates/obs`): a typo'd name, a kind mismatch, an
/// audited off-catalog name, a reason-less allow, and covering
/// emissions for the declared names.
pub fn observe(m: &sst_obs::Metrics) {
    m.counter("fixture.accepted").inc();
    m.counter("fixture.acepted").inc();
    m.histogram("fixture.count");
    m.counter("fixture.req.shed").inc();
    m.counter("fixture.unlisted").inc(); // lint: allow(metrics-catalog) fixture: private scratch metric
    m.counter("fixture.also_unlisted").inc(); // lint: allow(metrics-catalog)
}

//! Lint fixture: the catalog host crate, mirroring the real
//! `crates/obs`. Test data only — never compiled.

#![forbid(unsafe_code)]

pub mod catalog;

//! Lint fixture catalog: declares the names the demo fixture emits,
//! plus a never-emitted orphan and a deliberate collision pair. Test
//! data only — never compiled.

pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

pub struct MetricDecl {
    pub name: &'static str,
    pub kind: MetricKind,
    pub help: &'static str,
}

pub const CATALOG: &[MetricDecl] = &[
    MetricDecl {
        name: "fixture.accepted",
        kind: MetricKind::Counter,
        help: "emitted correctly",
    },
    MetricDecl {
        name: "fixture.count",
        kind: MetricKind::Counter,
        help: "emitted with the wrong kind",
    },
    MetricDecl {
        name: "fixture.orphan",
        kind: MetricKind::Gauge,
        help: "declared but never emitted",
    },
    MetricDecl {
        name: "fixture.req.*",
        kind: MetricKind::Counter,
        help: "wildcard",
    },
    MetricDecl {
        name: "fixture.req.shed",
        kind: MetricKind::Counter,
        help: "collides with the wildcard",
    },
];

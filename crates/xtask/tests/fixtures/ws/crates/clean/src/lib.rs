//! Lint fixture: a member that satisfies every rule, including a
//! correctly justified escape hatch. Test data only — never compiled.

#![forbid(unsafe_code)]

pub struct CleanError;

impl std::fmt::Display for CleanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("clean fixture error")
    }
}

impl std::error::Error for CleanError {}

pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn window(v: &[u32], i: usize) -> Option<u32> {
    v.get(i + 1).copied()
}

pub fn justified(v: &[u32]) -> u32 {
    // lint: allow(panic) fixture: demonstrates a justified suppression
    v.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = [1u32];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}

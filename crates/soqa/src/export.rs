//! Exports a SOQA [`Ontology`] back to an RDF graph (OWL vocabulary).
//!
//! Combined with `sst-rdf`'s serializers this turns SOQA into a
//! cross-language converter: a PowerLoom or WordNet ontology read by its
//! wrapper can be written out as OWL (RDF/XML or Turtle) — the
//! "semantics-aware universal data management" application the paper's
//! introduction motivates.

use sst_rdf::vocab::{owl, rdf, rdfs, XSD_NS};
use sst_rdf::{Graph, Iri, Literal, Term, Triple};

use crate::model::Ontology;

/// Maps a SOQA datatype name onto an XSD datatype IRI (best effort).
fn xsd_type(data_type: &str) -> Iri {
    let local = match data_type.to_ascii_lowercase().as_str() {
        "string" | "str" => "string",
        "int" | "integer" | "long" => "integer",
        "number" | "float" | "double" | "decimal" => "decimal",
        "boolean" | "bool" => "boolean",
        "date" => "date",
        _ => "string",
    };
    Iri::new(format!("{XSD_NS}{local}"))
}

/// Characters legal in an IRI fragment produced from a concept name.
fn fragment(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Converts `ontology` to an RDF graph under `base` (e.g.
/// `http://example.org/converted`). Concepts become `owl:Class`es,
/// attributes `owl:DatatypeProperty`s, relationships
/// `owl:ObjectProperty`s, and instances typed individuals.
pub fn ontology_to_graph(ontology: &Ontology, base: &str) -> Graph {
    let mut graph = Graph::new();
    graph.set_base(base);
    graph.add_prefix("owl", sst_rdf::vocab::OWL_NS);
    graph.add_prefix("rdfs", sst_rdf::vocab::RDFS_NS);
    graph.add_prefix("rdf", sst_rdf::vocab::RDF_NS);
    graph.add_prefix("xsd", XSD_NS);
    graph.add_prefix("", format!("{base}#"));

    let node = |name: &str| Term::iri(format!("{base}#{}", fragment(name)));

    // Ontology header.
    let header = Term::iri(base);
    graph.insert(Triple::new(
        header.clone(),
        rdf::type_(),
        Term::Iri(owl::ontology()),
    ));
    if let Some(doc) = &ontology.metadata.documentation {
        graph.insert(Triple::new(
            header.clone(),
            rdfs::comment(),
            Term::Literal(Literal::plain(doc.clone())),
        ));
    }
    if let Some(version) = &ontology.metadata.version {
        graph.insert(Triple::new(
            header,
            owl::version_info(),
            Term::Literal(Literal::plain(version.clone())),
        ));
    }

    // Concepts and the hierarchy.
    for cid in ontology.concept_ids() {
        let concept = ontology.concept(cid);
        let subject = node(&concept.name);
        graph.insert(Triple::new(
            subject.clone(),
            rdf::type_(),
            Term::Iri(owl::class()),
        ));
        graph.insert(Triple::new(
            subject.clone(),
            rdfs::label(),
            Term::Literal(Literal::plain(concept.name.clone())),
        ));
        if let Some(doc) = &concept.documentation {
            graph.insert(Triple::new(
                subject.clone(),
                rdfs::comment(),
                Term::Literal(Literal::plain(doc.clone())),
            ));
        }
        for &sup in &concept.super_concepts {
            graph.insert(Triple::new(
                subject.clone(),
                rdfs::sub_class_of(),
                node(&ontology.concept(sup).name),
            ));
        }
        for &eq in &concept.equivalent_concepts {
            graph.insert(Triple::new(
                subject.clone(),
                owl::equivalent_class(),
                node(&ontology.concept(eq).name),
            ));
        }
        for &anti in &concept.antonym_concepts {
            graph.insert(Triple::new(
                subject.clone(),
                owl::disjoint_with(),
                node(&ontology.concept(anti).name),
            ));
        }
    }

    // Attributes → datatype properties.
    for attribute in ontology.attributes() {
        let subject = node(&attribute.name);
        graph.insert(Triple::new(
            subject.clone(),
            rdf::type_(),
            Term::Iri(owl::datatype_property()),
        ));
        graph.insert(Triple::new(
            subject.clone(),
            rdfs::domain(),
            node(&ontology.concept(attribute.concept).name),
        ));
        if let Some(dt) = &attribute.data_type {
            graph.insert(Triple::new(
                subject.clone(),
                rdfs::range(),
                Term::Iri(xsd_type(dt)),
            ));
        }
        if let Some(doc) = &attribute.documentation {
            graph.insert(Triple::new(
                subject,
                rdfs::comment(),
                Term::Literal(Literal::plain(doc.clone())),
            ));
        }
    }

    // Relationships → object properties (binary domains/ranges when known).
    for relationship in ontology.relationships() {
        let subject = node(&relationship.name);
        graph.insert(Triple::new(
            subject.clone(),
            rdf::type_(),
            Term::Iri(owl::object_property()),
        ));
        if let Some(domain) = relationship.related_concepts.first() {
            graph.insert(Triple::new(subject.clone(), rdfs::domain(), node(domain)));
        }
        if let Some(range) = relationship.related_concepts.get(1) {
            graph.insert(Triple::new(subject.clone(), rdfs::range(), node(range)));
        }
        if let Some(doc) = &relationship.documentation {
            graph.insert(Triple::new(
                subject,
                rdfs::comment(),
                Term::Literal(Literal::plain(doc.clone())),
            ));
        }
    }

    // Instances → typed individuals with attribute values.
    for instance in ontology.instances() {
        let subject = node(&instance.name);
        graph.insert(Triple::new(
            subject.clone(),
            rdf::type_(),
            node(&ontology.concept(instance.concept).name),
        ));
        for (attr, value) in &instance.attribute_values {
            graph.insert(Triple::new(
                subject.clone(),
                Iri::new(format!("{base}#{}", fragment(attr))),
                Term::Literal(Literal::plain(value.clone())),
            ));
        }
        for (rel, target) in &instance.relationship_values {
            graph.insert(Triple::new(
                subject.clone(),
                Iri::new(format!("{base}#{}", fragment(rel))),
                node(target),
            ));
        }
    }

    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, Instance, OntologyBuilder, OntologyMetadata, Relationship};

    fn sample() -> Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "COURSES".into(),
            language: "PowerLoom".into(),
            documentation: Some("course admin".into()),
            version: Some("1.3".into()),
            ..OntologyMetadata::default()
        });
        let person = b.concept("PERSON");
        let student = b.concept("STUDENT");
        b.concept_mut(student).documentation = Some("A person who studies.".into());
        b.add_subclass(student, person);
        b.add_attribute(Attribute {
            name: "full-name".into(),
            documentation: None,
            data_type: Some("STRING".into()),
            definition: None,
            concept: person,
        });
        b.add_relationship(Relationship {
            name: "attends".into(),
            documentation: Some("student attends course".into()),
            definition: None,
            arity: 2,
            related_concepts: vec!["STUDENT".into(), "COURSE".into()],
        });
        b.concept("COURSE");
        b.add_instance(Instance {
            name: "Anna".into(),
            concept: student,
            attribute_values: vec![("full-name".into(), "Anna Muster".into())],
            relationship_values: vec![("attends".into(), "DB1".into())],
        });
        b.build()
    }

    const BASE: &str = "http://example.org/converted";

    #[test]
    fn exports_classes_and_hierarchy() {
        let g = ontology_to_graph(&sample(), BASE);
        let student = Term::iri(format!("{BASE}#STUDENT"));
        assert!(g.contains(&Triple::new(
            student.clone(),
            rdf::type_(),
            Term::Iri(owl::class())
        )));
        assert!(g.contains(&Triple::new(
            student,
            rdfs::sub_class_of(),
            Term::iri(format!("{BASE}#PERSON"))
        )));
    }

    #[test]
    fn exports_properties_with_xsd_ranges() {
        let g = ontology_to_graph(&sample(), BASE);
        let name = Term::iri(format!("{BASE}#full-name"));
        assert!(g.contains(&Triple::new(
            name.clone(),
            rdf::type_(),
            Term::Iri(owl::datatype_property())
        )));
        assert!(g.contains(&Triple::new(
            name,
            rdfs::range(),
            Term::iri(format!("{XSD_NS}string"))
        )));
        let attends = Term::iri(format!("{BASE}#attends"));
        assert!(g.contains(&Triple::new(
            attends,
            rdfs::range(),
            Term::iri(format!("{BASE}#COURSE"))
        )));
    }

    #[test]
    fn exports_instances_with_values() {
        let g = ontology_to_graph(&sample(), BASE);
        let anna = Term::iri(format!("{BASE}#Anna"));
        assert!(g.contains(&Triple::new(
            anna.clone(),
            rdf::type_(),
            Term::iri(format!("{BASE}#STUDENT"))
        )));
        assert!(g.contains(&Triple::new(
            anna,
            Iri::new(format!("{BASE}#full-name")),
            Term::literal("Anna Muster"),
        )));
    }

    #[test]
    fn exported_graph_serializes_to_valid_rdfxml_and_turtle() {
        let g = ontology_to_graph(&sample(), BASE);
        let xml = sst_rdf::write_rdfxml(&g);
        let reparsed = sst_rdf::parse_rdfxml(&xml, BASE).expect("rdfxml roundtrip");
        assert_eq!(reparsed.len(), g.len());
        let ttl = sst_rdf::write_turtle(&g);
        let reparsed = sst_rdf::parse_turtle(&ttl, BASE).expect("turtle roundtrip");
        assert_eq!(reparsed.len(), g.len());
    }

    #[test]
    fn odd_names_are_sanitized_into_fragments() {
        assert_eq!(fragment("TEACHING-ASSISTANT"), "TEACHING-ASSISTANT");
        assert_eq!(fragment("has space?"), "has_space_");
        assert_eq!(fragment("bank#2"), "bank_2");
    }
}

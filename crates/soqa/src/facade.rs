//! The SOQA facade (paper §2.1, Fig. 2): a single point of unified,
//! ontology-language-independent access to metadata and data of every
//! registered ontology.

use std::collections::HashMap;

use crate::error::{Result, SoqaError};
use crate::model::{Attribute, Concept, ConceptId, Instance, Method, Ontology, Relationship};

/// A concept addressed globally: which ontology, which concept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalConcept {
    /// Index of the ontology in registration order.
    pub ontology: usize,
    pub concept: ConceptId,
}

/// The unified-access facade over a set of registered ontologies.
///
/// This mirrors the Java `SOQA` facade: clients never touch wrapper or
/// language specifics, they ask the facade by (ontology name, concept name).
#[derive(Debug, Default)]
pub struct Soqa {
    ontologies: Vec<Ontology>,
    by_name: HashMap<String, usize>,
}

impl Soqa {
    pub fn new() -> Self {
        Soqa::default()
    }

    /// Registers an ontology (typically produced by a wrapper in
    /// `sst-wrappers`). Names must be unique.
    pub fn register(&mut self, ontology: Ontology) -> Result<usize> {
        let name = ontology.name().to_owned();
        if self.by_name.contains_key(&name) {
            return Err(SoqaError::DuplicateOntology(name));
        }
        let idx = self.ontologies.len();
        self.ontologies.push(ontology);
        self.by_name.insert(name, idx);
        Ok(idx)
    }

    /// Number of registered ontologies.
    pub fn ontology_count(&self) -> usize {
        self.ontologies.len()
    }

    /// Names of all registered ontologies, in registration order.
    pub fn ontology_names(&self) -> Vec<&str> {
        self.ontologies.iter().map(|o| o.name()).collect()
    }

    /// The ontology registered under `name`.
    pub fn ontology(&self, name: &str) -> Result<&Ontology> {
        self.by_name
            .get(name)
            .map(|&i| &self.ontologies[i])
            .ok_or_else(|| SoqaError::UnknownOntology(name.to_owned()))
    }

    /// The ontology at registration index `idx`.
    pub fn ontology_at(&self, idx: usize) -> &Ontology {
        &self.ontologies[idx]
    }

    /// Index of the ontology registered under `name`.
    pub fn ontology_index(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| SoqaError::UnknownOntology(name.to_owned()))
    }

    /// Resolves `(ontology name, concept name)` to a global concept handle.
    pub fn resolve(&self, ontology: &str, concept: &str) -> Result<GlobalConcept> {
        let idx = self.ontology_index(ontology)?;
        let cid = self.ontologies[idx]
            .concept_by_name(concept)
            .ok_or_else(|| SoqaError::UnknownConcept {
                ontology: ontology.to_owned(),
                concept: concept.to_owned(),
            })?;
        Ok(GlobalConcept {
            ontology: idx,
            concept: cid,
        })
    }

    /// The concept record behind a global handle.
    pub fn concept(&self, gc: GlobalConcept) -> &Concept {
        self.ontologies[gc.ontology].concept(gc.concept)
    }

    /// Total number of concepts across all ontologies.
    pub fn total_concept_count(&self) -> usize {
        self.ontologies.iter().map(|o| o.concept_count()).sum()
    }

    /// Every concept of every ontology, as global handles.
    pub fn all_concepts(&self) -> Vec<GlobalConcept> {
        let mut out = Vec::with_capacity(self.total_concept_count());
        for (i, o) in self.ontologies.iter().enumerate() {
            out.extend(o.concept_ids().map(|c| GlobalConcept {
                ontology: i,
                concept: c,
            }));
        }
        out
    }

    /// Direct superconcepts (within the concept's own ontology).
    pub fn super_concepts(&self, gc: GlobalConcept) -> Vec<GlobalConcept> {
        self.ontologies[gc.ontology]
            .direct_supers(gc.concept)
            .iter()
            .map(|&c| GlobalConcept {
                ontology: gc.ontology,
                concept: c,
            })
            .collect()
    }

    /// Direct subconcepts.
    pub fn sub_concepts(&self, gc: GlobalConcept) -> Vec<GlobalConcept> {
        self.ontologies[gc.ontology]
            .direct_subs(gc.concept)
            .iter()
            .map(|&c| GlobalConcept {
                ontology: gc.ontology,
                concept: c,
            })
            .collect()
    }

    /// All (direct and indirect) superconcepts.
    pub fn all_super_concepts(&self, gc: GlobalConcept) -> Vec<GlobalConcept> {
        self.ontologies[gc.ontology]
            .all_supers(gc.concept)
            .into_iter()
            .map(|c| GlobalConcept {
                ontology: gc.ontology,
                concept: c,
            })
            .collect()
    }

    /// All (direct and indirect) subconcepts.
    pub fn all_sub_concepts(&self, gc: GlobalConcept) -> Vec<GlobalConcept> {
        self.ontologies[gc.ontology]
            .all_subs(gc.concept)
            .into_iter()
            .map(|c| GlobalConcept {
                ontology: gc.ontology,
                concept: c,
            })
            .collect()
    }

    /// Coordinate (sibling) concepts.
    pub fn coordinate_concepts(&self, gc: GlobalConcept) -> Vec<GlobalConcept> {
        self.ontologies[gc.ontology]
            .coordinate_concepts(gc.concept)
            .into_iter()
            .map(|c| GlobalConcept {
                ontology: gc.ontology,
                concept: c,
            })
            .collect()
    }

    /// Equivalent concepts as declared in the source ontology.
    pub fn equivalent_concepts(&self, gc: GlobalConcept) -> Vec<GlobalConcept> {
        self.concept(gc)
            .equivalent_concepts
            .iter()
            .map(|&c| GlobalConcept {
                ontology: gc.ontology,
                concept: c,
            })
            .collect()
    }

    /// Antonym (disjoint) concepts as declared in the source ontology.
    pub fn antonym_concepts(&self, gc: GlobalConcept) -> Vec<GlobalConcept> {
        self.concept(gc)
            .antonym_concepts
            .iter()
            .map(|&c| GlobalConcept {
                ontology: gc.ontology,
                concept: c,
            })
            .collect()
    }

    /// Attributes declared for a concept.
    pub fn attributes_of(&self, gc: GlobalConcept) -> Vec<&Attribute> {
        let o = &self.ontologies[gc.ontology];
        o.concept(gc.concept)
            .attributes
            .iter()
            .map(|&a| o.attribute(a))
            .collect()
    }

    /// Attributes declared for a concept or inherited from any superconcept.
    pub fn attributes_with_inherited(&self, gc: GlobalConcept) -> Vec<&Attribute> {
        let o = &self.ontologies[gc.ontology];
        let mut out = self.attributes_of(gc);
        for sup in o.all_supers(gc.concept) {
            out.extend(o.concept(sup).attributes.iter().map(|&a| o.attribute(a)));
        }
        out
    }

    /// Methods declared for a concept.
    pub fn methods_of(&self, gc: GlobalConcept) -> Vec<&Method> {
        let o = &self.ontologies[gc.ontology];
        o.concept(gc.concept)
            .methods
            .iter()
            .map(|&m| o.method(m))
            .collect()
    }

    /// Relationships a concept participates in.
    pub fn relationships_of(&self, gc: GlobalConcept) -> Vec<&Relationship> {
        let o = &self.ontologies[gc.ontology];
        o.concept(gc.concept)
            .relationships
            .iter()
            .map(|&r| o.relationship(r))
            .collect()
    }

    /// Direct instances of a concept.
    pub fn instances_of(&self, gc: GlobalConcept) -> Vec<&Instance> {
        let o = &self.ontologies[gc.ontology];
        o.concept(gc.concept)
            .instances
            .iter()
            .map(|&i| o.instance(i))
            .collect()
    }

    /// A display name of the form `ontology:Concept` (the notation used in
    /// the paper's Table 1, e.g. `base1_0_daml:Professor`).
    pub fn qualified_name(&self, gc: GlobalConcept) -> String {
        format!(
            "{}:{}",
            self.ontologies[gc.ontology].name(),
            self.concept(gc).name
        )
    }

    /// Full-text description of a concept: its name plus documentation,
    /// definition, attribute names/types, and method names. This is the
    /// "export of a full-text description of all concepts" that feeds the
    /// TFIDF measure (paper §2.2).
    pub fn concept_description(&self, gc: GlobalConcept) -> String {
        let o = &self.ontologies[gc.ontology];
        let c = self.concept(gc);
        let mut text = String::with_capacity(128);
        text.push_str(&c.name);
        if let Some(doc) = &c.documentation {
            text.push(' ');
            text.push_str(doc);
        }
        if let Some(def) = &c.definition {
            text.push(' ');
            text.push_str(def);
        }
        for &a in &c.attributes {
            let attr = o.attribute(a);
            text.push(' ');
            text.push_str(&attr.name);
            if let Some(dt) = &attr.data_type {
                text.push(' ');
                text.push_str(dt);
            }
            if let Some(doc) = &attr.documentation {
                text.push(' ');
                text.push_str(doc);
            }
        }
        for &m in &c.methods {
            text.push(' ');
            text.push_str(&o.method(m).name);
        }
        for &r in &c.relationships {
            text.push(' ');
            text.push_str(&o.relationship(r).name);
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OntologyBuilder, OntologyMetadata};

    fn uni() -> Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "uni".into(),
            language: "Test".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let person = b.concept("Person");
        let student = b.concept("Student");
        b.add_subclass(person, thing);
        b.add_subclass(student, person);
        b.build()
    }

    fn birds() -> Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "birds".into(),
            language: "Test".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let bird = b.concept("Bird");
        b.add_subclass(bird, thing);
        b.build()
    }

    #[test]
    fn register_and_resolve() {
        let mut soqa = Soqa::new();
        soqa.register(uni()).unwrap();
        soqa.register(birds()).unwrap();
        assert_eq!(soqa.ontology_count(), 2);
        assert_eq!(soqa.total_concept_count(), 5);
        let gc = soqa.resolve("uni", "Student").unwrap();
        assert_eq!(soqa.concept(gc).name, "Student");
        assert_eq!(soqa.qualified_name(gc), "uni:Student");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut soqa = Soqa::new();
        soqa.register(uni()).unwrap();
        assert!(matches!(
            soqa.register(uni()),
            Err(SoqaError::DuplicateOntology(_))
        ));
    }

    #[test]
    fn unknown_lookups_error() {
        let mut soqa = Soqa::new();
        soqa.register(uni()).unwrap();
        assert!(matches!(
            soqa.resolve("nope", "X"),
            Err(SoqaError::UnknownOntology(_))
        ));
        assert!(matches!(
            soqa.resolve("uni", "Nope"),
            Err(SoqaError::UnknownConcept { .. })
        ));
    }

    #[test]
    fn same_named_concepts_in_different_ontologies_are_distinct() {
        let mut soqa = Soqa::new();
        soqa.register(uni()).unwrap();
        soqa.register(birds()).unwrap();
        let a = soqa.resolve("uni", "Thing").unwrap();
        let b = soqa.resolve("birds", "Thing").unwrap();
        assert_ne!(a, b);
        assert_eq!(soqa.sub_concepts(a).len(), 1);
        assert_eq!(soqa.concept(soqa.sub_concepts(b)[0]).name, "Bird");
    }

    #[test]
    fn description_contains_name_and_docs() {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "o".into(),
            ..OntologyMetadata::default()
        });
        let c = b.concept("Professor");
        b.concept_mut(c).documentation = Some("A senior academic".into());
        let mut soqa = Soqa::new();
        soqa.register(b.build()).unwrap();
        let gc = soqa.resolve("o", "Professor").unwrap();
        let desc = soqa.concept_description(gc);
        assert!(desc.contains("Professor") && desc.contains("senior academic"));
    }
}

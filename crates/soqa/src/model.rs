//! The SOQA Ontology Meta Model (paper §2.1, Fig. 1).
//!
//! An ontology consists of metadata plus extensions of concepts, attributes,
//! methods, relationships, and instances. Components are stored in arenas
//! inside [`Ontology`] and referenced by typed ids, which keeps the
//! specialization graph compact for the distance-based measures.

use std::collections::HashMap;
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            pub(crate) fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a concept within one ontology.
    ConceptId
);
define_id!(
    /// Identifier of an attribute within one ontology.
    AttributeId
);
define_id!(
    /// Identifier of a method within one ontology.
    MethodId
);
define_id!(
    /// Identifier of a relationship within one ontology.
    RelationshipId
);
define_id!(
    /// Identifier of an instance within one ontology.
    InstanceId
);

/// Metadata describing the ontology itself (name, author, …; paper §2.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OntologyMetadata {
    /// Short name the ontology is registered under (e.g. `univ-bench_owl`).
    pub name: String,
    pub author: Option<String>,
    pub last_modified: Option<String>,
    pub documentation: Option<String>,
    pub version: Option<String>,
    pub copyright: Option<String>,
    /// URI of the ontology document.
    pub uri: Option<String>,
    /// Name of the ontology language the ontology is specified in
    /// (`OWL`, `DAML+OIL`, `PowerLoom`, `WordNet`, …).
    pub language: String,
}

/// A concept: an entity type of the universe of discourse.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Concept {
    pub name: String,
    pub documentation: Option<String>,
    /// Definition text, subsuming axioms/constraints (paper footnote 10).
    pub definition: Option<String>,
    /// Direct superconcepts.
    pub super_concepts: Vec<ConceptId>,
    /// Direct subconcepts (derived from `super_concepts` at build time).
    pub sub_concepts: Vec<ConceptId>,
    /// Concepts declared equivalent (e.g. `owl:equivalentClass`).
    pub equivalent_concepts: Vec<ConceptId>,
    /// Concepts declared antonym/disjoint (e.g. `owl:disjointWith`).
    pub antonym_concepts: Vec<ConceptId>,
    /// Attributes declared for this concept.
    pub attributes: Vec<AttributeId>,
    /// Methods declared for this concept.
    pub methods: Vec<MethodId>,
    /// Relationships this concept participates in.
    pub relationships: Vec<RelationshipId>,
    /// Direct instances.
    pub instances: Vec<InstanceId>,
}

/// An attribute: a property of a concept.
#[derive(Debug, Clone)]
pub struct Attribute {
    pub name: String,
    pub documentation: Option<String>,
    pub data_type: Option<String>,
    pub definition: Option<String>,
    /// The concept the attribute is specified in.
    pub concept: ConceptId,
}

/// A parameter of a method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parameter {
    pub name: String,
    pub data_type: Option<String>,
}

/// A method: a function from parameters to an output value.
#[derive(Debug, Clone)]
pub struct Method {
    pub name: String,
    pub documentation: Option<String>,
    pub definition: Option<String>,
    pub parameters: Vec<Parameter>,
    pub return_type: Option<String>,
    /// The concept the method is declared for.
    pub concept: ConceptId,
}

/// A relationship between concepts (taxonomies, compositions, …).
#[derive(Debug, Clone)]
pub struct Relationship {
    pub name: String,
    pub documentation: Option<String>,
    pub definition: Option<String>,
    /// Number of concepts related.
    pub arity: usize,
    /// Names of the related concepts, in declaration order.
    pub related_concepts: Vec<String>,
}

/// An instance of a concept, with concrete attribute values.
#[derive(Debug, Clone)]
pub struct Instance {
    pub name: String,
    /// The concept this instance belongs to.
    pub concept: ConceptId,
    /// Concrete attribute values as (attribute name, value) pairs.
    pub attribute_values: Vec<(String, String)>,
    /// Concrete relationship incarnations as (relationship name, target
    /// instance or concept name) pairs.
    pub relationship_values: Vec<(String, String)>,
}

/// One ontology with all its components, per the SOQA meta model.
#[derive(Debug, Default)]
pub struct Ontology {
    pub metadata: OntologyMetadata,
    concepts: Vec<Concept>,
    concept_names: HashMap<String, ConceptId>,
    attributes: Vec<Attribute>,
    methods: Vec<Method>,
    relationships: Vec<Relationship>,
    instances: Vec<Instance>,
    instance_names: HashMap<String, InstanceId>,
    roots: Vec<ConceptId>,
}

impl Ontology {
    /// Reassembles an ontology from raw component arenas, as produced by a
    /// persisted snapshot. Unlike [`OntologyBuilder`], which derives link
    /// vectors from a sequence of declarations, this takes every `Concept`
    /// link field *verbatim* — replaying builder calls is not guaranteed to
    /// reproduce the original (e.g. `add_relationship` only registers with
    /// concepts that existed at call time), and exact reconstruction is what
    /// makes snapshot round-trips bit-identical.
    ///
    /// Every cross-arena id is validated up front (the accessors index
    /// directly, so a dangling id must never enter an `Ontology`), and
    /// duplicate concept names are rejected. Name maps and roots are
    /// recomputed; `instance_names` keeps the last occurrence per name,
    /// mirroring [`OntologyBuilder::add_instance`].
    pub fn from_arenas(
        metadata: OntologyMetadata,
        concepts: Vec<Concept>,
        attributes: Vec<Attribute>,
        methods: Vec<Method>,
        relationships: Vec<Relationship>,
        instances: Vec<Instance>,
    ) -> crate::error::Result<Ontology> {
        let bad = |what: &str, id: u32| crate::error::SoqaError::Wrapper {
            language: "Snapshot".to_owned(),
            message: format!("{what} id {id} out of range"),
        };
        let check = |what: &str, id: u32, len: usize| {
            if (id as usize) < len {
                Ok(())
            } else {
                Err(bad(what, id))
            }
        };
        for concept in &concepts {
            for link in [
                &concept.super_concepts,
                &concept.sub_concepts,
                &concept.equivalent_concepts,
                &concept.antonym_concepts,
            ] {
                for id in link {
                    check("concept", id.0, concepts.len())?;
                }
            }
            for id in &concept.attributes {
                check("attribute", id.0, attributes.len())?;
            }
            for id in &concept.methods {
                check("method", id.0, methods.len())?;
            }
            for id in &concept.relationships {
                check("relationship", id.0, relationships.len())?;
            }
            for id in &concept.instances {
                check("instance", id.0, instances.len())?;
            }
        }
        for attribute in &attributes {
            check("concept", attribute.concept.0, concepts.len())?;
        }
        for method in &methods {
            check("concept", method.concept.0, concepts.len())?;
        }
        for instance in &instances {
            check("concept", instance.concept.0, concepts.len())?;
        }
        let mut concept_names = HashMap::with_capacity(concepts.len());
        for (i, concept) in concepts.iter().enumerate() {
            if concept_names
                .insert(concept.name.clone(), ConceptId(i as u32))
                .is_some()
            {
                return Err(crate::error::SoqaError::Wrapper {
                    language: "Snapshot".to_owned(),
                    message: format!("duplicate concept name `{}`", concept.name),
                });
            }
        }
        let mut instance_names = HashMap::with_capacity(instances.len());
        for (i, instance) in instances.iter().enumerate() {
            instance_names.insert(instance.name.clone(), InstanceId(i as u32));
        }
        let roots = concepts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.super_concepts.is_empty())
            .map(|(i, _)| ConceptId(i as u32))
            .collect();
        Ok(Ontology {
            metadata,
            concepts,
            concept_names,
            attributes,
            methods,
            relationships,
            instances,
            instance_names,
            roots,
        })
    }

    /// The ontology's registered name.
    pub fn name(&self) -> &str {
        &self.metadata.name
    }

    /// Root concepts: concepts without superconcepts.
    pub fn roots(&self) -> &[ConceptId] {
        &self.roots
    }

    /// Number of concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// All concept ids in insertion order.
    pub fn concept_ids(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.concepts.len() as u32).map(ConceptId)
    }

    /// Resolves a concept by name.
    pub fn concept_by_name(&self, name: &str) -> Option<ConceptId> {
        self.concept_names.get(name).copied()
    }

    /// The concept record for `id`.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    pub fn attribute(&self, id: AttributeId) -> &Attribute {
        &self.attributes[id.index()]
    }

    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    pub fn relationship(&self, id: RelationshipId) -> &Relationship {
        &self.relationships[id.index()]
    }

    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.index()]
    }

    pub fn instance_by_name(&self, name: &str) -> Option<InstanceId> {
        self.instance_names.get(name).copied()
    }

    /// All attributes in the ontology's attribute extension.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    pub fn relationships(&self) -> &[Relationship] {
        &self.relationships
    }

    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Direct superconcepts of `id`.
    pub fn direct_supers(&self, id: ConceptId) -> &[ConceptId] {
        &self.concept(id).super_concepts
    }

    /// Direct subconcepts of `id`.
    pub fn direct_subs(&self, id: ConceptId) -> &[ConceptId] {
        &self.concept(id).sub_concepts
    }

    /// All (direct and indirect) superconcepts of `id`, breadth-first,
    /// excluding `id` itself.
    pub fn all_supers(&self, id: ConceptId) -> Vec<ConceptId> {
        self.closure(id, |c| &self.concept(c).super_concepts)
    }

    /// All (direct and indirect) subconcepts of `id`, breadth-first,
    /// excluding `id` itself.
    pub fn all_subs(&self, id: ConceptId) -> Vec<ConceptId> {
        self.closure(id, |c| &self.concept(c).sub_concepts)
    }

    fn closure<'a, F>(&'a self, start: ConceptId, next: F) -> Vec<ConceptId>
    where
        F: Fn(ConceptId) -> &'a [ConceptId],
    {
        let mut seen = vec![false; self.concepts.len()];
        seen[start.index()] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        let mut out = Vec::new();
        while let Some(c) = queue.pop_front() {
            for &n in next(c) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    out.push(n);
                    queue.push_back(n);
                }
            }
        }
        out
    }

    /// Coordinate concepts: concepts on the same hierarchy level, i.e.
    /// sharing at least one direct superconcept with `id` (excluding `id`).
    pub fn coordinate_concepts(&self, id: ConceptId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.concepts.len()];
        seen[id.index()] = true;
        for &sup in self.direct_supers(id) {
            for &sib in self.direct_subs(sup) {
                if !seen[sib.index()] {
                    seen[sib.index()] = true;
                    out.push(sib);
                }
            }
        }
        out
    }

    /// Depth of `id`: length of the shortest superconcept chain to a root.
    pub fn depth(&self, id: ConceptId) -> usize {
        let mut depth = 0;
        let mut frontier = vec![id];
        let mut seen = vec![false; self.concepts.len()];
        seen[id.index()] = true;
        loop {
            if frontier
                .iter()
                .any(|c| self.concept(*c).super_concepts.is_empty())
            {
                return depth;
            }
            let mut next = Vec::new();
            for c in frontier {
                for &s in self.direct_supers(c) {
                    if !seen[s.index()] {
                        seen[s.index()] = true;
                        next.push(s);
                    }
                }
            }
            if next.is_empty() {
                return depth;
            }
            depth += 1;
            frontier = next;
        }
    }

    /// Maximum depth over all concepts (the `MAX` of the paper's Eq. 5).
    pub fn max_depth(&self) -> usize {
        self.concept_ids().map(|c| self.depth(c)).max().unwrap_or(0)
    }

    /// Number of instances of `id` including instances of all subconcepts —
    /// the corpus count behind the information-theoretic measures.
    pub fn extension_size(&self, id: ConceptId) -> usize {
        let mut count = self.concept(id).instances.len();
        for sub in self.all_subs(id) {
            count += self.concept(sub).instances.len();
        }
        count
    }
}

/// Incrementally assembles an [`Ontology`]; used by every language wrapper.
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    ontology: Ontology,
}

impl OntologyBuilder {
    pub fn new(metadata: OntologyMetadata) -> Self {
        OntologyBuilder {
            ontology: Ontology {
                metadata,
                ..Ontology::default()
            },
        }
    }

    /// Adds (or retrieves) a concept by name. Wrappers call this eagerly for
    /// forward references and fill in details later via the `*_mut` methods.
    pub fn concept(&mut self, name: &str) -> ConceptId {
        if let Some(&id) = self.ontology.concept_names.get(name) {
            return id;
        }
        let id = ConceptId(self.ontology.concepts.len() as u32);
        self.ontology.concepts.push(Concept {
            name: name.to_owned(),
            ..Concept::default()
        });
        self.ontology.concept_names.insert(name.to_owned(), id);
        id
    }

    /// True if a concept with `name` already exists.
    pub fn has_concept(&self, name: &str) -> bool {
        self.ontology.concept_names.contains_key(name)
    }

    /// Number of concepts created so far.
    pub fn concept_count(&self) -> usize {
        self.ontology.concepts.len()
    }

    /// Read access to a concept record under construction.
    pub fn concept_ref(&self, id: ConceptId) -> &Concept {
        &self.ontology.concepts[id.index()]
    }

    /// Mutable access to a concept record.
    pub fn concept_mut(&mut self, id: ConceptId) -> &mut Concept {
        &mut self.ontology.concepts[id.index()]
    }

    /// Declares `sub` a direct subconcept of `sup` (idempotent).
    pub fn add_subclass(&mut self, sub: ConceptId, sup: ConceptId) {
        if sub == sup {
            return;
        }
        let subs = &mut self.ontology.concepts[sup.index()].sub_concepts;
        if !subs.contains(&sub) {
            subs.push(sub);
        }
        let sups = &mut self.ontology.concepts[sub.index()].super_concepts;
        if !sups.contains(&sup) {
            sups.push(sup);
        }
    }

    /// Declares two concepts equivalent (symmetric, idempotent).
    pub fn add_equivalent(&mut self, a: ConceptId, b: ConceptId) {
        if a == b {
            return;
        }
        let ea = &mut self.ontology.concepts[a.index()].equivalent_concepts;
        if !ea.contains(&b) {
            ea.push(b);
        }
        let eb = &mut self.ontology.concepts[b.index()].equivalent_concepts;
        if !eb.contains(&a) {
            eb.push(a);
        }
    }

    /// Declares two concepts antonym/disjoint (symmetric, idempotent).
    pub fn add_antonym(&mut self, a: ConceptId, b: ConceptId) {
        if a == b {
            return;
        }
        let aa = &mut self.ontology.concepts[a.index()].antonym_concepts;
        if !aa.contains(&b) {
            aa.push(b);
        }
        let ab = &mut self.ontology.concepts[b.index()].antonym_concepts;
        if !ab.contains(&a) {
            ab.push(a);
        }
    }

    /// Adds an attribute to `concept`.
    pub fn add_attribute(&mut self, attribute: Attribute) -> AttributeId {
        let id = AttributeId(self.ontology.attributes.len() as u32);
        self.ontology.concepts[attribute.concept.index()]
            .attributes
            .push(id);
        self.ontology.attributes.push(attribute);
        id
    }

    /// Adds a method to its concept.
    pub fn add_method(&mut self, method: Method) -> MethodId {
        let id = MethodId(self.ontology.methods.len() as u32);
        self.ontology.concepts[method.concept.index()]
            .methods
            .push(id);
        self.ontology.methods.push(method);
        id
    }

    /// Adds a relationship and registers it with every named participant
    /// concept that exists.
    pub fn add_relationship(&mut self, relationship: Relationship) -> RelationshipId {
        let id = RelationshipId(self.ontology.relationships.len() as u32);
        for name in &relationship.related_concepts {
            if let Some(&cid) = self.ontology.concept_names.get(name) {
                let rels = &mut self.ontology.concepts[cid.index()].relationships;
                if !rels.contains(&id) {
                    rels.push(id);
                }
            }
        }
        self.ontology.relationships.push(relationship);
        id
    }

    /// Adds an instance to its concept.
    pub fn add_instance(&mut self, instance: Instance) -> InstanceId {
        let id = InstanceId(self.ontology.instances.len() as u32);
        self.ontology.concepts[instance.concept.index()]
            .instances
            .push(id);
        self.ontology
            .instance_names
            .insert(instance.name.clone(), id);
        self.ontology.instances.push(instance);
        id
    }

    /// Finalizes the ontology: computes roots and freezes the arenas.
    pub fn build(mut self) -> Ontology {
        self.ontology.roots = self
            .ontology
            .concepts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.super_concepts.is_empty())
            .map(|(i, _)| ConceptId(i as u32))
            .collect();
        self.ontology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds:  Thing ← Person ← {Student, Professor ← FullProfessor}
    fn sample() -> Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "uni".into(),
            language: "Test".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let person = b.concept("Person");
        let student = b.concept("Student");
        let professor = b.concept("Professor");
        let full = b.concept("FullProfessor");
        b.add_subclass(person, thing);
        b.add_subclass(student, person);
        b.add_subclass(professor, person);
        b.add_subclass(full, professor);
        b.add_attribute(Attribute {
            name: "name".into(),
            documentation: None,
            data_type: Some("string".into()),
            definition: None,
            concept: person,
        });
        b.add_instance(Instance {
            name: "alice".into(),
            concept: student,
            attribute_values: vec![("name".into(), "Alice".into())],
            relationship_values: vec![],
        });
        b.add_instance(Instance {
            name: "bob".into(),
            concept: full,
            attribute_values: vec![],
            relationship_values: vec![],
        });
        b.build()
    }

    #[test]
    fn roots_and_lookup() {
        let o = sample();
        assert_eq!(o.roots().len(), 1);
        assert_eq!(o.concept(o.roots()[0]).name, "Thing");
        assert_eq!(o.concept_count(), 5);
        assert!(o.concept_by_name("Student").is_some());
        assert!(o.concept_by_name("Nobody").is_none());
    }

    #[test]
    fn super_and_sub_closures() {
        let o = sample();
        let full = o.concept_by_name("FullProfessor").unwrap();
        let supers: Vec<&str> = o
            .all_supers(full)
            .iter()
            .map(|&c| o.concept(c).name.as_str())
            .collect();
        assert_eq!(supers, vec!["Professor", "Person", "Thing"]);
        let thing = o.concept_by_name("Thing").unwrap();
        assert_eq!(o.all_subs(thing).len(), 4);
    }

    #[test]
    fn coordinate_concepts_are_siblings() {
        let o = sample();
        let student = o.concept_by_name("Student").unwrap();
        let coords: Vec<&str> = o
            .coordinate_concepts(student)
            .iter()
            .map(|&c| o.concept(c).name.as_str())
            .collect();
        assert_eq!(coords, vec!["Professor"]);
    }

    #[test]
    fn depth_and_max_depth() {
        let o = sample();
        assert_eq!(o.depth(o.concept_by_name("Thing").unwrap()), 0);
        assert_eq!(o.depth(o.concept_by_name("Person").unwrap()), 1);
        assert_eq!(o.depth(o.concept_by_name("FullProfessor").unwrap()), 3);
        assert_eq!(o.max_depth(), 3);
    }

    #[test]
    fn extension_counts_include_subconcepts() {
        let o = sample();
        let person = o.concept_by_name("Person").unwrap();
        assert_eq!(o.extension_size(person), 2); // alice + bob
        let student = o.concept_by_name("Student").unwrap();
        assert_eq!(o.extension_size(student), 1);
    }

    #[test]
    fn subclass_is_idempotent_and_ignores_self_loops() {
        let mut b = OntologyBuilder::new(OntologyMetadata::default());
        let a = b.concept("A");
        let bb = b.concept("B");
        b.add_subclass(bb, a);
        b.add_subclass(bb, a);
        b.add_subclass(a, a);
        let o = b.build();
        assert_eq!(o.direct_subs(a).len(), 1);
        assert_eq!(o.direct_supers(a).len(), 0);
    }

    #[test]
    fn equivalent_and_antonym_are_symmetric() {
        let mut b = OntologyBuilder::new(OntologyMetadata::default());
        let a = b.concept("A");
        let c = b.concept("B");
        b.add_equivalent(a, c);
        b.add_antonym(a, c);
        let o = b.build();
        assert_eq!(o.concept(a).equivalent_concepts, vec![c]);
        assert_eq!(o.concept(c).equivalent_concepts, vec![a]);
        assert_eq!(o.concept(a).antonym_concepts, vec![c]);
        assert_eq!(o.concept(c).antonym_concepts, vec![a]);
    }

    #[test]
    fn from_arenas_round_trips_a_built_ontology() {
        let o = sample();
        let rebuilt = Ontology::from_arenas(
            o.metadata.clone(),
            o.concept_ids().map(|c| o.concept(c).clone()).collect(),
            o.attributes().to_vec(),
            o.methods().to_vec(),
            o.relationships().to_vec(),
            o.instances().to_vec(),
        )
        .expect("round trip");
        assert_eq!(rebuilt.name(), o.name());
        assert_eq!(rebuilt.roots(), o.roots());
        assert_eq!(rebuilt.concept_count(), o.concept_count());
        for id in o.concept_ids() {
            assert_eq!(rebuilt.concept(id), o.concept(id));
            assert_eq!(rebuilt.concept_by_name(&o.concept(id).name), Some(id));
        }
        assert_eq!(
            rebuilt.instance_by_name("alice"),
            o.instance_by_name("alice")
        );
        let person = rebuilt.concept_by_name("Person").unwrap();
        assert_eq!(rebuilt.extension_size(person), 2);
    }

    #[test]
    fn from_arenas_rejects_dangling_ids() {
        // A concept pointing at a superconcept beyond the arena.
        let concept = Concept {
            name: "A".into(),
            super_concepts: vec![ConceptId(7)],
            ..Concept::default()
        };
        let err = Ontology::from_arenas(
            OntologyMetadata::default(),
            vec![concept],
            vec![],
            vec![],
            vec![],
            vec![],
        )
        .expect_err("dangling superconcept id");
        assert!(err.to_string().contains("out of range"), "{err}");

        // An instance typed by a concept that does not exist.
        let err = Ontology::from_arenas(
            OntologyMetadata::default(),
            vec![Concept {
                name: "A".into(),
                ..Concept::default()
            }],
            vec![],
            vec![],
            vec![],
            vec![Instance {
                name: "x".into(),
                concept: ConceptId(1),
                attribute_values: vec![],
                relationship_values: vec![],
            }],
        )
        .expect_err("dangling instance concept id");
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn from_arenas_rejects_duplicate_concept_names() {
        let dup = |name: &str| Concept {
            name: name.into(),
            ..Concept::default()
        };
        let err = Ontology::from_arenas(
            OntologyMetadata::default(),
            vec![dup("A"), dup("A")],
            vec![],
            vec![],
            vec![],
            vec![],
        )
        .expect_err("duplicate concept name");
        assert!(err.to_string().contains("duplicate concept name"), "{err}");
    }

    #[test]
    fn multiple_inheritance_depth_uses_shortest_path() {
        // root ← a ← b; root ← b  (b has two parents at different depths)
        let mut bld = OntologyBuilder::new(OntologyMetadata::default());
        let root = bld.concept("root");
        let a = bld.concept("a");
        let b = bld.concept("b");
        bld.add_subclass(a, root);
        bld.add_subclass(b, a);
        bld.add_subclass(b, root);
        let o = bld.build();
        assert_eq!(o.depth(b), 1);
    }
}

//! Ontology statistics: the structural profile of an ontology (size, depth
//! distribution, branching) — the numbers an integrator looks at before
//! choosing similarity measures, and the basis of the browser's stats pane.

use crate::model::Ontology;

/// Structural summary of one ontology.
#[derive(Debug, Clone, PartialEq)]
pub struct OntologyStats {
    pub name: String,
    pub language: String,
    pub concepts: usize,
    pub attributes: usize,
    pub methods: usize,
    pub relationships: usize,
    pub instances: usize,
    pub roots: usize,
    pub leaves: usize,
    pub max_depth: usize,
    pub average_depth: f64,
    /// Average number of direct subconcepts over concepts that have any.
    pub average_branching: f64,
    /// Concepts with more than one direct superconcept.
    pub multiple_inheritance: usize,
    /// Concepts carrying documentation text.
    pub documented: usize,
    /// Histogram of concept depths, index = depth.
    pub depth_histogram: Vec<usize>,
}

/// Computes the statistics for `ontology`.
pub fn ontology_stats(ontology: &Ontology) -> OntologyStats {
    let concepts = ontology.concept_count();
    let mut leaves = 0usize;
    let mut multiple_inheritance = 0usize;
    let mut documented = 0usize;
    let mut depth_sum = 0usize;
    let mut depth_histogram: Vec<usize> = Vec::new();
    let mut branching_sum = 0usize;
    let mut branching_nodes = 0usize;

    for id in ontology.concept_ids() {
        let concept = ontology.concept(id);
        if concept.sub_concepts.is_empty() {
            leaves += 1;
        } else {
            branching_sum += concept.sub_concepts.len();
            branching_nodes += 1;
        }
        if concept.super_concepts.len() > 1 {
            multiple_inheritance += 1;
        }
        if concept.documentation.is_some() {
            documented += 1;
        }
        let depth = ontology.depth(id);
        depth_sum += depth;
        if depth_histogram.len() <= depth {
            depth_histogram.resize(depth + 1, 0);
        }
        depth_histogram[depth] += 1;
    }

    OntologyStats {
        name: ontology.name().to_owned(),
        language: ontology.metadata.language.clone(),
        concepts,
        attributes: ontology.attributes().len(),
        methods: ontology.methods().len(),
        relationships: ontology.relationships().len(),
        instances: ontology.instances().len(),
        roots: ontology.roots().len(),
        leaves,
        max_depth: depth_histogram.len().saturating_sub(1),
        average_depth: if concepts == 0 {
            0.0
        } else {
            depth_sum as f64 / concepts as f64
        },
        average_branching: if branching_nodes == 0 {
            0.0
        } else {
            branching_sum as f64 / branching_nodes as f64
        },
        multiple_inheritance,
        documented,
        depth_histogram,
    }
}

impl OntologyStats {
    /// Renders the stats pane.
    pub fn render(&self) -> String {
        let mut out = format!("Statistics: {} [{}]\n", self.name, self.language);
        out.push_str(&format!(
            "  concepts {}  attributes {}  methods {}  relationships {}  instances {}\n",
            self.concepts, self.attributes, self.methods, self.relationships, self.instances
        ));
        out.push_str(&format!(
            "  roots {}  leaves {}  multiple-inheritance {}  documented {}/{}\n",
            self.roots, self.leaves, self.multiple_inheritance, self.documented, self.concepts
        ));
        out.push_str(&format!(
            "  depth: max {}  avg {:.2}   branching: avg {:.2}\n",
            self.max_depth, self.average_depth, self.average_branching
        ));
        out.push_str("  depth histogram:\n");
        let peak = self
            .depth_histogram
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);
        for (depth, &count) in self.depth_histogram.iter().enumerate() {
            let bar = "▪".repeat((count * 40).div_ceil(peak));
            out.push_str(&format!("    {depth:>3} | {bar} {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, OntologyBuilder, OntologyMetadata};

    fn sample() -> Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "uni".into(),
            language: "Test".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let person = b.concept("Person");
        let student = b.concept("Student");
        let prof = b.concept("Professor");
        let ta = b.concept("TA");
        b.add_subclass(person, thing);
        b.add_subclass(student, person);
        b.add_subclass(prof, person);
        b.add_subclass(ta, student);
        b.add_subclass(ta, prof); // multiple inheritance
        b.concept_mut(person).documentation = Some("doc".into());
        b.add_attribute(Attribute {
            name: "name".into(),
            documentation: None,
            data_type: None,
            definition: None,
            concept: person,
        });
        b.build()
    }

    #[test]
    fn counts_are_correct() {
        let stats = ontology_stats(&sample());
        assert_eq!(stats.concepts, 5);
        assert_eq!(stats.attributes, 1);
        assert_eq!(stats.roots, 1);
        assert_eq!(stats.leaves, 1); // TA
        assert_eq!(stats.multiple_inheritance, 1);
        assert_eq!(stats.documented, 1);
        assert_eq!(stats.max_depth, 3);
        // Depths: 0, 1, 2, 2, 3 → avg 1.6
        assert!((stats.average_depth - 1.6).abs() < 1e-12);
        assert_eq!(stats.depth_histogram, vec![1, 1, 2, 1]);
    }

    #[test]
    fn branching_counts_only_internal_nodes() {
        let stats = ontology_stats(&sample());
        // Thing(1), Person(2), Student(1), Professor(1) → 5/4
        assert!((stats.average_branching - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_ontology_is_safe() {
        let b = OntologyBuilder::new(OntologyMetadata::default());
        let stats = ontology_stats(&b.build());
        assert_eq!(stats.concepts, 0);
        assert_eq!(stats.average_depth, 0.0);
        assert_eq!(stats.max_depth, 0);
    }

    #[test]
    fn render_contains_the_histogram() {
        let text = ontology_stats(&sample()).render();
        assert!(text.contains("depth histogram"));
        assert!(text.contains("0 | "));
        assert!(text.contains("multiple-inheritance 1"));
    }
}

//! Error type for SOQA operations.

use std::fmt;

/// Errors raised by the SOQA facade, wrappers, and SOQA-QL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoqaError {
    /// No ontology registered under this name.
    UnknownOntology(String),
    /// No concept with this name in the named ontology.
    UnknownConcept { ontology: String, concept: String },
    /// A name was registered twice.
    DuplicateOntology(String),
    /// A wrapper could not parse its source document.
    Wrapper { language: String, message: String },
    /// A SOQA-QL query failed to parse or evaluate.
    Query(String),
    /// A source document blew past a resource limit while being ingested.
    Limit(sst_limits::LimitViolation),
}

impl fmt::Display for SoqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoqaError::UnknownOntology(name) => write!(f, "unknown ontology `{name}`"),
            SoqaError::UnknownConcept { ontology, concept } => {
                write!(f, "unknown concept `{concept}` in ontology `{ontology}`")
            }
            SoqaError::DuplicateOntology(name) => {
                write!(f, "an ontology named `{name}` is already registered")
            }
            SoqaError::Wrapper { language, message } => {
                write!(f, "{language} wrapper error: {message}")
            }
            SoqaError::Query(message) => write!(f, "SOQA-QL error: {message}"),
            SoqaError::Limit(violation) => write!(f, "{violation}"),
        }
    }
}

impl std::error::Error for SoqaError {}

impl From<sst_limits::LimitViolation> for SoqaError {
    fn from(violation: sst_limits::LimitViolation) -> Self {
        SoqaError::Limit(violation)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SoqaError>;

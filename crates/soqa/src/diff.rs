//! Structural diff between two ontologies — the inspection step before any
//! alignment or integration decision: which concepts were added, removed,
//! re-documented, or re-parented between two versions (or two language
//! renderings) of an ontology.

use std::collections::BTreeSet;

use crate::model::Ontology;

/// One concept-level change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConceptChange {
    Added(String),
    Removed(String),
    /// Documentation text differs.
    Redocumented(String),
    /// The set of direct superconcept names differs.
    Reparented {
        concept: String,
        before: Vec<String>,
        after: Vec<String>,
    },
}

/// The full diff report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OntologyDiff {
    pub concept_changes: Vec<ConceptChange>,
    pub attributes_added: Vec<String>,
    pub attributes_removed: Vec<String>,
    pub relationships_added: Vec<String>,
    pub relationships_removed: Vec<String>,
    pub instances_added: Vec<String>,
    pub instances_removed: Vec<String>,
}

impl OntologyDiff {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.concept_changes.is_empty()
            && self.attributes_added.is_empty()
            && self.attributes_removed.is_empty()
            && self.relationships_added.is_empty()
            && self.relationships_removed.is_empty()
            && self.instances_added.is_empty()
            && self.instances_removed.is_empty()
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "no structural differences\n".to_owned();
        }
        let mut out = String::new();
        for change in &self.concept_changes {
            match change {
                ConceptChange::Added(name) => out.push_str(&format!("+ concept {name}\n")),
                ConceptChange::Removed(name) => out.push_str(&format!("- concept {name}\n")),
                ConceptChange::Redocumented(name) => {
                    out.push_str(&format!("~ concept {name} (documentation changed)\n"))
                }
                ConceptChange::Reparented {
                    concept,
                    before,
                    after,
                } => out.push_str(&format!(
                    "~ concept {concept} (supers {before:?} → {after:?})\n"
                )),
            }
        }
        let section = |out: &mut String, sign: char, kind: &str, names: &[String]| {
            for n in names {
                out.push_str(&format!("{sign} {kind} {n}\n"));
            }
        };
        section(&mut out, '+', "attribute", &self.attributes_added);
        section(&mut out, '-', "attribute", &self.attributes_removed);
        section(&mut out, '+', "relationship", &self.relationships_added);
        section(&mut out, '-', "relationship", &self.relationships_removed);
        section(&mut out, '+', "instance", &self.instances_added);
        section(&mut out, '-', "instance", &self.instances_removed);
        out
    }
}

fn name_set<I: Iterator<Item = String>>(iter: I) -> BTreeSet<String> {
    iter.collect()
}

/// Diffs `before` against `after` by concept/attribute/relationship/
/// instance names (names are the identity carrier in the SOQA meta model).
pub fn diff_ontologies(before: &Ontology, after: &Ontology) -> OntologyDiff {
    let mut report = OntologyDiff::default();

    let before_names = name_set(
        before
            .concept_ids()
            .map(|id| before.concept(id).name.clone()),
    );
    let after_names = name_set(after.concept_ids().map(|id| after.concept(id).name.clone()));

    for name in after_names.difference(&before_names) {
        report
            .concept_changes
            .push(ConceptChange::Added(name.clone()));
    }
    for name in before_names.difference(&after_names) {
        report
            .concept_changes
            .push(ConceptChange::Removed(name.clone()));
    }
    for name in before_names.intersection(&after_names) {
        // `name` came from both name sets, so both lookups succeed; skip
        // defensively rather than assert.
        let (Some(b), Some(a)) = (before.concept_by_name(name), after.concept_by_name(name)) else {
            continue;
        };
        let b_supers: BTreeSet<String> = before
            .direct_supers(b)
            .iter()
            .map(|&s| before.concept(s).name.clone())
            .collect();
        let a_supers: BTreeSet<String> = after
            .direct_supers(a)
            .iter()
            .map(|&s| after.concept(s).name.clone())
            .collect();
        if b_supers != a_supers {
            report.concept_changes.push(ConceptChange::Reparented {
                concept: name.clone(),
                before: b_supers.into_iter().collect(),
                after: a_supers.into_iter().collect(),
            });
        }
        if before.concept(b).documentation != after.concept(a).documentation {
            report
                .concept_changes
                .push(ConceptChange::Redocumented(name.clone()));
        }
    }

    let pairs = |o: &Ontology| -> BTreeSet<String> {
        o.attributes()
            .iter()
            .map(|a| format!("{}.{}", o.concept(a.concept).name, a.name))
            .collect()
    };
    let (b, a) = (pairs(before), pairs(after));
    report.attributes_added = a.difference(&b).cloned().collect();
    report.attributes_removed = b.difference(&a).cloned().collect();

    let rels = |o: &Ontology| -> BTreeSet<String> {
        o.relationships().iter().map(|r| r.name.clone()).collect()
    };
    let (b, a) = (rels(before), rels(after));
    report.relationships_added = a.difference(&b).cloned().collect();
    report.relationships_removed = b.difference(&a).cloned().collect();

    let insts = |o: &Ontology| -> BTreeSet<String> {
        o.instances().iter().map(|i| i.name.clone()).collect()
    };
    let (b, a) = (insts(before), insts(after));
    report.instances_added = a.difference(&b).cloned().collect();
    report.instances_removed = b.difference(&a).cloned().collect();

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, Instance, OntologyBuilder, OntologyMetadata};

    fn base() -> OntologyBuilder {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "v".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let person = b.concept("Person");
        let student = b.concept("Student");
        b.add_subclass(person, thing);
        b.add_subclass(student, person);
        b
    }

    #[test]
    fn identical_ontologies_have_empty_diff() {
        let diff = diff_ontologies(&base().build(), &base().build());
        assert!(diff.is_empty());
        assert_eq!(diff.render(), "no structural differences\n");
    }

    #[test]
    fn detects_added_and_removed_concepts() {
        let before = base().build();
        let mut after = base();
        let thing = after.concept("Thing");
        let prof = after.concept("Professor");
        after.add_subclass(prof, thing);
        let diff = diff_ontologies(&before, &after.build());
        assert_eq!(
            diff.concept_changes,
            vec![ConceptChange::Added("Professor".into())]
        );
        let reverse = diff_ontologies(&after_with_professor(), &before);
        assert!(reverse
            .concept_changes
            .contains(&ConceptChange::Removed("Professor".into())));
    }

    fn after_with_professor() -> Ontology {
        let mut after = base();
        let thing = after.concept("Thing");
        let prof = after.concept("Professor");
        after.add_subclass(prof, thing);
        after.build()
    }

    #[test]
    fn detects_reparenting_and_redocumentation() {
        let before = base().build();
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "v".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let person = b.concept("Person");
        let student = b.concept("Student");
        b.add_subclass(person, thing);
        b.add_subclass(student, thing); // re-parented!
        b.concept_mut(person).documentation = Some("updated".into());
        let diff = diff_ontologies(&before, &b.build());
        assert!(diff.concept_changes.iter().any(|c| matches!(
            c,
            ConceptChange::Reparented { concept, .. } if concept == "Student"
        )));
        assert!(diff
            .concept_changes
            .contains(&ConceptChange::Redocumented("Person".into())));
        let text = diff.render();
        assert!(text.contains("~ concept Student"));
    }

    #[test]
    fn detects_component_changes() {
        let before = base().build();
        let mut b = base();
        let person = b.concept("Person");
        b.add_attribute(Attribute {
            name: "email".into(),
            documentation: None,
            data_type: None,
            definition: None,
            concept: person,
        });
        b.add_instance(Instance {
            name: "anna".into(),
            concept: person,
            attribute_values: vec![],
            relationship_values: vec![],
        });
        let diff = diff_ontologies(&before, &b.build());
        assert_eq!(diff.attributes_added, vec!["Person.email"]);
        assert_eq!(diff.instances_added, vec!["anna"]);
        assert!(diff.attributes_removed.is_empty());
    }
}

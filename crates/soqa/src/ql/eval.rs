//! Evaluator executing SOQA-QL queries against a [`Soqa`] facade.

use std::collections::HashMap;

use crate::error::{Result, SoqaError};
use crate::facade::Soqa;
use crate::ql::ast::{CompareOp, CountSpec, Expr, Extent, Query, Value};
use crate::ql::parser::parse_query;

/// One cell of a result row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Str(String),
    Num(f64),
    Null,
}

impl Cell {
    /// Rendered form for tables and comparisons against strings.
    pub fn render(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Num(n) => {
                if n.fract() == 0.0 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Cell::Null => String::new(),
        }
    }
}

/// A query result: column names plus rows of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
}

impl ResultTable {
    /// Renders an ASCII table (the SOQA Query Shell output format).
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+\n";
        let mut out = sep.clone();
        out.push('|');
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
        out.push_str(&sep);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

type Row = HashMap<&'static str, Cell>;

/// Parses and executes `query` against the facade.
pub fn execute(soqa: &Soqa, query: &str) -> Result<ResultTable> {
    execute_with_metrics(soqa, query, None)
}

/// Like [`execute`], but records per-query observability when a registry is
/// supplied: the `soqa.ql.queries` counter and `soqa.ql.parse.latency` /
/// `soqa.ql.eval.latency` histograms (failed parses and evaluations also
/// bump `soqa.ql.errors`).
pub fn execute_with_metrics(
    soqa: &Soqa,
    query: &str,
    metrics: Option<&sst_obs::Metrics>,
) -> Result<ResultTable> {
    if let Some(m) = metrics {
        m.inc("soqa.ql.queries");
    }
    let parsed = {
        let _span = metrics.map(|m| m.span("soqa.ql.parse.latency"));
        parse_query(query)
    };
    let q = match parsed {
        Ok(q) => q,
        Err(e) => {
            if let Some(m) = metrics {
                m.inc("soqa.ql.errors");
            }
            return Err(e);
        }
    };
    let _span = metrics.map(|m| m.span("soqa.ql.eval.latency"));
    let result = execute_parsed(soqa, &q);
    if result.is_err() {
        if let Some(m) = metrics {
            m.inc("soqa.ql.errors");
        }
    }
    result
}

/// Like [`execute_with_metrics`], but the evaluation charges its work
/// against a [`sst_limits::Budget`] governed by `limits`: the query text
/// is size-checked, every materialized row charges an item, and row
/// scans (filtering, ordering) charge deterministic steps. A query that
/// blows past the budget returns [`SoqaError::Limit`] instead of holding
/// an evaluation thread for an unbounded amount of work — this is the
/// entry point long-running services (`sst-server`) evaluate on, with
/// the step budget acting as a portable per-request deadline.
pub fn execute_budgeted(
    soqa: &Soqa,
    query: &str,
    metrics: Option<&sst_obs::Metrics>,
    limits: &sst_limits::Limits,
) -> Result<ResultTable> {
    if let Some(m) = metrics {
        m.inc("soqa.ql.queries");
    }
    let mut budget = sst_limits::Budget::new(limits);
    let mut charge = || -> std::result::Result<(), sst_limits::LimitViolation> {
        budget.check_input(query.len(), "soqa-ql query text")?;
        // Parsing is linear in the query text; charge it up front.
        budget.charge_steps(query.len() as u64, "soqa-ql parse")
    };
    if let Err(violation) = charge() {
        if let Some(m) = metrics {
            m.inc("soqa.ql.errors");
            m.inc(&format!("soqa.ql.limit.{}", violation.kind.name()));
        }
        return Err(violation.into());
    }
    let parsed = {
        let _span = metrics.map(|m| m.span("soqa.ql.parse.latency"));
        parse_query(query)
    };
    let q = match parsed {
        Ok(q) => q,
        Err(e) => {
            if let Some(m) = metrics {
                m.inc("soqa.ql.errors");
            }
            return Err(e);
        }
    };
    let _span = metrics.map(|m| m.span("soqa.ql.eval.latency"));
    let result = execute_parsed_budgeted(soqa, &q, &mut budget);
    if let Err(e) = &result {
        if let Some(m) = metrics {
            m.inc("soqa.ql.errors");
            if let SoqaError::Limit(violation) = e {
                m.inc(&format!("soqa.ql.limit.{}", violation.kind.name()));
            }
        }
    }
    result
}

/// Executes an already-parsed query without resource governance (the
/// shell / browser path, where the user owns the process anyway).
pub fn execute_parsed(soqa: &Soqa, q: &Query) -> Result<ResultTable> {
    let mut budget = sst_limits::Budget::new(&sst_limits::Limits::unbounded());
    execute_parsed_budgeted(soqa, q, &mut budget)
}

/// Executes an already-parsed query, charging materialized rows and scan
/// steps against `budget`.
pub fn execute_parsed_budgeted(
    soqa: &Soqa,
    q: &Query,
    budget: &mut sst_limits::Budget,
) -> Result<ResultTable> {
    let ontology_indices: Vec<usize> = match &q.ontology {
        Some(name) => vec![soqa.ontology_index(name)?],
        None => (0..soqa.ontology_count()).collect(),
    };

    let (all_fields, mut rows) = build_rows(soqa, q.extent, &ontology_indices);
    // Materializing the extent is the dominant cost: one item and one step
    // per row, so `max_items` bounds the result-set size and `max_steps`
    // bounds total evaluation work.
    budget.charge_items(rows.len() as u64, "soqa-ql rows materialized")?;
    budget.charge_steps(rows.len() as u64, "soqa-ql row scan")?;

    // Validate projected fields.
    let columns: Vec<String> = if q.fields.is_empty() {
        all_fields.iter().map(|s| s.to_string()).collect()
    } else {
        for f in &q.fields {
            if !all_fields.contains(&f.as_str()) {
                return Err(SoqaError::Query(format!(
                    "unknown field `{f}` (available: {})",
                    all_fields.join(", ")
                )));
            }
        }
        q.fields.clone()
    };

    if let Some(filter) = &q.filter {
        // Validate fields referenced in the filter, then apply it.
        validate_expr_fields(filter, &all_fields)?;
        budget.charge_steps(rows.len() as u64, "soqa-ql filter scan")?;
        rows.retain(|row| eval_expr(filter, row));
    }

    if let Some(order) = &q.order_by {
        budget.charge_steps(rows.len() as u64, "soqa-ql order scan")?;
        if !all_fields.contains(&order.field.as_str()) {
            return Err(SoqaError::Query(format!(
                "unknown ORDER BY field `{}`",
                order.field
            )));
        }
        let field = order.field.as_str();
        rows.sort_by(|a, b| {
            let ca = a.get(field).unwrap_or(&Cell::Null);
            let cb = b.get(field).unwrap_or(&Cell::Null);
            let ord = match (ca, cb) {
                (Cell::Num(x), Cell::Num(y)) => {
                    x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal)
                }
                _ => ca.render().cmp(&cb.render()),
            };
            if order.descending {
                ord.reverse()
            } else {
                ord
            }
        });
    }

    if let Some(limit) = q.limit {
        rows.truncate(limit);
    }

    if let Some(spec) = &q.count {
        let count = match spec {
            CountSpec::Star => rows.len(),
            CountSpec::Field(f) => {
                if !all_fields.contains(&f.as_str()) {
                    return Err(SoqaError::Query(format!(
                        "unknown field `{f}` in COUNT (available: {})",
                        all_fields.join(", ")
                    )));
                }
                rows.iter()
                    .filter(|r| !matches!(r.get(f.as_str()), None | Some(Cell::Null)))
                    .count()
            }
        };
        let label = match spec {
            CountSpec::Star => "count".to_owned(),
            CountSpec::Field(f) => format!("count({f})"),
        };
        return Ok(ResultTable {
            columns: vec![label],
            rows: vec![vec![Cell::Num(count as f64)]],
        });
    }

    let out_rows = rows
        .into_iter()
        .map(|row| {
            columns
                .iter()
                .map(|c| row.get(c.as_str()).cloned().unwrap_or(Cell::Null))
                .collect()
        })
        .collect();
    Ok(ResultTable {
        columns,
        rows: out_rows,
    })
}

fn validate_expr_fields(expr: &Expr, fields: &[&'static str]) -> Result<()> {
    match expr {
        Expr::And(a, b) | Expr::Or(a, b) => {
            validate_expr_fields(a, fields)?;
            validate_expr_fields(b, fields)
        }
        Expr::Not(inner) => validate_expr_fields(inner, fields),
        Expr::Compare { field, .. } => {
            if fields.contains(&field.as_str()) {
                Ok(())
            } else {
                Err(SoqaError::Query(format!(
                    "unknown field `{field}` in WHERE (available: {})",
                    fields.join(", ")
                )))
            }
        }
    }
}

fn eval_expr(expr: &Expr, row: &Row) -> bool {
    match expr {
        Expr::And(a, b) => eval_expr(a, row) && eval_expr(b, row),
        Expr::Or(a, b) => eval_expr(a, row) || eval_expr(b, row),
        Expr::Not(inner) => !eval_expr(inner, row),
        Expr::Compare { field, op, value } => {
            let Some(cell) = row.get(field.as_str()) else {
                return false;
            };
            compare(cell, *op, value)
        }
    }
}

fn compare(cell: &Cell, op: CompareOp, value: &Value) -> bool {
    use std::cmp::Ordering;
    match op {
        CompareOp::Like => {
            let Value::String(pattern) = value else {
                return false;
            };
            like_match(pattern, &cell.render())
        }
        CompareOp::Contains => {
            let Value::String(needle) = value else {
                return false;
            };
            cell.render()
                .to_lowercase()
                .contains(&needle.to_lowercase())
        }
        _ => {
            let ord = match (cell, value) {
                (Cell::Num(x), Value::Number(y)) => x.partial_cmp(y),
                (Cell::Str(s), Value::Number(y)) => {
                    s.parse::<f64>().ok().and_then(|x| x.partial_cmp(y))
                }
                (Cell::Num(x), Value::String(s)) => {
                    s.parse::<f64>().ok().and_then(|y| x.partial_cmp(&y))
                }
                (Cell::Str(s), Value::String(t)) => Some(s.as_str().cmp(t.as_str())),
                (Cell::Null, _) => None,
            };
            let Some(ord) = ord else { return false };
            match op {
                CompareOp::Eq => ord == Ordering::Equal,
                CompareOp::NotEq => ord != Ordering::Equal,
                CompareOp::Lt => ord == Ordering::Less,
                CompareOp::LtEq => ord != Ordering::Greater,
                CompareOp::Gt => ord == Ordering::Greater,
                CompareOp::GtEq => ord != Ordering::Less,
                // Handled by the outer match; kept only for exhaustiveness.
                CompareOp::Like | CompareOp::Contains => false,
            }
        }
    }
}

/// SQL LIKE matcher: `%` matches any run, `_` any single character.
/// Matching is case-sensitive, like standard SQL with a binary collation.
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => (0..=t.len()).any(|i| inner(&p[1..], &t[i..])),
            Some('_') => !t.is_empty() && inner(&p[1..], &t[1..]),
            Some(&c) => t.first() == Some(&c) && inner(&p[1..], &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    inner(&p, &t)
}

fn str_cell(value: &Option<String>) -> Cell {
    match value {
        Some(s) => Cell::Str(s.clone()),
        None => Cell::Null,
    }
}

fn build_rows(soqa: &Soqa, extent: Extent, ontologies: &[usize]) -> (Vec<&'static str>, Vec<Row>) {
    let mut rows = Vec::new();
    let fields: Vec<&'static str> = match extent {
        Extent::Concepts => vec![
            "ontology",
            "name",
            "documentation",
            "definition",
            "depth",
            "super_count",
            "sub_count",
            "attribute_count",
            "method_count",
            "instance_count",
        ],
        Extent::Attributes => vec!["ontology", "name", "concept", "data_type", "documentation"],
        Extent::Methods => {
            vec![
                "ontology",
                "name",
                "concept",
                "return_type",
                "parameter_count",
                "documentation",
            ]
        }
        Extent::Relationships => vec!["ontology", "name", "arity", "related", "documentation"],
        Extent::Instances => vec!["ontology", "name", "concept"],
        Extent::Ontology => vec![
            "name",
            "language",
            "author",
            "version",
            "uri",
            "documentation",
            "copyright",
            "last_modified",
            "concept_count",
            "attribute_count",
            "method_count",
            "relationship_count",
            "instance_count",
        ],
    };

    for &oi in ontologies {
        let o = soqa.ontology_at(oi);
        let oname = Cell::Str(o.name().to_owned());
        match extent {
            Extent::Concepts => {
                for cid in o.concept_ids() {
                    let c = o.concept(cid);
                    let mut row = Row::new();
                    row.insert("ontology", oname.clone());
                    row.insert("name", Cell::Str(c.name.clone()));
                    row.insert("documentation", str_cell(&c.documentation));
                    row.insert("definition", str_cell(&c.definition));
                    row.insert("depth", Cell::Num(o.depth(cid) as f64));
                    row.insert("super_count", Cell::Num(c.super_concepts.len() as f64));
                    row.insert("sub_count", Cell::Num(c.sub_concepts.len() as f64));
                    row.insert("attribute_count", Cell::Num(c.attributes.len() as f64));
                    row.insert("method_count", Cell::Num(c.methods.len() as f64));
                    row.insert("instance_count", Cell::Num(c.instances.len() as f64));
                    rows.push(row);
                }
            }
            Extent::Attributes => {
                for a in o.attributes() {
                    let mut row = Row::new();
                    row.insert("ontology", oname.clone());
                    row.insert("name", Cell::Str(a.name.clone()));
                    row.insert("concept", Cell::Str(o.concept(a.concept).name.clone()));
                    row.insert("data_type", str_cell(&a.data_type));
                    row.insert("documentation", str_cell(&a.documentation));
                    rows.push(row);
                }
            }
            Extent::Methods => {
                for m in o.methods() {
                    let mut row = Row::new();
                    row.insert("ontology", oname.clone());
                    row.insert("name", Cell::Str(m.name.clone()));
                    row.insert("concept", Cell::Str(o.concept(m.concept).name.clone()));
                    row.insert("return_type", str_cell(&m.return_type));
                    row.insert("parameter_count", Cell::Num(m.parameters.len() as f64));
                    row.insert("documentation", str_cell(&m.documentation));
                    rows.push(row);
                }
            }
            Extent::Relationships => {
                for r in o.relationships() {
                    let mut row = Row::new();
                    row.insert("ontology", oname.clone());
                    row.insert("name", Cell::Str(r.name.clone()));
                    row.insert("arity", Cell::Num(r.arity as f64));
                    row.insert("related", Cell::Str(r.related_concepts.join(", ")));
                    row.insert("documentation", str_cell(&r.documentation));
                    rows.push(row);
                }
            }
            Extent::Instances => {
                for inst in o.instances() {
                    let mut row = Row::new();
                    row.insert("ontology", oname.clone());
                    row.insert("name", Cell::Str(inst.name.clone()));
                    row.insert("concept", Cell::Str(o.concept(inst.concept).name.clone()));
                    rows.push(row);
                }
            }
            Extent::Ontology => {
                let md = &o.metadata;
                let mut row = Row::new();
                row.insert("name", Cell::Str(md.name.clone()));
                row.insert("language", Cell::Str(md.language.clone()));
                row.insert("author", str_cell(&md.author));
                row.insert("version", str_cell(&md.version));
                row.insert("uri", str_cell(&md.uri));
                row.insert("documentation", str_cell(&md.documentation));
                row.insert("copyright", str_cell(&md.copyright));
                row.insert("last_modified", str_cell(&md.last_modified));
                row.insert("concept_count", Cell::Num(o.concept_count() as f64));
                row.insert("attribute_count", Cell::Num(o.attributes().len() as f64));
                row.insert("method_count", Cell::Num(o.methods().len() as f64));
                row.insert(
                    "relationship_count",
                    Cell::Num(o.relationships().len() as f64),
                );
                row.insert("instance_count", Cell::Num(o.instances().len() as f64));
                rows.push(row);
            }
        }
    }
    (fields, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, Instance, OntologyBuilder, OntologyMetadata};

    fn sample() -> Soqa {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "uni".into(),
            language: "Test".into(),
            author: Some("dbtg".into()),
            version: Some("1.0".into()),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let person = b.concept("Person");
        let student = b.concept("Student");
        let professor = b.concept("Professor");
        b.concept_mut(professor).documentation = Some("A senior academic teacher".into());
        b.add_subclass(person, thing);
        b.add_subclass(student, person);
        b.add_subclass(professor, person);
        b.add_attribute(Attribute {
            name: "email".into(),
            documentation: None,
            data_type: Some("string".into()),
            definition: None,
            concept: person,
        });
        b.add_instance(Instance {
            name: "alice".into(),
            concept: student,
            attribute_values: vec![],
            relationship_values: vec![],
        });
        let mut soqa = Soqa::new();
        soqa.register(b.build()).unwrap();
        soqa
    }

    #[test]
    fn select_star_from_concepts() {
        let soqa = sample();
        let t = execute(&soqa, "SELECT * FROM concepts").expect("run");
        assert_eq!(t.rows.len(), 4);
        assert!(t.columns.contains(&"depth".to_string()));
    }

    #[test]
    fn where_like_filters() {
        let soqa = sample();
        let t = execute(&soqa, "SELECT name FROM concepts WHERE name LIKE 'P%'").expect("run");
        let names: Vec<String> = t.rows.iter().map(|r| r[0].render()).collect();
        assert_eq!(names, vec!["Person", "Professor"]);
    }

    #[test]
    fn where_numeric_comparison() {
        let soqa = sample();
        let t = execute(
            &soqa,
            "SELECT name FROM concepts WHERE depth >= 2 ORDER BY name",
        )
        .expect("run");
        let names: Vec<String> = t.rows.iter().map(|r| r[0].render()).collect();
        assert_eq!(names, vec!["Professor", "Student"]);
    }

    #[test]
    fn contains_is_case_insensitive() {
        let soqa = sample();
        let t = execute(
            &soqa,
            "SELECT name FROM concepts WHERE documentation CONTAINS 'ACADEMIC'",
        )
        .expect("run");
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][0].render(), "Professor");
    }

    #[test]
    fn order_by_desc_and_limit() {
        let soqa = sample();
        let t = execute(
            &soqa,
            "SELECT name FROM concepts ORDER BY name DESC LIMIT 2",
        )
        .expect("run");
        let names: Vec<String> = t.rows.iter().map(|r| r[0].render()).collect();
        assert_eq!(names, vec!["Thing", "Student"]);
    }

    #[test]
    fn query_metadata_extent() {
        let soqa = sample();
        let t = execute(&soqa, "SELECT name, author, concept_count FROM ontology").expect("run");
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][1].render(), "dbtg");
        assert_eq!(t.rows[0][2].render(), "4");
    }

    #[test]
    fn query_attributes_and_instances() {
        let soqa = sample();
        let t = execute(&soqa, "SELECT name, concept FROM attributes").expect("run");
        assert_eq!(t.rows[0][0].render(), "email");
        assert_eq!(t.rows[0][1].render(), "Person");
        let t = execute(&soqa, "SELECT name, concept FROM instances").expect("run");
        assert_eq!(t.rows[0][0].render(), "alice");
    }

    #[test]
    fn unknown_field_is_an_error() {
        let soqa = sample();
        assert!(execute(&soqa, "SELECT bogus FROM concepts").is_err());
        assert!(execute(&soqa, "SELECT name FROM concepts WHERE bogus = 1").is_err());
        assert!(execute(&soqa, "SELECT name FROM concepts ORDER BY bogus").is_err());
    }

    #[test]
    fn of_clause_restricts_ontology() {
        let soqa = sample();
        let t = execute(&soqa, "SELECT name FROM concepts OF 'uni' LIMIT 1").expect("run");
        assert_eq!(t.rows.len(), 1);
        assert!(execute(&soqa, "SELECT name FROM concepts OF 'missing'").is_err());
    }

    #[test]
    fn like_matcher_semantics() {
        assert!(like_match("Prof%", "Professor"));
        assert!(like_match("%fessor", "Professor"));
        assert!(like_match("P_of%", "Professor"));
        assert!(like_match("%", ""));
        assert!(!like_match("Prof", "Professor"));
        assert!(!like_match("prof%", "Professor")); // case-sensitive
        assert!(like_match("a%b%c", "axxbyyc"));
    }

    #[test]
    fn count_star_and_count_field() {
        let soqa = sample();
        let t = execute(&soqa, "SELECT COUNT(*) FROM concepts").expect("run");
        assert_eq!(t.columns, vec!["count"]);
        assert_eq!(t.rows[0][0].render(), "4");
        // COUNT with a WHERE filter.
        let t = execute(&soqa, "SELECT COUNT(*) FROM concepts WHERE depth >= 2").expect("run");
        assert_eq!(t.rows[0][0].render(), "2");
        // COUNT(field) skips nulls: only Professor has documentation.
        let t = execute(&soqa, "SELECT COUNT(documentation) FROM concepts").expect("run");
        assert_eq!(t.columns, vec!["count(documentation)"]);
        assert_eq!(t.rows[0][0].render(), "1");
        // Unknown field in COUNT errors.
        assert!(execute(&soqa, "SELECT COUNT(bogus) FROM concepts").is_err());
    }

    #[test]
    fn count_interacts_with_limit() {
        let soqa = sample();
        let t = execute(&soqa, "SELECT COUNT(*) FROM concepts LIMIT 2").expect("run");
        assert_eq!(t.rows[0][0].render(), "2");
    }

    #[test]
    fn ascii_rendering_is_aligned() {
        let soqa = sample();
        let t = execute(&soqa, "SELECT name FROM concepts LIMIT 2").expect("run");
        let text = t.to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(text.contains("| name"));
    }

    #[test]
    fn budgeted_matches_unbudgeted_under_generous_limits() {
        let soqa = sample();
        let query = "SELECT name FROM concepts WHERE name LIKE 'P%' ORDER BY name";
        let plain = execute(&soqa, query).expect("plain");
        let budgeted =
            execute_budgeted(&soqa, query, None, &sst_limits::Limits::default()).expect("budgeted");
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn budgeted_rejects_oversized_query_text() {
        let soqa = sample();
        let limits = sst_limits::Limits::default().with_max_input_bytes(8);
        let err = execute_budgeted(&soqa, "SELECT name FROM concepts", None, &limits).unwrap_err();
        match err {
            SoqaError::Limit(v) => assert_eq!(v.kind, sst_limits::LimitKind::InputBytes),
            other => panic!("expected a limit violation, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_caps_materialized_rows() {
        let soqa = sample();
        // The sample has four concepts; allow only two items.
        let limits = sst_limits::Limits::default().with_max_items(2);
        let err = execute_budgeted(&soqa, "SELECT name FROM concepts", None, &limits).unwrap_err();
        match err {
            SoqaError::Limit(v) => assert_eq!(v.kind, sst_limits::LimitKind::Items),
            other => panic!("expected a limit violation, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_step_budget_acts_as_portable_timeout() {
        let soqa = sample();
        let limits = sst_limits::Limits::default().with_max_steps(10);
        let err = execute_budgeted(
            &soqa,
            "SELECT name FROM concepts ORDER BY name",
            None,
            &limits,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SoqaError::Limit(v) if v.kind == sst_limits::LimitKind::Steps
        ));
    }

    #[test]
    fn budgeted_records_limit_metrics() {
        let soqa = sample();
        let metrics = sst_obs::Metrics::new();
        let limits = sst_limits::Limits::default().with_max_items(1);
        execute_budgeted(&soqa, "SELECT name FROM concepts", Some(&metrics), &limits).unwrap_err();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("soqa.ql.errors"), Some(1));
        assert_eq!(snap.counter("soqa.ql.limit.items"), Some(1));
    }
}

//! Abstract syntax of SOQA-QL queries.

/// A complete `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected fields, or empty for `SELECT *`.
    pub fields: Vec<String>,
    /// `SELECT COUNT(*)` / `SELECT COUNT(field)`: return the number of
    /// matching rows (counting non-null `field` values when named).
    pub count: Option<CountSpec>,
    /// Which extension of the meta model to query.
    pub extent: Extent,
    /// Restrict to one ontology (`FROM concepts OF 'uni'`); `None` = all.
    pub ontology: Option<String>,
    pub filter: Option<Expr>,
    pub order_by: Option<OrderBy>,
    pub limit: Option<usize>,
}

/// The queryable extents, one per meta-model extension plus the ontology
/// metadata itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extent {
    Concepts,
    Attributes,
    Methods,
    Relationships,
    Instances,
    Ontology,
}

impl Extent {
    pub fn from_name(name: &str) -> Option<Extent> {
        Some(match name.to_ascii_lowercase().as_str() {
            "concepts" => Extent::Concepts,
            "attributes" => Extent::Attributes,
            "methods" => Extent::Methods,
            "relationships" => Extent::Relationships,
            "instances" => Extent::Instances,
            "ontology" | "ontologies" => Extent::Ontology,
            _ => return None,
        })
    }
}

/// `ORDER BY field [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    pub field: String,
    pub descending: bool,
}

/// Boolean filter expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Compare {
        field: String,
        op: CompareOp,
        value: Value,
    },
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// SQL LIKE with `%` (any run) and `_` (any char) wildcards.
    Like,
    /// Case-insensitive substring containment.
    Contains,
}

/// Literal comparison values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    String(String),
    Number(f64),
}

/// Argument of a `COUNT(...)` projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountSpec {
    /// `COUNT(*)` — all rows.
    Star,
    /// `COUNT(field)` — rows where `field` is non-null.
    Field(String),
}

//! Tokenizer for SOQA-QL.

use crate::error::{Result, SoqaError};

/// SOQA-QL tokens. Keywords are case-insensitive and lex as `Keyword`.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(Keyword),
    Identifier(String),
    String(String),
    Number(f64),
    Comma,
    Star,
    LParen,
    RParen,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    Like,
    Contains,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Of,
}

impl Keyword {
    fn from_word(word: &str) -> Option<Keyword> {
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "LIKE" => Keyword::Like,
            "CONTAINS" => Keyword::Contains,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "LIMIT" => Keyword::Limit,
            "OF" => Keyword::Of,
            _ => return None,
        })
    }
}

/// Tokenizes a SOQA-QL query.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let err = |msg: String| SoqaError::Query(msg);
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some(&ch) if ch == quote => {
                            // Doubled quote = escaped quote (SQL style).
                            if chars.get(i + 1) == Some(&quote) {
                                s.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(err("unterminated string literal".into())),
                    }
                }
                tokens.push(Token::String(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let n = word
                    .parse::<f64>()
                    .map_err(|_| err(format!("malformed number `{word}`")))?;
                tokens.push(Token::Number(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '-')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match Keyword::from_word(&word) {
                    Some(kw) => tokens.push(Token::Keyword(kw)),
                    None => tokens.push(Token::Identifier(word)),
                }
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_query() {
        let toks =
            tokenize("SELECT name, documentation FROM concepts WHERE name LIKE 'Prof%' LIMIT 5")
                .expect("lex");
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert!(toks.contains(&Token::String("Prof%".into())));
        assert!(toks.contains(&Token::Number(5.0)));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = tokenize("select NAME from Concepts").expect("lex");
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert_eq!(toks[1], Token::Identifier("NAME".into()));
        assert_eq!(toks[3], Token::Identifier("Concepts".into()));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a = b != c <> d <= e >= f < g > h").expect("lex");
        assert!(toks.contains(&Token::NotEq));
        assert!(toks.contains(&Token::LtEq));
        assert!(toks.contains(&Token::GtEq));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let toks = tokenize("'it''s'").expect("lex");
        assert_eq!(toks[0], Token::String("it's".into()));
    }

    #[test]
    fn errors_on_garbage() {
        assert!(tokenize("SELECT @").is_err());
        assert!(tokenize("'open").is_err());
    }
}

//! Recursive-descent parser for SOQA-QL.

use crate::error::{Result, SoqaError};
use crate::ql::ast::{CompareOp, CountSpec, Expr, Extent, OrderBy, Query, Value};
use crate::ql::lexer::{tokenize, Keyword, Token};

/// Parses one SOQA-QL query.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    if !p.at_end() {
        return Err(SoqaError::Query(format!(
            "unexpected trailing token {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(SoqaError::Query(msg.into()))
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        match self.bump() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => self.err(format!("expected {kw:?}, found {other:?}")),
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_identifier(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Identifier(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        self.expect_keyword(Keyword::Select)?;
        let (fields, count) = self.parse_projection()?;
        self.expect_keyword(Keyword::From)?;
        let extent_name = self.expect_identifier()?;
        let extent = Extent::from_name(&extent_name).ok_or_else(|| {
            SoqaError::Query(format!(
                "unknown extent `{extent_name}` (expected concepts, attributes, methods, \
                 relationships, instances, or ontology)"
            ))
        })?;
        let ontology = if self.eat_keyword(Keyword::Of) {
            match self.bump() {
                Some(Token::String(s)) => Some(s),
                Some(Token::Identifier(s)) => Some(s),
                other => return self.err(format!("expected ontology name, found {other:?}")),
            }
        } else {
            None
        };
        let filter = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_or()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            let field = self.expect_identifier()?;
            let descending = if self.eat_keyword(Keyword::Desc) {
                true
            } else {
                self.eat_keyword(Keyword::Asc);
                false
            };
            Some(OrderBy { field, descending })
        } else {
            None
        };
        let limit = if self.eat_keyword(Keyword::Limit) {
            match self.bump() {
                Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => return self.err(format!("expected LIMIT count, found {other:?}")),
            }
        } else {
            None
        };
        Ok(Query {
            fields,
            count,
            extent,
            ontology,
            filter,
            order_by,
            limit,
        })
    }

    fn parse_projection(&mut self) -> Result<(Vec<String>, Option<CountSpec>)> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            return Ok((Vec::new(), None));
        }
        // COUNT(*) / COUNT(field) — a single aggregate projection.
        if matches!(self.peek(), Some(Token::Identifier(w)) if w.eq_ignore_ascii_case("COUNT"))
            && matches!(self.tokens.get(self.pos + 1), Some(Token::LParen))
        {
            self.pos += 2;
            let spec = match self.bump() {
                Some(Token::Star) => CountSpec::Star,
                Some(Token::Identifier(f)) => CountSpec::Field(f),
                other => {
                    return self.err(format!("expected `*` or field in COUNT, found {other:?}"))
                }
            };
            match self.bump() {
                Some(Token::RParen) => {}
                other => return self.err(format!("expected `)` after COUNT, found {other:?}")),
            }
            return Ok((Vec::new(), Some(spec)));
        }
        let mut fields = vec![self.expect_identifier()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            fields.push(self.expect_identifier()?);
        }
        Ok((fields, None))
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword(Keyword::Not) {
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let inner = self.parse_or()?;
            match self.bump() {
                Some(Token::RParen) => Ok(inner),
                other => self.err(format!("expected `)`, found {other:?}")),
            }
        } else {
            let field = self.expect_identifier()?;
            let op = match self.bump() {
                Some(Token::Eq) => CompareOp::Eq,
                Some(Token::NotEq) => CompareOp::NotEq,
                Some(Token::Lt) => CompareOp::Lt,
                Some(Token::LtEq) => CompareOp::LtEq,
                Some(Token::Gt) => CompareOp::Gt,
                Some(Token::GtEq) => CompareOp::GtEq,
                Some(Token::Keyword(Keyword::Like)) => CompareOp::Like,
                Some(Token::Keyword(Keyword::Contains)) => CompareOp::Contains,
                other => return self.err(format!("expected comparison operator, found {other:?}")),
            };
            let value = match self.bump() {
                Some(Token::String(s)) => Value::String(s),
                Some(Token::Number(n)) => Value::Number(n),
                Some(Token::Identifier(s)) => Value::String(s),
                other => return self.err(format!("expected literal, found {other:?}")),
            };
            Ok(Expr::Compare { field, op, value })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let q = parse_query("SELECT * FROM concepts").expect("parse");
        assert!(q.fields.is_empty());
        assert_eq!(q.extent, Extent::Concepts);
        assert!(q.filter.is_none() && q.order_by.is_none() && q.limit.is_none());
    }

    #[test]
    fn parses_full_query() {
        let q = parse_query(
            "SELECT name, documentation FROM concepts OF 'uni' \
             WHERE name LIKE 'Prof%' AND depth > 2 OR NOT (name = 'Thing') \
             ORDER BY name DESC LIMIT 10",
        )
        .expect("parse");
        assert_eq!(q.fields, vec!["name", "documentation"]);
        assert_eq!(q.ontology.as_deref(), Some("uni"));
        assert!(matches!(q.filter, Some(Expr::Or(_, _))));
        let ob = q.order_by.unwrap();
        assert_eq!(ob.field, "name");
        assert!(ob.descending);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q =
            parse_query("SELECT * FROM concepts WHERE a = 1 OR b = 2 AND c = 3").expect("parse");
        match q.filter.unwrap() {
            Expr::Or(_, right) => assert!(matches!(*right, Expr::And(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_queries() {
        assert!(parse_query("FROM concepts").is_err());
        assert!(parse_query("SELECT * FROM nowhere").is_err());
        assert!(parse_query("SELECT * FROM concepts WHERE").is_err());
        assert!(parse_query("SELECT * FROM concepts LIMIT x").is_err());
        assert!(parse_query("SELECT * FROM concepts extra").is_err());
        assert!(parse_query("SELECT * FROM concepts WHERE (a = 1").is_err());
    }

    #[test]
    fn count_projections_parse() {
        let q = parse_query("SELECT COUNT(*) FROM instances").expect("parse");
        assert_eq!(q.count, Some(CountSpec::Star));
        assert!(q.fields.is_empty());
        let q = parse_query("select count(name) from concepts").expect("parse");
        assert_eq!(q.count, Some(CountSpec::Field("name".into())));
        assert!(parse_query("SELECT COUNT( FROM concepts").is_err());
        assert!(parse_query("SELECT COUNT(*, name) FROM concepts").is_err());
    }

    #[test]
    fn every_extent_parses() {
        for (name, extent) in [
            ("concepts", Extent::Concepts),
            ("attributes", Extent::Attributes),
            ("methods", Extent::Methods),
            ("relationships", Extent::Relationships),
            ("instances", Extent::Instances),
            ("ontology", Extent::Ontology),
        ] {
            let q = parse_query(&format!("SELECT * FROM {name}")).expect("parse");
            assert_eq!(q.extent, extent);
        }
    }
}

//! SOQA-QL: the declarative query language over SOQA ontologies
//! (paper §2.1 — "the query language SOQA-QL uses the API provided by the
//! SOQA Facade to offer declarative queries over data and metadata").
//!
//! The dialect is a SQL-flavoured SELECT over the meta-model extensions:
//!
//! ```text
//! SELECT name, documentation FROM concepts OF 'univ-bench_owl'
//!   WHERE name LIKE 'Prof%' AND depth > 2
//!   ORDER BY name LIMIT 10
//! ```

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{CompareOp, Expr, Extent, OrderBy, Query, Value};
pub use eval::{
    execute, execute_budgeted, execute_parsed, execute_parsed_budgeted, execute_with_metrics,
    like_match, Cell, ResultTable,
};
pub use parser::parse_query;

//! # sst-soqa — the SIRUP Ontology Query API (SOQA) in Rust
//!
//! SOQA (paper §2.1) gives applications *ontology-language-independent*
//! access to ontologies through one meta model: concepts, attributes,
//! methods, relationships, instances, and ontology metadata. Language
//! wrappers (in `sst-wrappers`) parse OWL / DAML / PowerLoom / WordNet
//! sources into [`model::Ontology`] values; the [`facade::Soqa`] facade then
//! answers unified queries, the [`ql`] module runs declarative SOQA-QL, and
//! [`browser`] renders the text-mode ontology browser panes.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod browser;
pub mod diff;
pub mod error;
pub mod export;
pub mod facade;
pub mod model;
pub mod ql;
pub mod stats;

pub use diff::{diff_ontologies, ConceptChange, OntologyDiff};
pub use error::{Result, SoqaError};
pub use export::ontology_to_graph;
pub use facade::{GlobalConcept, Soqa};
pub use model::{
    Attribute, AttributeId, Concept, ConceptId, Instance, InstanceId, Method, MethodId, Ontology,
    OntologyBuilder, OntologyMetadata, Parameter, Relationship, RelationshipId,
};
pub use stats::{ontology_stats, OntologyStats};

//! Text-mode rendering of ontology content — the Rust counterpart of the
//! SOQA Browser (paper §2.1), which lets users inspect ontologies
//! independently of their language.

use crate::facade::{GlobalConcept, Soqa};
use crate::model::{ConceptId, Ontology};

/// Renders the concept hierarchy of one ontology as an indented ASCII tree.
pub fn render_tree(ontology: &Ontology) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} [{}] — {} concepts\n",
        ontology.name(),
        ontology.metadata.language,
        ontology.concept_count()
    ));
    for (i, &root) in ontology.roots().iter().enumerate() {
        let last = i + 1 == ontology.roots().len();
        render_subtree(ontology, root, "", last, &mut out, &mut Vec::new());
    }
    out
}

fn render_subtree(
    ontology: &Ontology,
    concept: ConceptId,
    prefix: &str,
    last: bool,
    out: &mut String,
    path: &mut Vec<ConceptId>,
) {
    let connector = if last { "└── " } else { "├── " };
    let name = &ontology.concept(concept).name;
    if path.contains(&concept) {
        // Multiple-inheritance back-edge: show but do not recurse.
        out.push_str(&format!("{prefix}{connector}{name} (↺)\n"));
        return;
    }
    out.push_str(&format!("{prefix}{connector}{name}\n"));
    path.push(concept);
    let subs = ontology.direct_subs(concept);
    let child_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
    for (i, &sub) in subs.iter().enumerate() {
        render_subtree(ontology, sub, &child_prefix, i + 1 == subs.len(), out, path);
    }
    path.pop();
}

/// Renders the detail pane for one concept: documentation, hierarchy
/// neighbourhood, attributes, methods, relationships, and instances.
pub fn render_concept(soqa: &Soqa, gc: GlobalConcept) -> String {
    let o = soqa.ontology_at(gc.ontology);
    let c = soqa.concept(gc);
    let mut out = String::new();
    out.push_str(&format!("Concept: {}\n", soqa.qualified_name(gc)));
    if let Some(doc) = &c.documentation {
        out.push_str(&format!("  documentation: {doc}\n"));
    }
    if let Some(def) = &c.definition {
        out.push_str(&format!("  definition:    {def}\n"));
    }
    out.push_str(&format!("  depth:         {}\n", o.depth(gc.concept)));

    let names = |items: Vec<GlobalConcept>| -> String {
        let v: Vec<String> = items
            .iter()
            .map(|&g| soqa.concept(g).name.clone())
            .collect();
        if v.is_empty() {
            "—".to_owned()
        } else {
            v.join(", ")
        }
    };
    out.push_str(&format!(
        "  superconcepts: {}\n",
        names(soqa.super_concepts(gc))
    ));
    out.push_str(&format!(
        "  subconcepts:   {}\n",
        names(soqa.sub_concepts(gc))
    ));
    out.push_str(&format!(
        "  coordinate:    {}\n",
        names(soqa.coordinate_concepts(gc))
    ));
    out.push_str(&format!(
        "  equivalent:    {}\n",
        names(soqa.equivalent_concepts(gc))
    ));
    out.push_str(&format!(
        "  antonym:       {}\n",
        names(soqa.antonym_concepts(gc))
    ));

    let attrs = soqa.attributes_of(gc);
    if !attrs.is_empty() {
        out.push_str("  attributes:\n");
        for a in attrs {
            out.push_str(&format!(
                "    - {}: {}\n",
                a.name,
                a.data_type.as_deref().unwrap_or("?")
            ));
        }
    }
    let methods = soqa.methods_of(gc);
    if !methods.is_empty() {
        out.push_str("  methods:\n");
        for m in methods {
            let params: Vec<String> = m
                .parameters
                .iter()
                .map(|p| format!("{}: {}", p.name, p.data_type.as_deref().unwrap_or("?")))
                .collect();
            out.push_str(&format!(
                "    - {}({}) -> {}\n",
                m.name,
                params.join(", "),
                m.return_type.as_deref().unwrap_or("?")
            ));
        }
    }
    let rels = soqa.relationships_of(gc);
    if !rels.is_empty() {
        out.push_str("  relationships:\n");
        for r in rels {
            out.push_str(&format!(
                "    - {} (arity {}): {}\n",
                r.name,
                r.arity,
                r.related_concepts.join(" × ")
            ));
        }
    }
    let insts = soqa.instances_of(gc);
    if !insts.is_empty() {
        out.push_str("  instances:\n");
        for i in insts {
            out.push_str(&format!("    - {}\n", i.name));
        }
    }
    out
}

/// Renders the metadata pane for one ontology.
pub fn render_metadata(ontology: &Ontology) -> String {
    let md = &ontology.metadata;
    let field = |label: &str, value: &Option<String>| -> String {
        format!("  {label:<15}{}\n", value.as_deref().unwrap_or("—"))
    };
    let mut out = String::new();
    out.push_str(&format!("Ontology: {}\n", md.name));
    out.push_str(&format!("  {:<15}{}\n", "language", md.language));
    out.push_str(&field("author", &md.author));
    out.push_str(&field("version", &md.version));
    out.push_str(&field("last modified", &md.last_modified));
    out.push_str(&field("uri", &md.uri));
    out.push_str(&field("copyright", &md.copyright));
    out.push_str(&field("documentation", &md.documentation));
    out.push_str(&format!(
        "  {:<15}{} concepts, {} attributes, {} methods, {} relationships, {} instances\n",
        "extensions",
        ontology.concept_count(),
        ontology.attributes().len(),
        ontology.methods().len(),
        ontology.relationships().len(),
        ontology.instances().len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OntologyBuilder, OntologyMetadata};

    fn sample() -> Ontology {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "uni".into(),
            language: "Test".into(),
            ..OntologyMetadata::default()
        });
        let thing = b.concept("Thing");
        let person = b.concept("Person");
        let student = b.concept("Student");
        let prof = b.concept("Professor");
        b.add_subclass(person, thing);
        b.add_subclass(student, person);
        b.add_subclass(prof, person);
        b.build()
    }

    #[test]
    fn tree_shows_hierarchy() {
        let text = render_tree(&sample());
        assert!(text.contains("└── Thing"));
        assert!(text.contains("    └── Person"));
        assert!(text.contains("Student"));
        // Student/Professor are nested one level deeper than Person.
        let person_line = text.lines().find(|l| l.contains("Person")).unwrap();
        let student_line = text.lines().find(|l| l.contains("Student")).unwrap();
        assert!(student_line.find("Student") > person_line.find("Person"));
    }

    #[test]
    fn tree_handles_diamond_without_infinite_recursion() {
        let mut b = OntologyBuilder::new(OntologyMetadata {
            name: "d".into(),
            ..OntologyMetadata::default()
        });
        let root = b.concept("R");
        let a = b.concept("A");
        let c = b.concept("B");
        let d = b.concept("D");
        b.add_subclass(a, root);
        b.add_subclass(c, root);
        b.add_subclass(d, a);
        b.add_subclass(d, c);
        let text = render_tree(&b.build());
        // D appears under both parents.
        assert_eq!(text.matches("D").count(), 2);
    }

    #[test]
    fn concept_pane_lists_neighbourhood() {
        let mut soqa = Soqa::new();
        soqa.register(sample()).unwrap();
        let gc = soqa.resolve("uni", "Student").unwrap();
        let text = render_concept(&soqa, gc);
        assert!(text.contains("Concept: uni:Student"));
        assert!(text.contains("superconcepts: Person"));
        assert!(text.contains("coordinate:    Professor"));
    }

    #[test]
    fn metadata_pane_renders_counts() {
        let text = render_metadata(&sample());
        assert!(text.contains("4 concepts"));
        assert!(text.contains("language       Test"));
    }
}

//! Integration tests for the sst-obs registry: bucket boundary semantics,
//! concurrent counter traffic, and the JSON exposition golden shape.

use std::time::Duration;

use sst_obs::{Histogram, Metrics, DEFAULT_LATENCY_BOUNDS};

#[test]
fn bucket_boundaries_are_inclusive_upper_bounds() {
    let m = Metrics::new();
    let h = m.histogram_with_bounds("b.latency", &[1e-3, 1e-2]);
    // Exactly on a bound → that bucket; just above → the next.
    h.observe(Duration::from_millis(1));
    h.observe(Duration::from_nanos(1_000_001));
    h.observe(Duration::from_millis(10));
    h.observe(Duration::from_millis(11)); // overflow
    assert_eq!(h.bucket_counts(), vec![1, 2, 1]);
    assert_eq!(h.count(), 4);
}

#[test]
fn default_bounds_span_micro_to_ten_seconds() {
    assert_eq!(DEFAULT_LATENCY_BOUNDS.first(), Some(&1e-6));
    assert_eq!(DEFAULT_LATENCY_BOUNDS.last(), Some(&10.0));
    let h = Histogram::latency();
    h.observe(Duration::from_nanos(1)); // below the first bound
    assert_eq!(h.bucket_counts().first(), Some(&1));
}

#[test]
fn registered_histograms_keep_their_bounds() {
    let m = Metrics::new();
    m.histogram_with_bounds("h", &[1.0, 2.0]);
    // Re-registration with different bounds returns the existing one.
    let again = m.histogram_with_bounds("h", &[9.0]);
    assert_eq!(again.bounds(), &[1.0, 2.0]);
}

#[test]
fn concurrent_counter_increments_from_scoped_workers() {
    let m = Metrics::new();
    const WORKERS: u64 = 8;
    const PER_WORKER: u64 = 10_000;
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let m = m.clone();
            scope.spawn(move || {
                let calls = m.counter("stress.calls");
                for _ in 0..PER_WORKER {
                    calls.inc();
                    m.add("stress.bytes", 3);
                }
            });
        }
    });
    let snap = m.snapshot();
    assert_eq!(snap.counter("stress.calls"), Some(WORKERS * PER_WORKER));
    assert_eq!(snap.counter("stress.bytes"), Some(WORKERS * PER_WORKER * 3));
}

#[test]
fn concurrent_histogram_observations_are_all_counted() {
    let m = Metrics::new();
    std::thread::scope(|scope| {
        for worker in 0..4u64 {
            let m = m.clone();
            scope.spawn(move || {
                let h = m.histogram_with_bounds("h.latency", &[1e-3, 1.0]);
                for i in 0..1_000u64 {
                    h.observe(Duration::from_micros(worker * 250 + i));
                }
            });
        }
    });
    let snap = m.snapshot();
    let h = snap.histogram("h.latency").expect("registered");
    assert_eq!(h.count, 4_000);
    assert_eq!(h.bucket_counts.iter().sum::<u64>(), 4_000);
}

#[test]
fn json_exposition_golden() {
    let m = Metrics::new();
    m.add("parse.documents", 2);
    m.inc("parse.errors");
    m.gauge("active").set(-3);
    let h = m.histogram_with_bounds("parse.latency", &[0.001, 0.01]);
    h.observe(Duration::from_micros(500));
    h.observe(Duration::from_micros(500));
    h.observe(Duration::from_millis(20));

    let golden = concat!(
        "{\"counters\":{\"parse.documents\":2,\"parse.errors\":1},",
        "\"gauges\":{\"active\":-3},",
        "\"histograms\":{\"parse.latency\":{\"count\":3,\"sum_seconds\":0.021,",
        "\"buckets\":[{\"le\":0.001,\"count\":2},{\"le\":0.01,\"count\":0}],",
        "\"overflow\":1}}}",
    );
    assert_eq!(m.to_json(), golden);
}

#[test]
fn text_exposition_lists_every_section() {
    let m = Metrics::new();
    m.inc("a.calls");
    m.gauge("b.depth").set(2);
    m.histogram("c.latency").observe(Duration::from_millis(2));
    let text = m.render_text();
    assert!(text.contains("counters:"));
    assert!(text.contains("a.calls"));
    assert!(text.contains("gauges:"));
    assert!(text.contains("latency histograms"));
    assert!(text.contains("c.latency"));

    let empty = Metrics::new();
    assert!(empty.render_text().contains("no metrics recorded"));
}

//! Fixed-bucket latency histograms.
//!
//! Buckets are cumulative-style upper bounds in **seconds** plus an
//! implicit overflow bucket; observation is two relaxed atomic adds and a
//! linear scan over ≤ a couple dozen bounds — cheap enough for per-call
//! recording on similarity hot paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Default latency bounds: 1µs … 10s, roughly half-decade spaced. The
/// paper's Table 1 measures span µs (string measures on short names) to
/// hundreds of ms (WordNet-scale IC measures), so the range covers every
/// registered runner with headroom.
pub const DEFAULT_LATENCY_BOUNDS: [f64; 15] = [
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 10.0,
];

/// A fixed-bucket histogram of durations (seconds).
#[derive(Debug)]
pub struct Histogram {
    /// Ascending upper bounds; observations above the last bound land in
    /// the overflow bucket.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket
    /// (`counts.len() == bounds.len() + 1`).
    counts: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observed durations, in nanoseconds (saturating).
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// Builds a histogram over the given ascending upper bounds. Bounds
    /// that are not finite or not ascending are dropped rather than
    /// rejected — a histogram always exists once registered.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        let mut clean: Vec<f64> = Vec::with_capacity(bounds.len());
        for &b in bounds {
            if b.is_finite() && clean.last().is_none_or(|&prev| b > prev) {
                clean.push(b);
            }
        }
        let counts = (0..clean.len().saturating_add(1))
            .map(|_| AtomicU64::new(0))
            .collect();
        Histogram {
            bounds: clean,
            counts,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// The default latency histogram (see [`DEFAULT_LATENCY_BOUNDS`]).
    pub fn latency() -> Histogram {
        Histogram::with_bounds(&DEFAULT_LATENCY_BOUNDS)
    }

    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_seconds(d.as_secs_f64());
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a raw seconds value into the buckets only (used by
    /// [`Histogram::observe`]; NaN lands in the overflow bucket).
    fn observe_seconds(&self, seconds: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| seconds <= b)
            .unwrap_or(self.bounds.len());
        if let Some(slot) = self.counts.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The ascending upper bounds (without the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, overflow last (`bounds().len() + 1` entries).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed durations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bounds_are_ascending() {
        let h = Histogram::latency();
        assert_eq!(h.bounds().len(), DEFAULT_LATENCY_BOUNDS.len());
        for w in h.bounds().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn non_ascending_bounds_are_dropped() {
        let h = Histogram::with_bounds(&[1.0, 0.5, 2.0, f64::NAN, 3.0]);
        assert_eq!(h.bounds(), &[1.0, 2.0, 3.0]);
        assert_eq!(h.bucket_counts().len(), 4);
    }

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::with_bounds(&[1e-3, 1e-2, 1e-1]);
        h.observe(Duration::from_micros(500)); // ≤ 1ms
        h.observe(Duration::from_millis(1)); // boundary: ≤ 1ms
        h.observe(Duration::from_millis(5)); // ≤ 10ms
        h.observe(Duration::from_secs(2)); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 0, 1]);
        assert_eq!(h.count(), 4);
        let sum = h.sum_seconds();
        assert!((sum - 2.0065).abs() < 1e-9, "sum {sum}");
    }
}

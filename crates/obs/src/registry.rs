//! The metric registry and its handle types.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

use crate::expose::MetricsSnapshot;
use crate::histogram::Histogram;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (set/adjust to any value).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    pub fn adjust(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Name-keyed metric stores. `BTreeMap` keeps exposition sorted without a
/// second pass.
#[derive(Debug, Default)]
struct Inner {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// A global-free metrics registry. Cloning is cheap (an [`Arc`] bump) and
/// every clone refers to the same underlying metrics, so one handle can be
/// threaded through parsers, indexes, and facades without shared statics.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Inner>,
}

/// Get-or-register in one of the three stores: a read-locked fast path,
/// then a write-locked insert for first registration.
fn resolve<T>(
    store: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(found) = store
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
    {
        return Arc::clone(found);
    }
    let mut map = store.write().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The counter named `name`, registering it on first use. The returned
    /// handle can be cached by hot-path callers to skip the name lookup.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        resolve(&self.inner.counters, name, Counter::default)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        resolve(&self.inner.gauges, name, Gauge::default)
    }

    /// The latency histogram named `name` with the default bounds,
    /// registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        resolve(&self.inner.histograms, name, Histogram::latency)
    }

    /// The histogram named `name`, registered with the given bounds on
    /// first use (an already-registered histogram keeps its bounds).
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        resolve(&self.inner.histograms, name, || {
            Histogram::with_bounds(bounds)
        })
    }

    /// Convenience: increment the counter named `name` by one.
    pub fn inc(&self, name: &str) {
        self.counter(name).inc();
    }

    /// Convenience: add `n` to the counter named `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Starts an RAII timing span recording into the histogram named
    /// `name` when dropped.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.histogram(name))
    }

    /// A point-in-time copy of every metric, for exposition.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), crate::expose::HistogramSnapshot::of(v)))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Sorted text exposition (shortcut for `snapshot().render_text()`).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    /// JSON exposition (shortcut for `snapshot().to_json()`).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// An RAII timing span: measures from construction to drop and records the
/// elapsed time into its histogram.
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts a span recording into `histogram` on drop.
    pub fn new(histogram: Arc<Histogram>) -> Span {
        Span {
            histogram,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.observe(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let m = Metrics::new();
        m.inc("a.calls");
        m.add("a.calls", 4);
        let handle = m.counter("a.calls");
        handle.inc();
        assert_eq!(m.snapshot().counter("a.calls"), Some(6));
    }

    #[test]
    fn clones_share_the_registry() {
        let m = Metrics::new();
        let clone = m.clone();
        clone.inc("shared");
        assert_eq!(m.snapshot().counter("shared"), Some(1));
    }

    #[test]
    fn gauges_set_and_adjust() {
        let m = Metrics::new();
        let g = m.gauge("depth");
        g.set(10);
        g.adjust(-3);
        assert_eq!(m.snapshot().gauge("depth"), Some(7));
    }

    #[test]
    fn span_records_into_histogram() {
        let m = Metrics::new();
        {
            let _span = m.span("op.latency");
        }
        let snap = m.snapshot();
        let h = snap.histogram("op.latency").expect("registered");
        assert_eq!(h.count, 1);
    }
}

//! # sst-obs — observability for the SOQA-SimPack Toolkit
//!
//! A dependency-free metrics layer: atomic counters, gauges, and
//! fixed-bucket latency histograms behind a **global-free** registry
//! ([`Metrics`]), plus lightweight RAII timing spans ([`Span`]) and text /
//! JSON exposition ([`MetricsSnapshot`]).
//!
//! The paper's evaluation (§4, Table 1) is a per-measure timing table;
//! this crate is what lets the toolkit produce that table from live
//! counters instead of ad-hoc stopwatches.
//!
//! ## Design
//!
//! * **Global-free.** There is no `static` registry. A [`Metrics`] handle
//!   is a cheap [`Arc`] clone; every subsystem is handed one explicitly
//!   (the [`SstToolkit`-style facade] owns the root handle and threads it
//!   down). Tests get isolated registries for free.
//! * **Lock-free on the hot path.** Registration (name → handle lookup)
//!   takes a read lock once; recording is pure `AtomicU64` traffic on the
//!   returned handle. Callers on per-pair hot loops resolve their handles
//!   once and increment thereafter.
//! * **Panic-free.** No `unwrap`/`panic!` in library paths (repo lint
//!   policy); poisoned registry locks are recovered, not propagated.
//!
//! ## Naming scheme
//!
//! Metric names are dot-separated: `<crate>.<component>.<metric>` with an
//! optional trailing label segment, e.g. `core.pair.latency.lin` (the
//! pairwise latency histogram of the `lin` measure) or `core.cache.hits`.
//!
//! ```
//! use sst_obs::Metrics;
//!
//! let metrics = Metrics::new();
//! metrics.inc("rdf.turtle.documents");
//! metrics.add("rdf.turtle.triples", 42);
//! {
//!     let _span = metrics.span("rdf.turtle.parse.latency");
//!     // … work to time …
//! }
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("rdf.turtle.triples"), Some(42));
//! assert!(snap.to_json().contains("rdf.turtle.parse.latency"));
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod catalog;
mod expose;
mod histogram;
mod registry;

pub use expose::{HistogramSnapshot, MetricsSnapshot};
pub use histogram::{Histogram, DEFAULT_LATENCY_BOUNDS};
pub use registry::{Counter, Gauge, Metrics, Span};
